"""Sweep-engine benchmarks: serial/parallel parity and wall-clock speedup.

The engine's determinism contract says the merged output is a pure
function of the spec — worker count, chunking and scheduling order must
be invisible.  Parity is asserted on every run; the speedup assertion
(>2x at 4 workers, the PR's acceptance bar) only runs where it is
physically possible, i.e. on hosts with at least 4 CPU cores — a
single-core container cannot exhibit parallel speedup and skipping
there is the honest outcome (``benchmarks/record_sweep_speedup.py``
records the measured number either way).
"""

import os
import time

import pytest

from repro.sweep import build_preset, build_sweep_report, run_sweep


@pytest.mark.repro("Sweep: parallel parity")
def test_parallel_parity(benchmark):
    spec = build_preset("table5", quick=True)
    serial = run_sweep(spec, jobs=1)

    def parallel():
        return run_sweep(spec, jobs=4)

    outcome = benchmark(parallel)
    # Bit-identical merged output: values, rows and canonical point keys.
    assert outcome.values == serial.values
    assert outcome.rows == serial.rows
    assert outcome.point_keys == serial.point_keys
    # ...and so are the persisted reports, minus the scheduling fields.
    parallel_report = build_sweep_report(outcome)
    serial_report = build_sweep_report(serial)
    for volatile in ("jobs", "chunks", "memo", "wall_seconds",
                     "worker_utilisation", "provenance", "workers"):
        parallel_report.pop(volatile)
        serial_report.pop(volatile)
    assert parallel_report == serial_report
    benchmark.extra_info["points"] = spec.size
    benchmark.extra_info["chunks"] = outcome.chunks


@pytest.mark.repro("Sweep: memoization")
def test_memo_reuse(benchmark):
    # The memsim ladder re-builds one schedule set per (params, config)
    # rung across its primitives: the per-worker memo must serve repeats.
    spec = build_preset("memsim-ladder", quick=True)
    outcome = benchmark(lambda: run_sweep(spec, jobs=1))
    assert outcome.memo_hits > 0
    assert outcome.memo_hits + outcome.memo_misses >= spec.size
    benchmark.extra_info["memo_hit_rate"] = round(outcome.memo_hit_rate, 3)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 CPU cores",
)
@pytest.mark.repro("Sweep: parallel speedup")
def test_parallel_speedup():
    spec = build_preset("table5")  # full grid: enough work to amortise forks
    started = time.perf_counter()
    serial = run_sweep(spec, jobs=1)
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_sweep(spec, jobs=4)
    parallel_seconds = time.perf_counter() - started
    assert parallel.values == serial.values
    speedup = serial_seconds / parallel_seconds
    print(
        f"\nsweep speedup: {spec.size} points, serial {serial_seconds:.2f}s "
        f"vs 4 workers {parallel_seconds:.2f}s -> {speedup:.2f}x"
    )
    assert speedup > 2.0
