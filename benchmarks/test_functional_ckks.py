"""Functional-layer benchmarks: exact-arithmetic CKKS primitive latencies.

Not a paper table — these time the functional RNS-CKKS implementation
(reduced ring degree) that validates the algorithms the performance model
counts, including the MAD algorithmic variants (merged ModDown, hoisted
rotations) whose costs the analytical benchmarks above account for."""

import numpy as np
import pytest

from repro.params import toy_params
from repro.ckks import (
    Bootstrapper,
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


@pytest.fixture(scope="module")
def env():
    ctx = CkksContext(toy_params(log_n=5, log_q=30, max_limbs=6, dnum=3), seed=9)
    kg = KeyGenerator(ctx)
    evaluator = Evaluator(
        ctx,
        relin_key=kg.relinearization_key(),
        rotation_keys={1: kg.rotation_key(1), 2: kg.rotation_key(2)},
        conjugation_key=kg.conjugation_key(),
    )
    enc = Encryptor(ctx, secret_key=kg.secret_key)
    rng = np.random.default_rng(0)
    z = rng.normal(size=ctx.slots) + 1j * rng.normal(size=ctx.slots)
    return {
        "evaluator": evaluator,
        "ct1": enc.encrypt_values(z),
        "ct2": enc.encrypt_values(z[::-1].copy()),
    }


def test_bench_add(benchmark, env):
    benchmark(env["evaluator"].add, env["ct1"], env["ct2"])


def test_bench_mult_standard(benchmark, env):
    benchmark(env["evaluator"].mult, env["ct1"], env["ct2"])


def test_bench_mult_merged_mod_down(benchmark, env):
    ev = env["evaluator"]
    benchmark(
        lambda: ev.mult(env["ct1"], env["ct2"], merged_mod_down=True)
    )


def test_bench_rotate(benchmark, env):
    benchmark(env["evaluator"].rotate, env["ct1"], 1)


def test_bench_rotations_hoisted(benchmark, env):
    benchmark(env["evaluator"].rotations_hoisted, env["ct1"], [1, 2])


def test_bench_functional_bootstrap(benchmark):
    params = toy_params(log_n=4, log_q=29, max_limbs=14, dnum=3)
    ctx = CkksContext(params, scale_bits=29, seed=5)
    kg = KeyGenerator(ctx, hamming_weight=4)
    enc = Encryptor(ctx, secret_key=kg.secret_key)
    bs = Bootstrapper(ctx, kg, mod_degree=63)
    ct = enc.encrypt_values([0.2] * ctx.slots, scale=2.0**23, limbs=1)
    refreshed = benchmark.pedantic(bs.bootstrap, args=(ct,), rounds=2, iterations=1)
    assert refreshed.num_limbs > 1


def test_bench_functional_bootstrap_staged_dft(benchmark):
    """Bootstrap with the fftIter=2 factored DFT (sparse stage matrices)."""
    params = toy_params(log_n=4, log_q=29, max_limbs=16, dnum=4)
    ctx = CkksContext(params, scale_bits=29, seed=5)
    kg = KeyGenerator(ctx, hamming_weight=4)
    enc = Encryptor(ctx, secret_key=kg.secret_key)
    bs = Bootstrapper(ctx, kg, mod_degree=63, fft_iter=2)
    ct = enc.encrypt_values([0.2] * ctx.slots, scale=2.0**23, limbs=1)
    refreshed = benchmark.pedantic(bs.bootstrap, args=(ct,), rounds=2, iterations=1)
    assert refreshed.num_limbs > 1
