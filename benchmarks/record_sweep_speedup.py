"""Record the sweep engine's parallel wall-clock speedup (report-only).

Runs the Table 5 search grid serially and with ``--jobs`` worker
processes, checks the outputs are bit-identical, and writes an honest
measurement to ``benchmarks/baselines/sweep_speedup.json``:

    PYTHONPATH=src python benchmarks/record_sweep_speedup.py --jobs 4

Wall-clock is machine-dependent, so this fixture is *never* gated — it
exists so the repo carries a provenance-stamped data point for the
"NX speedup at N workers" claim, including the core count it was
measured on.  A single-core container cannot exhibit parallel speedup;
the committed fixture says so rather than faking one, and CI (4-vCPU
runners) regenerates and uploads the real number on every push.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.sweep import build_preset, run_sweep

DEFAULT_OUT = Path(__file__).parent / "baselines" / "sweep_speedup.json"


def measure(quick: bool, jobs: int) -> dict:
    spec = build_preset("table5", quick=quick)
    started = time.perf_counter()
    serial = run_sweep(spec, jobs=1)
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_sweep(spec, jobs=jobs)
    parallel_seconds = time.perf_counter() - started
    if serial.point_keys != parallel.point_keys or [
        r for r in serial.rows
    ] != [r for r in parallel.rows]:
        raise SystemExit("parallel sweep diverged from serial: refusing to record")
    return {
        "schema": "repro.sweep_speedup/v1",
        "sweep": spec.name,
        "points": spec.size,
        "quick": quick,
        "jobs": jobs,
        "cpu_cores": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "bit_identical": True,
        "note": (
            "report-only wall-clock fixture; speedup is meaningful only "
            "when cpu_cores >= jobs"
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args()
    record = measure(args.quick, args.jobs)
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(
        f"{record['sweep']}: {record['points']} points, "
        f"serial {record['serial_seconds']}s vs jobs={record['jobs']} "
        f"{record['parallel_seconds']}s -> {record['speedup']}x "
        f"on {record['cpu_cores']} cores (wrote {args.out})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
