"""Section 4.4 — performance vs. area/cost trade-offs.

The paper's closing argument: applying MAD with a 32 MB on-chip memory
shrinks chip area (SRAM dominates the 256-512 MB ASICs) and therefore
cost; even where raw bootstrapping throughput drops, throughput *per
dollar* improves."""

import pytest

from repro.params import MAD_OPTIMAL
from repro.perf import BootstrapModel, MADConfig
from repro.hardware import ARK, BTS, CRATERLAKE, mad_counterpart
from repro.hardware.area import NODES, chip_area, performance_per_cost
from repro.hardware.runtime import estimate_runtime


def _series():
    node = NODES["7nm"]
    cost = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    rows = []
    for design in (BTS, ARK, CRATERLAKE):
        original_area = chip_area(design, node)
        original_ppc = performance_per_cost(
            design.reported_bootstrap_ms / 1e3, design, node
        )
        mad = mad_counterpart(design)
        mad_runtime = estimate_runtime(cost, mad)
        mad_area = chip_area(mad, node)
        mad_ppc = performance_per_cost(mad_runtime.seconds, mad, node)
        rows.append(
            {
                "design": design.name,
                "orig_mm2": original_area.total_mm2,
                "mad_mm2": mad_area.total_mm2,
                "orig_mem_frac": original_area.memory_fraction,
                "ppc_gain": mad_ppc / original_ppc,
            }
        )
    return rows


@pytest.mark.repro("Section 4.4")
def test_sec44_cost_tradeoffs(benchmark):
    rows = benchmark(_series)
    print(f"\n{'Design':12} {'orig mm2':>9} {'MAD mm2':>8} "
          f"{'mem frac':>9} {'perf/cost gain':>15}")
    for row in rows:
        print(
            f"{row['design']:12} {row['orig_mm2']:9.0f} {row['mad_mm2']:8.0f} "
            f"{row['orig_mem_frac']:9.0%} {row['ppc_gain']:15.2f}x"
        )
        benchmark.extra_info[row["design"]] = round(row["ppc_gain"], 2)

    for row in rows:
        # SRAM dominates the original ASICs...
        assert row["orig_mem_frac"] > 0.6
        # ...so the 32 MB MAD design is several times smaller.
        assert row["mad_mm2"] < row["orig_mm2"] / 2
