"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each sweep isolates one knob of the memory-aware design space and checks
the trend the paper's analysis predicts:

* **cache size** — DRAM traffic is a step function of the optimization
  thresholds (1 MB / ~2*dnum MB / ~alpha MB), then flat: memory beyond the
  O(alpha) working set buys nothing.
* **dnum** — smaller dnum means fewer, larger digits: less key traffic per
  key switch (the core reason Table 5's optimum picks dnum=2).
* **fftIter** — more, smaller DFT stages cut per-stage matrix cost but
  consume more levels.
* **individual optimizations** — each MAD flag alone against the baseline,
  isolating its contribution (SimFHE's "toggle each optimization
  independently").
"""

import pytest

from repro.params import BASELINE_JUNG, CkksParams
from repro.perf import BootstrapModel, CacheModel, MADConfig


@pytest.mark.repro("Ablation: cache size")
def test_ablation_cache_size(benchmark):
    def sweep():
        results = {}
        for mb in (0.5, 1, 2, 6, 16, 32, 64, 256):
            cost = BootstrapModel(
                BASELINE_JUNG, MADConfig.caching_only(), CacheModel.from_mb(mb)
            ).total_cost()
            results[mb] = cost.traffic.total / 1e9
        return results

    results = benchmark(sweep)
    print("\nBootstrap DRAM vs cache size (caching opts, baseline params)")
    for mb, gb in results.items():
        print(f"  {mb:6.1f} MB: {gb:7.1f} GB")
        benchmark.extra_info[f"{mb}MB"] = round(gb, 1)
    values = list(results.values())
    # Monotone non-increasing, and flat beyond the O(alpha) threshold.
    assert values == sorted(values, reverse=True)
    assert results[32] == results[64] == results[256]
    assert results[0.5] > results[32]


@pytest.mark.repro("Ablation: dnum")
def test_ablation_dnum(benchmark):
    def sweep():
        results = {}
        for dnum in (1, 2, 3, 4, 6):
            params = CkksParams(
                log_n=17, log_q=50, max_limbs=35, dnum=dnum, fft_iter=3
            )
            cost = BootstrapModel(params, MADConfig.all()).total_cost()
            results[dnum] = {
                "key_gb": cost.traffic.key_read / 1e9,
                "total_gb": cost.gigabytes(),
                "gops": cost.giga_ops(),
                "log_qp": params.log_qp,
            }
        return results

    results = benchmark(sweep)
    print("\nBootstrap vs dnum (L=35, q=50, all optimizations)")
    for dnum, row in results.items():
        print(
            f"  dnum={dnum}: keys {row['key_gb']:6.1f} GB, total "
            f"{row['total_gb']:6.1f} GB, {row['gops']:6.1f} Gops, "
            f"log PQ={row['log_qp']}"
        )
    # Smaller dnum -> fewer digits -> less switching-key traffic.
    key_gb = [results[d]["key_gb"] for d in (1, 2, 3, 4, 6)]
    assert key_gb == sorted(key_gb)
    # ...at the price of a larger raised modulus (security pressure).
    assert results[1]["log_qp"] > results[6]["log_qp"]


@pytest.mark.repro("Ablation: fftIter")
def test_ablation_fft_iter(benchmark):
    def sweep():
        results = {}
        for fft_iter in (2, 3, 4, 6, 8):
            params = CkksParams(
                log_n=17, log_q=50, max_limbs=40, dnum=2, fft_iter=fft_iter
            )
            cost = BootstrapModel(params, MADConfig.all()).total_cost()
            results[fft_iter] = {
                "total_gb": cost.gigabytes(),
                "log_q1": params.log_q1,
            }
        return results

    results = benchmark(sweep)
    print("\nBootstrap vs fftIter (L=40, q=50, dnum=2, all optimizations)")
    for fft_iter, row in results.items():
        print(
            f"  fftIter={fft_iter}: {row['total_gb']:6.1f} GB, "
            f"log Q1 after bootstrap = {row['log_q1']}"
        )
    # More iterations leave fewer levels after bootstrapping...
    q1 = [results[f]["log_q1"] for f in (2, 3, 4, 6, 8)]
    assert q1 == sorted(q1, reverse=True)


@pytest.mark.repro("Ablation: individual optimizations")
def test_ablation_individual_flags(benchmark):
    flags = (
        "cache_o1",
        "cache_beta",
        "cache_alpha",
        "mod_down_merge",
        "mod_down_hoist",
        "key_compression",
    )

    def sweep():
        baseline = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
        results = {"baseline": (baseline.giga_ops(), baseline.gigabytes())}
        for flag in flags:
            cost = BootstrapModel(
                BASELINE_JUNG, MADConfig.none().with_(**{flag: True})
            ).total_cost()
            results[flag] = (cost.giga_ops(), cost.gigabytes())
        return results

    results = benchmark(sweep)
    print("\nEach optimization alone (baseline params)")
    base_ops, base_gb = results["baseline"]
    for name, (gops, gb) in results.items():
        print(f"  {name:16} {gops:7.1f} Gops  {gb:7.1f} GB")
        benchmark.extra_info[name] = round(gb, 1)
    # Every flag alone must not increase traffic; caching flags must not
    # change ops.
    for flag in flags:
        gops, gb = results[flag]
        assert gb <= base_gb + 1e-9
        if flag.startswith("cache"):
            assert gops == pytest.approx(base_ops)
