"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each sweep isolates one knob of the memory-aware design space and checks
the trend the paper's analysis predicts:

* **cache size** — DRAM traffic is a step function of the optimization
  thresholds (1 MB / ~2*dnum MB / ~alpha MB), then flat: memory beyond the
  O(alpha) working set buys nothing.
* **dnum** — smaller dnum means fewer, larger digits: less key traffic per
  key switch (the core reason Table 5's optimum picks dnum=2).
* **fftIter** — more, smaller DFT stages cut per-stage matrix cost but
  consume more levels.
* **individual optimizations** — each MAD flag alone against the baseline,
  isolating its contribution (SimFHE's "toggle each optimization
  independently").

Every grid runs through :func:`repro.sweep.run_sweep` with the
``bootstrap.cost`` evaluator — the same declarative engine the CLI's
``repro sweep`` command uses — so these benchmarks also exercise the
sweep dispatch/merge path on every run.
"""

import pytest

from repro.params import BASELINE_JUNG, CkksParams
from repro.perf import MADConfig
from repro.sweep import SweepAxis, SweepSpec, build_preset, run_sweep


def _rows(spec: SweepSpec) -> list:
    """Evaluate a sweep in-process and return its rows in canonical order."""
    return list(run_sweep(spec, jobs=1).values)


@pytest.mark.repro("Ablation: cache size")
def test_ablation_cache_size(benchmark):
    spec = build_preset("ablation-cache")

    def sweep():
        return {row["cache_mb"]: row["dram_gb"] for row in _rows(spec)}

    results = benchmark(sweep)
    print("\nBootstrap DRAM vs cache size (caching opts, baseline params)")
    for mb, gb in results.items():
        print(f"  {mb:6.1f} MB: {gb:7.1f} GB")
        benchmark.extra_info[f"{mb}MB"] = round(gb, 1)
    values = list(results.values())
    # Monotone non-increasing, and flat beyond the O(alpha) threshold.
    assert values == sorted(values, reverse=True)
    assert results[32] == results[64] == results[256]
    assert results[0.5] > results[32]


@pytest.mark.repro("Ablation: dnum")
def test_ablation_dnum(benchmark):
    dnums = (1, 2, 3, 4, 6)
    spec = SweepSpec(
        name="ablation-dnum",
        evaluator="bootstrap.cost",
        axes=(
            SweepAxis(
                "params",
                tuple(
                    CkksParams(
                        log_n=17, log_q=50, max_limbs=35, dnum=dnum, fft_iter=3
                    )
                    for dnum in dnums
                ),
            ),
        ),
        context={"config": MADConfig.all()},
    )

    def sweep():
        return dict(zip(dnums, _rows(spec)))

    results = benchmark(sweep)
    print("\nBootstrap vs dnum (L=35, q=50, all optimizations)")
    for dnum, row in results.items():
        print(
            f"  dnum={dnum}: keys {row['key_read_gb']:6.1f} GB, total "
            f"{row['dram_gb']:6.1f} GB, {row['giga_ops']:6.1f} Gops, "
            f"log PQ={row['log_qp']}"
        )
    # Smaller dnum -> fewer digits -> less switching-key traffic.
    key_gb = [results[d]["key_read_gb"] for d in dnums]
    assert key_gb == sorted(key_gb)
    # ...at the price of a larger raised modulus (security pressure).
    assert results[1]["log_qp"] > results[6]["log_qp"]


@pytest.mark.repro("Ablation: fftIter")
def test_ablation_fft_iter(benchmark):
    fft_iters = (2, 3, 4, 6, 8)
    spec = SweepSpec(
        name="ablation-fft-iter",
        evaluator="bootstrap.cost",
        axes=(
            SweepAxis(
                "params",
                tuple(
                    CkksParams(
                        log_n=17, log_q=50, max_limbs=40, dnum=2, fft_iter=f
                    )
                    for f in fft_iters
                ),
            ),
        ),
        context={"config": MADConfig.all()},
    )

    def sweep():
        return dict(zip(fft_iters, _rows(spec)))

    results = benchmark(sweep)
    print("\nBootstrap vs fftIter (L=40, q=50, dnum=2, all optimizations)")
    for fft_iter, row in results.items():
        print(
            f"  fftIter={fft_iter}: {row['dram_gb']:6.1f} GB, "
            f"log Q1 after bootstrap = {row['log_q1']}"
        )
    # More iterations leave fewer levels after bootstrapping...
    q1 = [results[f]["log_q1"] for f in fft_iters]
    assert q1 == sorted(q1, reverse=True)


@pytest.mark.repro("Ablation: individual optimizations")
def test_ablation_individual_flags(benchmark):
    flags = (
        "baseline",
        "cache_o1",
        "cache_beta",
        "cache_alpha",
        "mod_down_merge",
        "mod_down_hoist",
        "key_compression",
    )
    spec = SweepSpec(
        name="ablation-flags",
        evaluator="bootstrap.cost",
        axes=(SweepAxis("flag", flags),),
        context={"params": BASELINE_JUNG, "config": MADConfig.none()},
    )

    def sweep():
        return {
            row["flag"]: (row["giga_ops"], row["dram_gb"])
            for row in _rows(spec)
        }

    results = benchmark(sweep)
    print("\nEach optimization alone (baseline params)")
    base_ops, base_gb = results["baseline"]
    for name, (gops, gb) in results.items():
        print(f"  {name:16} {gops:7.1f} Gops  {gb:7.1f} GB")
        benchmark.extra_info[name] = round(gb, 1)
    # Every flag alone must not increase traffic; caching flags must not
    # change ops.
    for flag in flags[1:]:
        gops, gb = results[flag]
        assert gb <= base_gb + 1e-9
        if flag.startswith("cache"):
            assert gops == pytest.approx(base_ops)
