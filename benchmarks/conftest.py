"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper and records
the reproduced numbers in ``benchmark.extra_info`` (visible in the
pytest-benchmark JSON output) in addition to printing them.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "repro(target): which paper table/figure this regenerates"
    )
