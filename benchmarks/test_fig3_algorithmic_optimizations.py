"""Figure 3 — cumulative impact of the algorithmic optimizations on one
bootstrapping operation at the best-case (Table 5) parameters, on top of
all caching optimizations.

Paper effects: ModDown merge -6% compute; ModDown hoisting -34% compute
and -19% ciphertext DRAM with +25% key reads; key compression -50% key
reads; overall bootstrapping arithmetic intensity improves ~3x vs the
unoptimized baseline."""

import pytest

from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig
from repro.report import generate_fig3


@pytest.mark.repro("Figure 3")
def test_fig3_algorithmic_optimizations(benchmark):
    points = benchmark(generate_fig3, BASELINE_JUNG)
    baseline_ai = BootstrapModel(
        BASELINE_JUNG, MADConfig.none()
    ).total_cost().arithmetic_intensity

    print(f"\n{'Step':20} {'GOps':>8} {'ct DRAM':>9} {'key GB':>7} {'AI':>6}")
    for point in points:
        print(
            f"{point.label:20} {point.giga_ops:8.1f} {point.ct_dram_gb:9.1f} "
            f"{point.key_read_gb:7.1f} {point.arithmetic_intensity:6.2f}"
        )
        benchmark.extra_info[point.label] = round(point.giga_ops, 1)

    merge_cut = 1 - points[1].giga_ops / points[0].giga_ops
    hoist_cut = 1 - points[2].giga_ops / points[1].giga_ops
    key_rise = points[2].key_read_gb / points[1].key_read_gb - 1
    key_cut = 1 - points[3].key_read_gb / points[2].key_read_gb
    print(
        f"\nModDown merge compute cut : {merge_cut:5.1%} (paper  6%)\n"
        f"ModDown hoist compute cut : {hoist_cut:5.1%} (paper 34%)\n"
        f"Hoisting key-read increase: {key_rise:5.1%} (paper 25%)\n"
        f"Key compression key cut   : {key_cut:5.1%} (paper 50%)"
    )

    assert 0.02 <= merge_cut <= 0.12
    assert 0.25 <= hoist_cut <= 0.50
    assert 0.10 <= key_rise <= 0.40
    assert key_cut == pytest.approx(0.5)

    from repro.params import MAD_OPTIMAL

    final_ai = BootstrapModel(
        MAD_OPTIMAL, MADConfig.all()
    ).total_cost().arithmetic_intensity
    ratio = final_ai / baseline_ai
    print(f"Bootstrap AI improvement  : {ratio:5.2f}x (paper ~3x)")
    benchmark.extra_info["ai_improvement"] = round(ratio, 2)
    assert ratio >= 2.0
