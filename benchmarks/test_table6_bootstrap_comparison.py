"""Table 6 — bootstrapping throughput: prior designs vs their MAD
counterparts (same multipliers and bandwidth, 32 MB on-chip memory,
memory-aware optimal parameters).

Shape targets from the paper: MAD ~7x over the GPU implementation and
~2000x over F1's unpacked bootstrapping; BTS/ARK/CraterLake keep higher
raw throughput than their 32 MB MAD counterparts (factor ~1.7-4.6) but
need 8-16x more on-chip memory to do it."""

import pytest

from repro.report import generate_table6, render_table6


@pytest.mark.repro("Table 6")
def test_table6_bootstrap_comparison(benchmark):
    rows = benchmark(generate_table6)
    print("\n" + render_table6(rows))
    by_name = {r.design: r for r in rows}
    for row in rows:
        benchmark.extra_info[row.design] = round(row.throughput, 1)

    gpu, gpu_mad = by_name["GPU [Jung et al.]"], by_name["GPU [Jung et al.]+MAD-32"]
    print(f"\nGPU+MAD speedup: {gpu_mad.throughput / gpu.throughput:.1f}x "
          f"(paper ~7.3x)")
    assert gpu_mad.throughput > 3 * gpu.throughput

    f1, f1_mad = by_name["F1"], by_name["F1+MAD-32"]
    print(f"F1+MAD speedup: {f1_mad.throughput / f1.throughput:.0f}x "
          f"(paper ~2000x)")
    assert f1_mad.throughput > 1000 * f1.throughput

    for name, paper_ratio in (("BTS", 1.72), ("ARK", 2.13), ("CraterLake", 4.62)):
        ratio = by_name[name].throughput / by_name[f"{name}+MAD-32"].throughput
        print(f"{name} original/MAD throughput ratio: {ratio:.2f} "
              f"(paper {paper_ratio})")
        assert 1.0 < ratio < 10.0
        # ... while MAD uses 8-16x less on-chip memory.
        assert by_name[name].on_chip_mb / by_name[f"{name}+MAD-32"].on_chip_mb >= 8
