"""Table 5 — memory-aware optimal bootstrapping parameters.

The paper's brute-force search at 32 MB on-chip memory finds
(n=2^16, q=50, L=40, dnum=2, fftIter=6) versus the Jung et al. baseline
(q=54, L=35, dnum=3, fftIter=3).  We rank a focused grid around both sets
by the Eq. 3 throughput metric on the GPU-matched MAD design point and
check the searched optimum shares the paper's memory-aware signature:
dnum=2 and a longer modulus chain than the baseline."""

import pytest

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.report import generate_table5, render_table5
from repro.search import enumerate_parameter_space


@pytest.mark.repro("Table 5")
def test_table5_optimal_parameters(benchmark):
    candidates = list(
        enumerate_parameter_space(
            log_q_choices=(46, 50, 54, 58),
            max_limbs_choices=(30, 35, 38, 40, 42),
            dnum_choices=(1, 2, 3, 4),
            fft_iter_choices=(2, 3, 4, 6),
        )
    )
    table = benchmark.pedantic(
        generate_table5, kwargs={"candidates": candidates}, rounds=1, iterations=1
    )
    print("\n" + render_table5(table))
    best = table["searched"]
    benchmark.extra_info["best_params"] = best.params.describe()
    benchmark.extra_info["best_throughput"] = round(best.throughput, 1)

    # The memory-aware signature of the paper's optimum.
    assert best.params.dnum == MAD_OPTIMAL.dnum == 2
    assert best.params.max_limbs > BASELINE_JUNG.max_limbs
    assert best.params.fft_iter > BASELINE_JUNG.fft_iter
