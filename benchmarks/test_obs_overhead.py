"""Observability overhead — the disabled path must cost ~nothing.

Instrumented model code runs through :mod:`repro.obs.state` on every call;
when no tracer is installed each hook is a boolean test or a no-op method
on a shared singleton.  These benchmarks pin the disabled-path cost of the
bootstrap ledger (the most heavily instrumented code path) and record the
enabled-path cost next to it for comparison in ``extra_info``.
"""

import pytest

from repro.obs import state
from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig


def build_ledger():
    return BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()


@pytest.mark.repro("obs overhead (disabled)")
def test_ledger_with_tracing_disabled(benchmark):
    assert not state.tracing_enabled()
    ledger = benchmark(build_ledger)
    benchmark.extra_info["entries"] = len(ledger)
    benchmark.extra_info["tracing"] = "disabled"


@pytest.mark.repro("obs overhead (enabled)")
def test_ledger_with_tracing_enabled(benchmark):
    def traced():
        with state.capture():
            return build_ledger()

    ledger = benchmark(traced)
    benchmark.extra_info["entries"] = len(ledger)
    benchmark.extra_info["tracing"] = "enabled"


@pytest.mark.repro("obs overhead (null hooks)")
def test_null_hooks_are_cheap(benchmark):
    """Ten thousand disabled span/count pairs should cost milliseconds."""

    def hammer(iterations=10_000):
        for _ in range(iterations):
            with state.span("noop", level=1):
                pass
            state.count("noop")

    benchmark(hammer)


# ----------------------------------------------------------------------
# PR-6 telemetry: the new hooks must stay invisible when disabled, and
# the cross-process snapshot machinery must stay a rounding error next
# to the workload it observes.
# ----------------------------------------------------------------------
def _best_of(fn, repeats=7):
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.repro("telemetry overhead (profiled_span disabled)")
def test_profiled_span_disabled_path_gate(benchmark):
    """Disabled profiled_span must track plain obs.span within 5% + 5ms.

    The fast path is a single ``tracing_enabled()`` test before
    delegating to the null span; per 10k iterations the difference must
    be noise-level.
    """
    from repro.obs.profiler import profiled_span

    assert not state.tracing_enabled()

    def plain(iterations=10_000):
        for _ in range(iterations):
            with state.span("noop", index=1):
                pass

    def profiled(iterations=10_000):
        for _ in range(iterations):
            with profiled_span("noop", index=1):
                pass

    base = _best_of(plain)
    gated = _best_of(profiled)
    benchmark.extra_info["plain_s"] = base
    benchmark.extra_info["profiled_s"] = gated
    assert gated <= base * 1.05 + 0.005, (
        f"disabled profiled_span path too slow: {gated:.4f}s vs "
        f"{base:.4f}s plain (gate: 5% + 5ms)"
    )
    benchmark(profiled)


@pytest.mark.repro("telemetry overhead (snapshot capture+merge+graft)")
def test_snapshot_machinery_overhead_gate(benchmark):
    """Capture→merge→graft on the primitive micro trace: <5% + 2ms.

    This is exactly the extra work a ``--jobs N`` sweep does per chunk
    relative to serial tracing; gating it against the micro workload
    keeps the cross-process path honest as span trees grow.
    """
    from repro.obs.bench import primitive_micro_cost
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import (
        capture_snapshot,
        graft_snapshot,
        merge_snapshots,
    )
    from repro.obs.tracer import Tracer
    from repro.params import MAD_OPTIMAL

    params, config = MAD_OPTIMAL, MADConfig.all()

    def workload():
        with state.capture():
            primitive_micro_cost(params, config)

    def workload_with_snapshot():
        with state.capture() as (tracer, registry):
            primitive_micro_cost(params, config)
            snapshot = capture_snapshot(tracer, registry)
        merged = merge_snapshots([snapshot, snapshot])
        graft_snapshot(merged, Tracer())

    base = _best_of(workload)
    full = _best_of(workload_with_snapshot)
    benchmark.extra_info["workload_s"] = base
    benchmark.extra_info["with_snapshot_s"] = full
    assert full <= base * 1.05 + 0.002, (
        f"snapshot machinery too slow: {full:.4f}s vs {base:.4f}s "
        f"workload (gate: 5% + 2ms)"
    )
    benchmark(workload_with_snapshot)


@pytest.mark.repro("telemetry overhead (event emission)")
def test_event_emission_throughput(benchmark, tmp_path):
    """1k chunk_complete emissions land in tens of milliseconds."""
    from repro.obs.events import CHUNK_COMPLETE, EventLog, provenance

    path = str(tmp_path / "events.jsonl")

    def emit(lines=1_000):
        with EventLog(path) as log:
            log.start("bench", provenance_block=provenance())
            for index in range(lines):
                log.emit(
                    CHUNK_COMPLETE,
                    {"chunk": index, "points_done": index},
                )

    elapsed = _best_of(emit, repeats=3)
    benchmark.extra_info["emit_1k_s"] = elapsed
    assert elapsed < 0.5, f"event emission too slow: {elapsed:.3f}s per 1k"
    benchmark(emit)
