"""Observability overhead — the disabled path must cost ~nothing.

Instrumented model code runs through :mod:`repro.obs.state` on every call;
when no tracer is installed each hook is a boolean test or a no-op method
on a shared singleton.  These benchmarks pin the disabled-path cost of the
bootstrap ledger (the most heavily instrumented code path) and record the
enabled-path cost next to it for comparison in ``extra_info``.
"""

import pytest

from repro.obs import state
from repro.params import BASELINE_JUNG
from repro.perf import BootstrapModel, MADConfig


def build_ledger():
    return BootstrapModel(BASELINE_JUNG, MADConfig.none()).ledger()


@pytest.mark.repro("obs overhead (disabled)")
def test_ledger_with_tracing_disabled(benchmark):
    assert not state.tracing_enabled()
    ledger = benchmark(build_ledger)
    benchmark.extra_info["entries"] = len(ledger)
    benchmark.extra_info["tracing"] = "disabled"


@pytest.mark.repro("obs overhead (enabled)")
def test_ledger_with_tracing_enabled(benchmark):
    def traced():
        with state.capture():
            return build_ledger()

    ledger = benchmark(traced)
    benchmark.extra_info["entries"] = len(ledger)
    benchmark.extra_info["tracing"] = "enabled"


@pytest.mark.repro("obs overhead (null hooks)")
def test_null_hooks_are_cheap(benchmark):
    """Ten thousand disabled span/count pairs should cost milliseconds."""

    def hammer(iterations=10_000):
        for _ in range(iterations):
            with state.span("noop", level=1):
                pass
            state.count("noop")

    benchmark(hammer)
