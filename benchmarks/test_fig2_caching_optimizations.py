"""Figure 2 — cumulative DRAM-transfer impact of the caching optimizations
on one bootstrapping operation (baseline Jung et al. parameters).

Paper reductions vs baseline: O(1)-limb 15%, O(beta) 22%, O(alpha) 44%,
limb re-ordering 52%; switching-key reads stay constant throughout."""

import pytest

from repro.report import generate_fig2

PAPER_REDUCTIONS = {
    "1-limb Cache": 0.15,
    "beta-limb Cache": 0.22,
    "alpha-limb Cache": 0.44,
    "Limb Re-order": 0.52,
}


@pytest.mark.repro("Figure 2")
def test_fig2_caching_optimizations(benchmark):
    points = benchmark(generate_fig2)
    print(f"\n{'Step':18} {'DRAM GB':>9} {'ct read':>9} {'ct write':>9} "
          f"{'keys':>7} {'ours':>7} {'paper':>7}")
    for point in points:
        paper = PAPER_REDUCTIONS.get(point.label)
        paper_str = f"{paper:7.0%}" if paper is not None else "      -"
        print(
            f"{point.label:18} {point.dram_gb:9.1f} {point.ct_read_gb:9.1f} "
            f"{point.ct_write_gb:9.1f} {point.key_read_gb:7.1f} "
            f"{point.reduction_vs_baseline:7.0%} {paper_str}"
        )
        benchmark.extra_info[point.label] = round(point.dram_gb, 1)

    # Shape assertions: monotone cumulative reduction, constant key reads,
    # final reduction of the right magnitude.
    totals = [p.dram_gb for p in points]
    assert totals == sorted(totals, reverse=True)
    assert all(
        p.key_read_gb == pytest.approx(points[0].key_read_gb) for p in points
    )
    assert 0.35 <= points[-1].reduction_vs_baseline <= 0.60
