"""Table 4 — total ops, DRAM transfers and arithmetic intensity of every
CKKS primitive plus bootstrapping (N=2^17, l=35, dnum=3, small cache).

Paper reference values: all primitives have AI < 1 op/byte except ModUp
(1.88) and ModDown (1.59); bootstrapping totals 149.5 Gops / 208 GB
(AI 0.72)."""

import pytest

from repro.report import generate_table4, render_table4

PAPER = {
    "PtAdd": (0.0046, 0.1101),
    "Add": (0.0092, 0.2202),
    "PtMult": (0.2747, 0.3282),
    "Decomp": (0.0092, 0.0734),
    "ModUp": (0.2847, 0.1510),
    "KSKInnerProd": (0.0629, 0.4530),
    "ModDown": (0.3000, 0.1877),
    "Mult": (1.8333, 1.9293),
    "Automorph": (0.0, 0.1468),
    "Rotate": (1.5310, 1.5645),
    "Conjugate": (1.5310, 1.5645),
    "Bootstrap": (149.546, 207.982),
}


@pytest.mark.repro("Table 4")
def test_table4_arithmetic_intensity(benchmark):
    rows = benchmark(generate_table4)
    print("\n" + render_table4(rows))
    print(f"\n{'Operation':14} {'ours GOps':>10} {'paper':>8} "
          f"{'ours GB':>9} {'paper':>8}")
    for row in rows:
        paper_ops, paper_gb = PAPER[row.operation]
        print(
            f"{row.operation:14} {row.giga_ops:10.4f} {paper_ops:8.4f} "
            f"{row.dram_gb:9.4f} {paper_gb:8.4f}"
        )
        benchmark.extra_info[f"{row.operation}_gops"] = round(row.giga_ops, 4)
        benchmark.extra_info[f"{row.operation}_gb"] = round(row.dram_gb, 4)
    by_name = {r.operation: r for r in rows}
    # Headline checks: the table's shape.
    assert by_name["Bootstrap"].arithmetic_intensity < 1.0
    for name, (paper_ops, paper_gb) in PAPER.items():
        row = by_name[name]
        if paper_ops:
            assert row.giga_ops == pytest.approx(paper_ops, rel=0.25)
        assert row.dram_gb == pytest.approx(paper_gb, rel=0.25)
