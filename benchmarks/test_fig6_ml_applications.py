"""Figure 6 — LR training and ResNet-20 inference across designs.

For each prior design, the original configuration (its own parameters and
on-chip memory, no MAD techniques) is compared against design+MAD at
several cache sizes.  Paper shape: GPU+MAD-6 ~3.5x / GPU+MAD-32 ~17x
faster LR training; F1+MAD ~25-27x; CraterLake+MAD ~2.5x (LR) and 8-13x
(ResNet); BTS/ARK+MAD improve ResNet-20 inference at every cache size."""

import pytest

from repro.hardware import ARK, BTS, CRATERLAKE, F1, GPU_JUNG
from repro.report import generate_fig6_lr, generate_fig6_resnet


def _show(benchmark, title, bars):
    print(f"\n{title}")
    for bar in bars:
        print(
            f"  {bar.label:28} {bar.seconds:9.3f} s  ({bar.bound}-bound)"
            f"  speedup {bar.speedup_vs_original:6.2f}x"
        )
        benchmark.extra_info[f"{title}:{bar.label}"] = round(
            bar.speedup_vs_original, 2
        )


@pytest.mark.repro("Figure 6a")
def test_fig6a_lr_gpu(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_lr, args=(GPU_JUNG, (6, 32)), rounds=1, iterations=1
    )
    _show(benchmark, "LR training on GPU (paper: 3.5x / 17x)", bars)
    assert bars[1].speedup_vs_original > 1.2  # GPU+MAD-6
    assert bars[2].speedup_vs_original > bars[1].speedup_vs_original


@pytest.mark.repro("Figure 6b")
def test_fig6b_lr_f1(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_lr, args=(F1, (32, 64)), rounds=1, iterations=1
    )
    _show(benchmark, "LR training on F1 (paper: ~25x / ~27x)", bars)
    # Our model charges F1's unpacked bootstrapping per slot (consistent
    # with its Table 6 throughput), so the gap is far larger than the
    # paper's 25x; the direction and the 32-vs-64 MB insensitivity hold.
    assert bars[1].speedup_vs_original > 20.0
    assert bars[2].seconds == pytest.approx(bars[1].seconds, rel=0.35)


@pytest.mark.repro("Figure 6c")
def test_fig6c_lr_craterlake(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_lr, args=(CRATERLAKE, (32, 256)), rounds=1, iterations=1
    )
    _show(benchmark, "LR training on CraterLake (paper: 2.5x / 2.5x)", bars)
    assert bars[1].speedup_vs_original > 1.0


@pytest.mark.repro("Figure 6d")
def test_fig6d_lr_bts(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_lr, args=(BTS, (32, 256, 512)), rounds=1, iterations=1
    )
    _show(benchmark, "LR training on BTS (paper: ~0.5x at 512 MB)", bars)
    # Shape: extra cache beyond 32 MB gives little additional benefit.
    assert bars[-1].seconds == pytest.approx(bars[1].seconds, rel=0.35)


@pytest.mark.repro("Figure 6e")
def test_fig6e_lr_ark(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_lr, args=(ARK, (32, 512)), rounds=1, iterations=1
    )
    _show(benchmark, "LR training on ARK", bars)
    assert len(bars) == 3


@pytest.mark.repro("Figure 6f")
def test_fig6f_resnet_craterlake(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_resnet, args=(CRATERLAKE, (32, 256)), rounds=1, iterations=1
    )
    _show(benchmark, "ResNet-20 on CraterLake (paper: 8x / 13x)", bars)
    assert bars[1].speedup_vs_original > 1.0


@pytest.mark.repro("Figure 6g")
def test_fig6g_resnet_bts(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_resnet, args=(BTS, (32, 256, 512)), rounds=1, iterations=1
    )
    _show(benchmark, "ResNet-20 on BTS (paper: 21x / 36x / 57x)", bars)
    assert all(b.speedup_vs_original > 1.0 for b in bars[1:])


@pytest.mark.repro("Figure 6h")
def test_fig6h_resnet_ark(benchmark):
    bars = benchmark.pedantic(
        generate_fig6_resnet, args=(ARK, (32, 256, 512)), rounds=1, iterations=1
    )
    _show(benchmark, "ResNet-20 on ARK (paper: 1.3x / 2.2x / 3.6x)", bars)
    # ARK's own parameters (N=2^16, aggressive key reuse) are efficient;
    # the paper itself reports mixed outcomes for ARK (its LR *slows down*
    # 4x under MAD).  Accept either direction within a sane band.
    assert all(0.3 < b.speedup_vs_original < 5.0 for b in bars[1:])
