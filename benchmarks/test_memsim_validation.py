"""Differential validation of the Fig. 2 ladder by trace-driven simulation.

Replays every caching-ladder rung's primitive schedules through the
pin-aware simulated cache at the paper's capacities and asserts the
simulated per-stream DRAM bytes reproduce the analytical ladder within
tolerance — the end-to-end gate the ``memsim`` CI job runs.

The one place the analytical fit thresholds genuinely break is
documented and *asserted*, not tolerated: at 32 MB the O(beta) x
limb-reorder composition inside PtMatVecMult needs 2*k*(baby-1) = 168
resident limbs (~176 MB), so simulated ct_read exceeds the analytical
claim with thousands of forced pinned-block evictions; bootstrap
inherits the break through CoeffToSlot/SlotToCoeff.  At 192 MB the
working set fits and both are bit-exact again.
"""

import pytest

from repro.memsim.validate import (
    DEFAULT_TOLERANCE,
    EXPECTED_FIT_BREAKS,
    run_validation,
    validate_memsim_report,
)


@pytest.fixture(scope="module")
def report():
    return run_validation()


@pytest.mark.repro("Figure 2 (trace-driven)")
def test_memsim_ladder_validates(benchmark, report):
    sampled = benchmark.pedantic(
        run_validation,
        kwargs={"primitives": ["mult"], "runs": None},
        rounds=1,
        iterations=1,
    )
    assert sampled["passed"]
    validate_memsim_report(report)
    assert report["passed"], "differential validation failed"

    print(f"\n{'Rung':18} {'Cache':>7} {'worst |rel|':>12} {'breaks':>7}")
    for run in report["runs"]:
        worst = max(e["max_abs_rel_error"] for e in run["primitives"])
        breaks = sum(1 for e in run["primitives"] if e["fit_broken"])
        print(
            f"{run['label']:18} {run['cache_mb']:5.0f}MB {worst:12.4f} "
            f"{breaks:7d}"
        )
        benchmark.extra_info[f"{run['label']}@{run['cache_mb']:.0f}MB"] = worst


def test_every_fitting_rung_within_tolerance(report):
    """<= 5% per stream wherever no documented break applies."""
    for run in report["runs"]:
        for entry in run["primitives"]:
            if entry["expected_fit_break"]:
                continue
            assert entry["max_abs_rel_error"] <= DEFAULT_TOLERANCE, (
                f"{run['label']}@{run['cache_mb']}MB {entry['primitive']}: "
                f"rel error {entry['max_abs_rel_error']:.4f}"
            )


def test_fitting_rungs_are_bit_exact(report):
    """Stronger than the tolerance gate: streaming-read semantics make
    every non-breaking rung *exactly* reproduce the analytical bytes."""
    for run in report["runs"]:
        for entry in run["primitives"]:
            if entry["expected_fit_break"]:
                continue
            for field, stream in entry["streams"].items():
                assert stream["simulated"] == stream["analytical"], (
                    f"{run['label']}@{run['cache_mb']}MB "
                    f"{entry['primitive']}.{field}"
                )


def test_documented_fit_break_at_32mb(report):
    """The analytical fit threshold breaks exactly where documented."""
    rung = next(
        r
        for r in report["runs"]
        if r["label"] == "Limb Re-order" and r["cache_mb"] == 32.0
    )
    by_name = {e["primitive"]: e for e in rung["primitives"]}

    matvec = by_name["pt_mat_vec_mult"]
    assert matvec["fit_broken"] and matvec["expected_fit_break"]
    assert matvec["pin_failures"] > 1000  # forced pinned-block evictions
    assert matvec["streams"]["ct_read"]["rel_error"] > 1.0  # >100% excess
    # Key reads are uncacheable: never affected by a capacity break.
    assert matvec["streams"]["key_read"]["rel_error"] == 0.0

    bootstrap = by_name["bootstrap"]
    assert bootstrap["fit_broken"] and bootstrap["expected_fit_break"]
    assert bootstrap["pin_failures"] > 1000
    assert bootstrap["streams"]["ct_read"]["rel_error"] > 0.5

    # Nothing else on this rung breaks.
    others = set(by_name) - {"pt_mat_vec_mult", "bootstrap"}
    assert not any(by_name[name]["fit_broken"] for name in others)


def test_break_resolves_at_192mb(report):
    """At 192 MB the reorder composition fits: exact again, zero pins."""
    rung = next(r for r in report["runs"] if r["cache_mb"] == 192.0)
    for entry in rung["primitives"]:
        assert not entry["fit_broken"], entry["primitive"]
        assert entry["pin_failures"] == 0, entry["primitive"]
        assert entry["max_abs_rel_error"] == 0.0, entry["primitive"]


def test_expected_breaks_table_matches_report(report):
    """EXPECTED_FIT_BREAKS is exactly the set of observed divergences."""
    observed = {
        (run["label"], run["cache_mb"], entry["primitive"])
        for run in report["runs"]
        for entry in run["primitives"]
        if entry["fit_broken"]
    }
    assert observed == set(EXPECTED_FIT_BREAKS)
