"""Figure 1 — O(1)-limb caching on the Rotate operation.

Paper example: rotating a 35-limb ciphertext naively round-trips every
limb through DRAM for each of the Automorph/Decomp/iNTT sub-operations
(105 reads + 105 writes on the c1 chain); fusing them on a resident limb
needs 35+35, avoiding ~124 MB of transfers per Rotate."""

import pytest

from repro.report import generate_fig1


@pytest.mark.repro("Figure 1")
def test_fig1_rotate_caching(benchmark):
    data = benchmark(generate_fig1)
    print(
        f"\nRotate on a {data['limbs']}-limb ciphertext:\n"
        f"  naive : {data['naive_reads']:.0f} limb reads, "
        f"{data['naive_writes']:.0f} limb writes\n"
        f"  O(1)  : {data['cached_reads']:.0f} limb reads, "
        f"{data['cached_writes']:.0f} limb writes\n"
        f"  saved : {data['saved_mb']:.0f} MB per Rotate (paper: >= 124 MB)"
    )
    benchmark.extra_info.update({k: round(v, 1) for k, v in data.items()})
    assert data["cached_reads"] < data["naive_reads"]
    assert data["cached_writes"] < data["naive_writes"]
    assert data["saved_mb"] >= 124
