"""Brute-force throughput-maximising parameter search (Section 4.1).

Given a hardware budget (multiplier count, bandwidth, on-chip memory),
evaluate the bootstrapping cost model for every admissible parameter set
and rank by the Han-Ki throughput metric.  This regenerates the
"Ours" row of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.params import CkksParams
from repro.perf import BootstrapModel, MADConfig
from repro.perf.events import CostReport
from repro.hardware.design import HardwareDesign
from repro.hardware.runtime import RuntimeEstimate, estimate_runtime
from repro.search.space import enumerate_parameter_space
from repro.search.throughput import bootstrap_throughput


@dataclass(frozen=True)
class ParameterSearchResult:
    """One evaluated parameter set."""

    params: CkksParams
    cost: CostReport
    runtime: RuntimeEstimate
    throughput: float

    def describe(self) -> str:
        return (
            f"{self.params.describe()}: {self.runtime.milliseconds:.2f} ms "
            f"({self.runtime.bound}-bound), throughput {self.throughput:.0f}"
        )


def find_optimal_parameters(
    design: HardwareDesign,
    config: MADConfig = MADConfig.all(),
    candidates: Optional[Iterable[CkksParams]] = None,
    enforce_cache: bool = False,
    top: int = 10,
) -> List[ParameterSearchResult]:
    """Rank parameter sets by bootstrapping throughput on ``design``.

    Args:
        design: the hardware budget (multipliers, bandwidth, on-chip MB).
        config: MAD optimizations to assume.
        candidates: parameter sets to evaluate; defaults to the full
            admissible space for the design's ring degree.
        enforce_cache: gate caching optimizations on the design's actual
            on-chip capacity (the paper assumes 32 MB suffices for its
            optimal set; pass True for strictly-capacity-checked results).
        top: how many results to return, best first.
    """
    if candidates is None:
        candidates = enumerate_parameter_space(log_n=design.params.log_n)
    cache = design.cache if enforce_cache else None
    results = []
    for params in candidates:
        model = BootstrapModel(params, config, cache)
        cost = model.total_cost()
        runtime = estimate_runtime(cost, design)
        throughput = bootstrap_throughput(
            params.slots,
            params.log_q1,
            params.bit_precision,
            runtime.seconds,
        )
        results.append(
            ParameterSearchResult(
                params=params,
                cost=cost,
                runtime=runtime,
                throughput=throughput,
            )
        )
    results.sort(key=lambda r: r.throughput, reverse=True)
    return results[:top]
