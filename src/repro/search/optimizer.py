"""Brute-force throughput-maximising parameter search (Section 4.1).

Given a hardware budget (multiplier count, bandwidth, on-chip memory),
evaluate the bootstrapping cost model for every admissible parameter set
and rank by the Han-Ki throughput metric.  This regenerates the
"Ours" row of Table 5.

Candidates are evaluated through :mod:`repro.sweep` — pass ``jobs=N`` to
fan the grid out over worker processes.  The ranking is a **total,
documented order** (see :func:`ranking_key`), so the result is
bit-identical for any worker count and independent of enumeration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.params import CkksParams
from repro.perf import MADConfig
from repro.perf.events import CostReport
from repro.hardware.design import HardwareDesign
from repro.hardware.runtime import RuntimeEstimate


@dataclass(frozen=True)
class ParameterSearchResult:
    """One evaluated parameter set."""

    params: CkksParams
    cost: CostReport
    runtime: RuntimeEstimate
    throughput: float

    def describe(self) -> str:
        return (
            f"{self.params.describe()}: {self.runtime.milliseconds:.2f} ms "
            f"({self.runtime.bound}-bound), throughput {self.throughput:.0f}"
        )


def params_key(params: CkksParams) -> Tuple:
    """Canonical total order over CKKS parameter sets.

    Used as the final ranking tie-break: two distinct parameter sets can
    share a throughput *and* a runtime (the cost model is piecewise in
    the parameters), and without a total order their relative rank would
    depend on enumeration order — nondeterministic under parallel merge.
    """
    return (
        params.log_n,
        params.log_q,
        params.max_limbs,
        params.dnum,
        params.fft_iter,
        params.special_bits,
        params.eval_mod_depth,
        params.bit_precision,
        params.word_bytes,
    )


def ranking_key(result: ParameterSearchResult) -> Tuple:
    """The documented total ranking order of search results.

    1. throughput, descending (the Table 5 figure of merit);
    2. runtime, ascending (of equal-throughput sets, prefer the faster);
    3. :func:`params_key`, ascending (a canonical tie-break so the order
       is total and independent of enumeration or worker count).
    """
    return (-result.throughput, result.runtime.seconds, params_key(result.params))


def find_optimal_parameters(
    design: HardwareDesign,
    config: MADConfig = MADConfig.all(),
    candidates: Optional[Iterable[CkksParams]] = None,
    enforce_cache: bool = False,
    top: int = 10,
    jobs: int = 1,
) -> List[ParameterSearchResult]:
    """Rank parameter sets by bootstrapping throughput on ``design``.

    Args:
        design: the hardware budget (multipliers, bandwidth, on-chip MB).
        config: MAD optimizations to assume.
        candidates: parameter sets to evaluate; defaults to the full
            admissible space for the design's ring degree.  Any iterable
            is accepted and materialised up front, so generators are safe
            even when the caller also consumes them elsewhere.
        enforce_cache: gate caching optimizations on the design's actual
            on-chip capacity (the paper assumes 32 MB suffices for its
            optimal set; pass True for strictly-capacity-checked results).
        top: how many results to return, best first.
        jobs: worker processes for the sweep; ``1`` evaluates in-process.
    """
    from repro.search.space import enumerate_parameter_space
    from repro.sweep import SweepAxis, SweepSpec, run_sweep

    if candidates is None:
        candidates = enumerate_parameter_space(log_n=design.params.log_n)
    # Materialise exactly once: a generator consumed here must not be
    # silently exhausted (or half-exhausted) for the caller — and the
    # sweep axes need a concrete, canonically ordered tuple anyway.
    candidate_tuple = tuple(candidates)
    if not candidate_tuple:
        return []
    spec = SweepSpec(
        name="table5-search",
        evaluator="search.candidate",
        axes=(SweepAxis("params", candidate_tuple),),
        context={
            "design": design,
            "config": config,
            "enforce_cache": enforce_cache,
        },
    )
    outcome = run_sweep(spec, jobs=jobs)
    results = sorted(outcome.values, key=ranking_key)
    return results[:top]
