"""Memory-aware CKKS parameter search (Table 5)."""

from repro.search.throughput import bootstrap_throughput
from repro.search.space import enumerate_parameter_space
from repro.search.optimizer import (
    ParameterSearchResult,
    find_optimal_parameters,
    params_key,
    ranking_key,
)

__all__ = [
    "bootstrap_throughput",
    "enumerate_parameter_space",
    "ParameterSearchResult",
    "find_optimal_parameters",
    "params_key",
    "ranking_key",
]
