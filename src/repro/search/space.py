"""Enumeration of the bootstrappable, secure CKKS parameter space.

The security constraint prunes aggressively: the total modulus
``log2(PQ) = (L + alpha) * log_q`` must stay below the 128-bit Ring-LWE
bound for the ring degree, and the level budget must leave at least one
usable limb after bootstrapping.  This is why the paper's brute-force
search "takes only a few minutes".
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.params import CkksParams


def enumerate_parameter_space(
    log_n: int = 17,
    log_q_choices: Sequence[int] = tuple(range(40, 61, 2)),
    max_limbs_choices: Sequence[int] = tuple(range(24, 46)),
    dnum_choices: Sequence[int] = (1, 2, 3, 4, 5, 6),
    fft_iter_choices: Sequence[int] = (2, 3, 4, 6, 8),
    min_log_q1: int = 400,
    require_security: bool = True,
) -> Iterator[CkksParams]:
    """Yield every admissible CKKS parameter set in the grid.

    Args:
        log_n: ring degree exponent.
        log_q_choices: candidate limb modulus sizes (bits).
        max_limbs_choices: candidate ``L`` values.
        dnum_choices: candidate key-switching digit counts.
        fft_iter_choices: candidate DFT iteration counts.
        min_log_q1: minimum post-bootstrap modulus (a bootstrap that leaves
            no levels is useless; the paper's designs all keep >= 400 bits).
        require_security: enforce the 128-bit Ring-LWE bound.
    """
    for log_q in log_q_choices:
        for max_limbs in max_limbs_choices:
            for dnum in dnum_choices:
                if dnum > max_limbs + 1:
                    continue
                for fft_iter in fft_iter_choices:
                    try:
                        params = CkksParams(
                            log_n=log_n,
                            log_q=log_q,
                            max_limbs=max_limbs,
                            dnum=dnum,
                            fft_iter=fft_iter,
                        )
                    except ValueError:
                        continue
                    if not params.supports_bootstrapping():
                        continue
                    if params.log_q1 < min_log_q1:
                        continue
                    if require_security and not params.is_128_bit_secure():
                        continue
                    yield params
