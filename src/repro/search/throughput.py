"""The Han-Ki bootstrapping throughput metric (Eq. 3 of the paper).

    throughput = n * log2(Q_1) * bit_precision / bootstrap_runtime

``n`` counts the plaintext slots refreshed, ``log2(Q_1)`` measures the
compute levels the refreshed ciphertext supports, and ``bit_precision`` the
plaintext accuracy.  The product is "useful work" per bootstrap; dividing
by runtime yields a figure of merit that is comparable across designs that
bootstrap different slot counts.
"""

from __future__ import annotations

#: The paper reports throughput in units of 1e7 bit-levels/second (the GPU
#: row works out to 409 in these units).
PAPER_THROUGHPUT_UNIT = 1e7


def bootstrap_throughput(
    slots: int,
    log_q1: int,
    bit_precision: int,
    runtime_seconds: float,
    unit: float = PAPER_THROUGHPUT_UNIT,
) -> float:
    """Bootstrapping throughput in the paper's reporting unit."""
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    if log_q1 <= 0:
        raise ValueError(f"log_q1 must be positive, got {log_q1}")
    if bit_precision <= 0:
        raise ValueError(f"bit_precision must be positive, got {bit_precision}")
    if runtime_seconds <= 0:
        raise ValueError(f"runtime must be positive, got {runtime_seconds}")
    return slots * log_q1 * bit_precision / runtime_seconds / unit
