"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables/figures or run ad-hoc analyses:

    python -m repro table4
    python -m repro table6
    python -m repro fig2
    python -m repro bootstrap --params optimal --config all
    python -m repro search --multipliers 4096 --bandwidth 1000 --cache-mb 32
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import BootstrapModel, CacheModel, MADConfig

_PARAM_SETS = {"baseline": BASELINE_JUNG, "optimal": MAD_OPTIMAL}
_CONFIGS = {
    "none": MADConfig.none,
    "caching": MADConfig.caching_only,
    "all": MADConfig.all,
}


def _cmd_table4(args) -> int:
    from repro.report import generate_table4, render_table4

    config = _CONFIGS[args.config]()
    print(render_table4(generate_table4(_PARAM_SETS[args.params], config)))
    return 0


def _cmd_table5(args) -> int:
    from repro.report import generate_table5, render_table5
    from repro.search import enumerate_parameter_space

    candidates = None
    if args.quick:
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50, 54, 58),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 4, 6),
            )
        )
    print(render_table5(generate_table5(candidates=candidates)))
    return 0


def _cmd_table6(args) -> int:
    from repro.report import generate_table6, render_table6

    print(render_table6(generate_table6()))
    return 0


def _cmd_fig1(args) -> int:
    from repro.report import generate_fig1

    data = generate_fig1()
    print(
        f"Rotate, {data['limbs']} limbs:\n"
        f"  naive: {data['naive_reads']:.0f} reads / "
        f"{data['naive_writes']:.0f} writes\n"
        f"  O(1) : {data['cached_reads']:.0f} reads / "
        f"{data['cached_writes']:.0f} writes\n"
        f"  saved: {data['saved_mb']:.0f} MB"
    )
    return 0


def _cmd_fig2(args) -> int:
    from repro.report import generate_fig2

    for p in generate_fig2():
        print(
            f"{p.label:18} {p.dram_gb:7.1f} GB "
            f"({p.reduction_vs_baseline:6.1%} vs baseline)"
        )
    return 0


def _cmd_fig3(args) -> int:
    from repro.report import generate_fig3

    for p in generate_fig3(_PARAM_SETS[args.params]):
        print(
            f"{p.label:20} {p.giga_ops:7.1f} Gops, ct {p.ct_dram_gb:6.1f} GB, "
            f"keys {p.key_read_gb:5.1f} GB, AI {p.arithmetic_intensity:.2f}"
        )
    return 0


def _cmd_fig6(args) -> int:
    from repro.hardware import PRIOR_DESIGNS
    from repro.report import generate_fig6_lr, generate_fig6_resnet

    design = PRIOR_DESIGNS[args.design]
    sizes = [float(s) for s in args.caches.split(",")]
    generator = generate_fig6_lr if args.workload == "lr" else generate_fig6_resnet
    for bar in generator(design, sizes):
        print(
            f"{bar.label:30} {bar.seconds:9.3f} s ({bar.bound}-bound) "
            f"{bar.speedup_vs_original:6.2f}x"
        )
    return 0


def _cmd_bootstrap(args) -> int:
    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    cache = CacheModel.from_mb(args.cache_mb) if args.cache_mb else None
    breakdown = BootstrapModel(params, config, cache).cost()
    print(params.describe())
    for name, cost in breakdown.phases().items():
        print(
            f"  {name:14} {cost.giga_ops():8.1f} Gops  "
            f"{cost.gigabytes():7.1f} GB  AI {cost.arithmetic_intensity:5.2f}"
        )
    total = breakdown.total
    print(
        f"  {'Total':14} {total.giga_ops():8.1f} Gops  "
        f"{total.gigabytes():7.1f} GB  AI {total.arithmetic_intensity:5.2f}"
    )
    return 0


def _cmd_ledger(args) -> int:
    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    print(params.describe())
    print(BootstrapModel(params, config).ledger().render())
    return 0


def _cmd_balance(args) -> int:
    from repro.hardware import PRIOR_DESIGNS, balance_point, mad_counterpart, render_balance

    cost = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    for name, design in PRIOR_DESIGNS.items():
        mad = mad_counterpart(design)
        print(render_balance(mad.name, balance_point(cost, mad)))
    return 0


def _cmd_search(args) -> int:
    from repro.hardware import HardwareDesign
    from repro.search import enumerate_parameter_space, find_optimal_parameters

    design = HardwareDesign(
        name="custom",
        modular_multipliers=args.multipliers,
        on_chip_mb=args.cache_mb,
        bandwidth_gb_s=args.bandwidth,
        params=BASELINE_JUNG,
    )
    candidates = None
    if args.quick:
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(46, 50, 54, 58),
                max_limbs_choices=(30, 35, 40),
                dnum_choices=(1, 2, 3),
                fft_iter_choices=(3, 4, 6),
            )
        )
    for rank, result in enumerate(
        find_optimal_parameters(design, candidates=candidates, top=args.top),
        start=1,
    ):
        print(f"#{rank} {result.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAD / SimFHE reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table4", help="per-primitive ops/DRAM/AI table")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("table5", help="memory-aware optimal parameters")
    p.add_argument("--quick", action="store_true", help="search a small grid")
    p.set_defaults(func=_cmd_table5)

    p = sub.add_parser("table6", help="bootstrapping design comparison")
    p.set_defaults(func=_cmd_table6)

    p = sub.add_parser("fig1", help="Rotate O(1)-caching example")
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="caching-optimization ladder")
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="algorithmic-optimization ladder")
    p.add_argument("--params", choices=_PARAM_SETS, default="optimal")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig6", help="ML application comparison")
    p.add_argument("--workload", choices=("lr", "resnet"), default="lr")
    p.add_argument("--design", default="BTS")
    p.add_argument("--caches", default="32,256")
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("bootstrap", help="bootstrap cost breakdown")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--cache-mb", type=float, default=None)
    p.set_defaults(func=_cmd_bootstrap)

    p = sub.add_parser("ledger", help="labeled bootstrap cost ledger")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.set_defaults(func=_cmd_ledger)

    p = sub.add_parser("balance", help="roofline balance of MAD design points")
    p.set_defaults(func=_cmd_balance)

    p = sub.add_parser("search", help="parameter search for a hardware budget")
    p.add_argument("--multipliers", type=int, default=4096)
    p.add_argument("--bandwidth", type=float, default=1000)
    p.add_argument("--cache-mb", type=float, default=32)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_search)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
