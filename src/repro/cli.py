"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables/figures or run ad-hoc analyses:

    python -m repro table4
    python -m repro table6
    python -m repro fig2
    python -m repro bootstrap --params optimal --config all
    python -m repro search --multipliers 4096 --bandwidth 1000 --cache-mb 32
    python -m repro trace bootstrap --out trace.json --report run_report.json
    python -m repro diff base_report.json run_report.json --json cost_diff.json
    python -m repro bench --check
    python -m repro lint --json src/repro
    python -m repro sweep table5 --jobs 4 --out sweep_report.json
    python -m repro sweep table5 --jobs 4 --events events.jsonl --report run_report.json
    python -m repro serve mixed --seed 0 --out serve_report.json
    python -m repro profile bootstrap --params optimal --config all
    python -m repro top events.jsonl
    python -m repro dash events.jsonl --out dash.html

Table commands accept ``--json`` for machine-readable output; ``trace``
records a hierarchical span tree and writes it as Chrome trace-event JSON
(viewable in Perfetto or ``chrome://tracing``); ``diff`` attributes the
cost delta between two run reports span by span; ``bench`` gates the
analytical workloads against the committed baselines in
``benchmarks/baselines/``; ``lint`` mechanically enforces the cost-model
and observability invariants (see :mod:`repro.lint`); ``sweep`` runs a
declarative parameter sweep (see :mod:`repro.sweep`) over worker
processes with a resumable machine-readable report, optionally streaming
a ``repro.obs.events/v1`` JSONL event log and a merged cross-process
``run_report.json``; ``serve`` runs a seed-deterministic multi-tenant
serving simulation (see :mod:`repro.serve`) and writes a
``repro.serve/v1`` report with per-tenant latency percentiles, SLA
verdicts, batching efficiency and cost-per-request; ``profile``
attributes host resources (RSS,
allocation peaks, CPU, GC) span by span; ``top`` renders live progress
from an event stream; ``dash`` turns an event stream into a
self-contained HTML dashboard.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import BootstrapModel, CacheModel, MADConfig

_PARAM_SETS = {"baseline": BASELINE_JUNG, "optimal": MAD_OPTIMAL}
_CONFIGS = {
    "none": MADConfig.none,
    "caching": MADConfig.caching_only,
    "all": MADConfig.all,
}


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=1, sort_keys=True))


def _cmd_table4(args) -> int:
    from repro.report import generate_table4, render_table4

    config = _CONFIGS[args.config]()
    rows = generate_table4(_PARAM_SETS[args.params], config)
    if args.json:
        _print_json([asdict(row) for row in rows])
    else:
        print(render_table4(rows))
    return 0


def _cmd_table5(args) -> int:
    from repro.report import generate_table5, render_table5
    from repro.search import enumerate_parameter_space

    candidates = None
    if args.quick:
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(50, 54, 58),
                max_limbs_choices=(35, 40),
                dnum_choices=(2, 3),
                fft_iter_choices=(3, 4, 6),
            )
        )
    print(render_table5(generate_table5(candidates=candidates, jobs=args.jobs)))
    return 0


def _cmd_table6(args) -> int:
    from repro.report import generate_table6, render_table6

    rows = generate_table6()
    if args.json:
        _print_json([asdict(row) for row in rows])
    else:
        print(render_table6(rows))
    return 0


def _cmd_fig1(args) -> int:
    from repro.report import generate_fig1

    data = generate_fig1()
    print(
        f"Rotate, {data['limbs']} limbs:\n"
        f"  naive: {data['naive_reads']:.0f} reads / "
        f"{data['naive_writes']:.0f} writes\n"
        f"  O(1) : {data['cached_reads']:.0f} reads / "
        f"{data['cached_writes']:.0f} writes\n"
        f"  saved: {data['saved_mb']:.0f} MB"
    )
    return 0


def _cmd_fig2(args) -> int:
    from repro.report import generate_fig2

    points = generate_fig2()
    if args.json:
        _print_json([asdict(p) for p in points])
        return 0
    for p in points:
        print(
            f"{p.label:18} {p.dram_gb:7.1f} GB "
            f"({p.reduction_vs_baseline:6.1%} vs baseline)"
        )
    return 0


def _cmd_fig3(args) -> int:
    from repro.report import generate_fig3

    points = generate_fig3(_PARAM_SETS[args.params])
    if args.json:
        _print_json([asdict(p) for p in points])
        return 0
    for p in points:
        print(
            f"{p.label:20} {p.giga_ops:7.1f} Gops, ct {p.ct_dram_gb:6.1f} GB, "
            f"keys {p.key_read_gb:5.1f} GB, AI {p.arithmetic_intensity:.2f}"
        )
    return 0


def _cmd_fig6(args) -> int:
    from repro.hardware import PRIOR_DESIGNS
    from repro.report import generate_fig6_lr, generate_fig6_resnet

    design = PRIOR_DESIGNS[args.design]
    sizes = [float(s) for s in args.caches.split(",")]
    if args.workload == "lr":
        bars = generate_fig6_lr(design, sizes, jobs=args.jobs)
    else:
        bars = generate_fig6_resnet(design, sizes, jobs=args.jobs)
    for bar in bars:
        print(
            f"{bar.label:30} {bar.seconds:9.3f} s ({bar.bound}-bound) "
            f"{bar.speedup_vs_original:6.2f}x"
        )
    return 0


def _cmd_bootstrap(args) -> int:
    from repro.obs.export import cost_dict

    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    cache = CacheModel.from_mb(args.cache_mb) if args.cache_mb else None
    breakdown = BootstrapModel(params, config, cache).cost()
    total = breakdown.total
    if args.json:
        _print_json(
            {
                "params": args.params,
                "config": asdict(config),
                "cache_mb": args.cache_mb,
                "phases": {
                    name: cost_dict(cost)
                    for name, cost in breakdown.phases().items()
                },
                "total": cost_dict(total),
            }
        )
        return 0
    print(params.describe())
    for name, cost in breakdown.phases().items():
        print(
            f"  {name:14} {cost.giga_ops():8.1f} Gops  "
            f"{cost.gigabytes():7.1f} GB  AI {cost.arithmetic_intensity:5.2f}"
        )
    print(
        f"  {'Total':14} {total.giga_ops():8.1f} Gops  "
        f"{total.gigabytes():7.1f} GB  AI {total.arithmetic_intensity:5.2f}"
    )
    return 0


def _cmd_ledger(args) -> int:
    from repro.obs.export import cost_dict

    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    ledger = BootstrapModel(params, config).ledger()
    if args.json:
        _print_json(
            {
                "params": args.params,
                "config": asdict(config),
                "components": {
                    label: cost_dict(cost)
                    for label, cost in ledger.by_label().items()
                },
                "total": cost_dict(ledger.total),
            }
        )
        return 0
    print(params.describe())
    print(ledger.render())
    return 0


def _cmd_balance(args) -> int:
    from repro.hardware import PRIOR_DESIGNS, balance_point, mad_counterpart, render_balance

    cost = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    for name, design in PRIOR_DESIGNS.items():
        mad = mad_counterpart(design)
        print(render_balance(mad.name, balance_point(cost, mad)))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import state as obs
    from repro.obs.export import (
        attribute_runtime,
        build_run_report,
        render_flat_profile,
        validate_run_report,
        write_chrome_trace,
    )

    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    cache = CacheModel.from_mb(args.cache_mb) if args.cache_mb else None

    if args.target == "bootstrap":
        workload_name = "bootstrap"

        def run():
            return BootstrapModel(params, config, cache).ledger().total

    else:
        from repro.apps import helr_training, resnet20_inference, workload_cost

        workload = (
            helr_training(params)
            if args.target == "helr"
            else resnet20_inference(params)
        )
        workload_name = workload.name

        def run():
            return workload_cost(workload, params, config, cache).total

    untraced = run()
    with obs.capture() as (tracer, registry):
        traced = run()
    # Tracing must be a pure observer: both the model's own total and the
    # sum of span costs have to match the untraced run bit-for-bit.
    if traced != untraced:
        raise SystemExit("trace changed the model output; refusing to export")
    if tracer.total_cost() != untraced:
        raise SystemExit("span costs do not sum to the model total")

    runtime = None
    if args.design:
        from repro.hardware import PRIOR_DESIGNS

        if args.design not in PRIOR_DESIGNS:
            raise SystemExit(
                f"unknown design {args.design!r}; "
                f"choose from {', '.join(sorted(PRIOR_DESIGNS))}"
            )
        estimate = attribute_runtime(tracer, PRIOR_DESIGNS[args.design])
        if estimate is not None:
            runtime = {
                "design": args.design,
                "compute_seconds": estimate.compute_seconds,
                "memory_seconds": estimate.memory_seconds,
                "roofline_seconds": estimate.seconds,
                "bound": estimate.bound,
            }

    metadata = {
        "workload": workload_name,
        "params": args.params,
        "config": args.config,
        "cache_mb": args.cache_mb,
    }
    if args.metrics:
        # Embed the registry snapshot so metric deltas (cache-fit
        # decisions, NTT invocations) are diffable from the trace alone.
        metadata["metrics"] = registry.snapshot()
    write_chrome_trace(tracer, args.out, metadata)
    print(render_flat_profile(tracer))
    if args.metrics:
        counters = registry.counters()
        if counters:
            width = max(len(name) for name in counters)
            print("\nCounters")
            for name, value in counters.items():
                print(f"  {name:{width}} {value:>12,}")
    print(f"\nwrote Chrome trace to {args.out}")

    if args.report:
        report = build_run_report(
            tracer,
            registry,
            command=f"trace {args.target}",
            workload=workload_name,
            params=args.params,
            config=asdict(config),
            runtime=runtime,
        )
        validate_run_report(report)
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"wrote run report to {args.report}")
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.diff import (
        build_overlay_trace,
        diff_run_reports,
        render_attribution_table,
        write_cost_diff,
    )

    with open(args.base) as handle:
        base = json.load(handle)
    with open(args.other) as handle:
        other = json.load(handle)
    diff = diff_run_reports(
        base,
        other,
        rename_tolerance=not args.no_renames,
        require_same_workload=not args.force,
    )
    print(render_attribution_table(diff, top=args.top))
    if args.json:
        write_cost_diff(diff, args.json)
        print(f"\nwrote cost diff to {args.json}")
    if args.overlay:
        with open(args.overlay, "w") as handle:
            json.dump(build_overlay_trace(base, other, diff), handle, indent=1)
        print(f"wrote Chrome-trace overlay to {args.overlay}")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.baseline import BaselineStore, Tolerance
    from repro.obs.bench import DEFAULT_SPECS, run_bench

    specs = DEFAULT_SPECS
    if args.workloads:
        wanted = [w.strip() for w in args.workloads.split(",") if w.strip()]
        specs = tuple(
            spec for spec in specs if any(w in spec.name for w in wanted)
        )
        if not specs:
            known = ", ".join(spec.name for spec in DEFAULT_SPECS)
            raise SystemExit(
                f"no bench workloads match {args.workloads!r}; known: {known}"
            )
    if args.list:
        for spec in specs:
            print(spec.name)
        return 0
    store = BaselineStore(args.baseline_dir) if args.baseline_dir else BaselineStore()
    code = run_bench(
        specs,
        store,
        update=args.update,
        tolerance=Tolerance(relative=args.rel_tol, absolute=args.abs_tol),
        out_dir=args.out_dir,
    )
    return code if args.check or args.update else 0


def _cmd_kernels(args) -> int:
    """Differential parity (and optionally speedup) of the int64 kernels."""
    from repro.kernels.check import (
        render_report,
        run_check,
        validate_kernels_report,
    )

    degrees = [int(d.strip()) for d in args.degrees.split(",") if d.strip()]
    if not degrees:
        raise SystemExit(f"no ring degrees in {args.degrees!r}")
    report = run_check(
        degrees=degrees,
        limbs=args.limbs,
        repeats=args.repeats,
        min_speedup=args.min_speedup,
        parity_only=args.parity_only,
        seed=args.seed,
    )
    validate_kernels_report(report)
    if args.json:
        _print_json(report)
    else:
        print(render_report(report))
    return 0 if report["passed"] else 1


def _cmd_memsim(args) -> int:
    from repro.memsim.validate import (
        LADDER_PRIMITIVES,
        render_report,
        run_validation,
        validate_memsim_report,
    )

    primitives = None
    if args.primitive:
        unknown = [p for p in args.primitive if p not in LADDER_PRIMITIVES]
        if unknown:
            raise SystemExit(
                f"unknown primitive(s) {', '.join(unknown)}; "
                f"choose from {', '.join(LADDER_PRIMITIVES)}"
            )
        primitives = args.primitive

    runs = None
    if args.cache_mb is not None:
        # Single-point validation at one capacity under one config,
        # instead of the default Fig. 2 ladder matrix.
        config = _CONFIGS[args.config]()
        runs = [(args.config, config, args.cache_mb)]
    report = run_validation(
        params_key=args.params,
        policy_name=args.policy,
        tolerance=args.tolerance,
        runs=runs,
        primitives=primitives,
        jobs=args.jobs,
    )
    validate_memsim_report(report)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
    if args.json:
        _print_json(report)
    else:
        print(render_report(report))
        if args.out:
            print(f"wrote memsim report to {args.out}")
    return 0 if report["passed"] else 1


def _cmd_lint(args) -> int:
    from repro.lint.cli import lint_command

    return lint_command(args)


def _cmd_search(args) -> int:
    from repro.hardware import HardwareDesign
    from repro.search import enumerate_parameter_space, find_optimal_parameters

    design = HardwareDesign(
        name="custom",
        modular_multipliers=args.multipliers,
        on_chip_mb=args.cache_mb,
        bandwidth_gb_s=args.bandwidth,
        params=BASELINE_JUNG,
    )
    candidates = None
    if args.quick:
        candidates = list(
            enumerate_parameter_space(
                log_q_choices=(46, 50, 54, 58),
                max_limbs_choices=(30, 35, 40),
                dnum_choices=(1, 2, 3),
                fft_iter_choices=(3, 4, 6),
            )
        )
    for rank, result in enumerate(
        find_optimal_parameters(
            design, candidates=candidates, top=args.top, jobs=args.jobs
        ),
        start=1,
    ):
        print(f"#{rank} {result.describe()}")
    return 0


def _cmd_sweep(args) -> int:
    import time

    from repro.obs import state as obs
    from repro.sweep import (
        build_preset,
        build_sweep_report,
        load_sweep_report,
        preset_names,
        run_sweep,
        validate_sweep_report,
        write_sweep_report,
    )

    if args.list:
        for name in preset_names():
            print(name)
        return 0
    if not args.preset:
        raise SystemExit(
            f"choose a sweep preset: {', '.join(preset_names())} "
            "(or --list to enumerate)"
        )
    spec = build_preset(args.preset, quick=args.quick)
    resume = None
    if args.resume:
        resume = load_sweep_report(args.resume)
        if resume is None:
            print(f"no resumable report at {args.resume}; starting fresh")

    event_log = None
    if args.events:
        from repro.obs.events import RUN_END, EventLog, provenance

        event_log = EventLog(args.events)
        event_log.start(
            command=f"sweep {args.preset}",
            provenance_block=provenance(
                config_fingerprint=spec.fingerprint()
            ),
        )
    try:
        if args.report:
            # Capture telemetry: workers ship span/metric snapshots back
            # and the engine merges them in canonical chunk order, so the
            # exported run report is bit-identical (post strip_volatile)
            # for any --jobs.
            from repro.obs.export import build_run_report, validate_run_report
            from repro.obs.profiler import (
                process_cpu_seconds,
                run_resource_summary,
            )

            wall0 = time.perf_counter()
            cpu0 = process_cpu_seconds()
            with obs.capture() as (tracer, registry):
                outcome = run_sweep(
                    spec, jobs=args.jobs, resume=resume, events=event_log
                )
                resources = run_resource_summary(
                    wall_seconds=time.perf_counter() - wall0,
                    cpu_seconds=process_cpu_seconds() - cpu0,
                )
            run_report = build_run_report(
                tracer,
                registry,
                command=f"sweep {args.preset}",
                workload=f"sweep:{spec.name}",
                resources=resources,
            )
            validate_run_report(run_report)
            with open(args.report, "w") as handle:
                json.dump(run_report, handle, indent=1, sort_keys=True)
                handle.write("\n")
        else:
            outcome = run_sweep(
                spec, jobs=args.jobs, resume=resume, events=event_log
            )
        if event_log is not None:
            event_log.emit(RUN_END, {"exit_code": 0})
    finally:
        if event_log is not None:
            event_log.close()
    report = build_sweep_report(outcome)
    validate_sweep_report(report)
    if args.out:
        write_sweep_report(outcome, args.out)
    if args.json:
        _print_json(report)
        return 0
    print(
        f"sweep {spec.name}: {outcome.evaluated} evaluated, "
        f"{outcome.reused} reused, {outcome.chunks} chunks, "
        f"jobs={outcome.jobs}"
    )
    print(
        f"  memo hit rate {outcome.memo_hit_rate:.1%}, "
        f"worker utilisation {outcome.worker_utilisation:.1%}, "
        f"wall {outcome.wall_seconds:.2f}s"
    )
    if args.out:
        print(f"wrote sweep report to {args.out}")
    if args.events:
        print(f"wrote event log to {args.events}")
    if args.report:
        print(f"wrote run report to {args.report}")
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.obs import state as obs
    from repro.serve import SCENARIOS, assemble_serve_report, write_serve_report
    from repro.sweep import SweepAxis, SweepSpec, run_sweep

    if args.list:
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    if args.scenario not in SCENARIOS:
        raise SystemExit(
            f"choose a serving scenario: {', '.join(sorted(SCENARIOS))} "
            "(or --list to enumerate)"
        )
    scenario = SCENARIOS[args.scenario]
    # One grid point per fleet: the same evaluator capacity sweeps use,
    # so serial and --jobs N runs assemble byte-identical reports.
    spec = SweepSpec(
        name=f"serve-{scenario.name}",
        evaluator="serve.scenario",
        axes=(
            SweepAxis("fleet", tuple(f.name for f in scenario.fleets)),
        ),
        context={"scenario": scenario.name, "seed": args.seed},
    )

    event_log = None
    if args.events:
        from repro.obs.events import RUN_END, EventLog, provenance

        event_log = EventLog(args.events)
        event_log.start(
            command=f"serve {scenario.name}",
            provenance_block=provenance(
                config_fingerprint=spec.fingerprint()
            ),
        )
    try:
        if args.report:
            from repro.obs.export import build_run_report, validate_run_report
            from repro.obs.profiler import (
                process_cpu_seconds,
                run_resource_summary,
            )

            wall0 = time.perf_counter()
            cpu0 = process_cpu_seconds()
            with obs.capture() as (tracer, registry):
                outcome = run_sweep(spec, jobs=args.jobs, events=event_log)
                resources = run_resource_summary(
                    wall_seconds=time.perf_counter() - wall0,
                    cpu_seconds=process_cpu_seconds() - cpu0,
                )
            run_report = build_run_report(
                tracer,
                registry,
                command=f"serve {scenario.name}",
                workload=f"serve:{scenario.name}",
                resources=resources,
            )
            validate_run_report(run_report)
            with open(args.report, "w") as handle:
                json.dump(run_report, handle, indent=1, sort_keys=True)
                handle.write("\n")
        else:
            outcome = run_sweep(spec, jobs=args.jobs, events=event_log)
        if event_log is not None:
            event_log.emit(RUN_END, {"exit_code": 0})
    finally:
        if event_log is not None:
            event_log.close()

    report = assemble_serve_report(scenario, args.seed, outcome.rows)
    if args.out:
        write_serve_report(report, args.out)
    if args.json:
        _print_json(report)
        return 0
    print(
        f"serve {scenario.name}: seed {args.seed}, "
        f"{scenario.duration_s:g}s horizon, "
        f"{len(report['fleets'])} fleets, config {scenario.config}"
    )
    for fleet in report["fleets"]:
        requests = fleet["requests"]
        batching = fleet["batching"]
        print(
            f"  {fleet['fleet']:16} {fleet['design']:14} "
            f"x{fleet['devices']} {fleet['scheduler']:4} "
            f"cache={fleet['cache_policy']:8} "
            f"{requests['completed']:5d} req "
            f"{fleet['throughput_rps']:7.1f} rps "
            f"util {fleet['utilisation']:6.1%} "
            f"batch {batching['mean_size']:4.2f} "
            f"ksk saved {batching['key_read_saved_fraction']:5.1%}"
        )
        for tenant in fleet["tenants"]:
            latency = tenant["latency"]
            sla = tenant["sla"]
            if latency is None:
                line = "no completions"
            else:
                line = (
                    f"p50 {latency['p50_ms']:8.2f}ms "
                    f"p99 {latency['p99_ms']:8.2f}ms "
                    f"p999 {latency['p999_ms']:8.2f}ms"
                )
            if sla["met"] is not None:
                target = sla["p99_target_ms"]
                verdict = "met" if sla["met"] else "MISSED"
                line += f"  sla p99<={target:g}ms {verdict}"
            print(
                f"    {tenant['tenant']:14} {tenant['completed']:5d} req "
                f"{tenant['bootstraps']:3d} boot  {line}"
            )
    if args.out:
        print(f"wrote serve report to {args.out}")
    if args.events:
        print(f"wrote event log to {args.events}")
    if args.report:
        print(f"wrote run report to {args.report}")
    return 0


def _profile_workload(args):
    """``(name, thunk)`` for a profile target; thunk returns the total cost."""
    params = _PARAM_SETS[args.params]
    config = _CONFIGS[args.config]()
    cache = CacheModel.from_mb(args.cache_mb) if args.cache_mb else None
    if args.target == "bootstrap":
        return "bootstrap", lambda: BootstrapModel(params, config, cache).ledger().total
    if args.target == "micro":
        from repro.obs.bench import primitive_micro_cost

        return "micro", lambda: primitive_micro_cost(params, config, cache)
    from repro.apps import helr_training, resnet20_inference, workload_cost

    workload = (
        helr_training(params) if args.target == "helr" else resnet20_inference(params)
    )
    return workload.name, lambda: workload_cost(workload, params, config, cache).total


def _cmd_profile(args) -> int:
    import time

    from repro.obs.export import build_run_report, validate_run_report
    from repro.obs.profiler import (
        process_cpu_seconds,
        profile_capture,
        render_resource_profile,
        run_resource_summary,
    )

    workload_name, run = _profile_workload(args)
    wall0 = time.perf_counter()
    cpu0 = process_cpu_seconds()
    with profile_capture(
        max_depth=args.depth, trace_allocs=not args.no_alloc
    ) as (tracer, registry):
        run()
        # Summarised inside the block: tracemalloc stops at exit.
        resources = run_resource_summary(
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=process_cpu_seconds() - cpu0,
        )
    if args.json:
        _print_json(
            {
                "workload": workload_name,
                "params": args.params,
                "config": args.config,
                "resources": resources,
                "spans": [
                    {
                        "name": span.name,
                        "depth": span.depth,
                        "resource": span.meta["resource"],
                    }
                    for span in tracer.spans()
                    if "resource" in span.meta
                ],
            }
        )
    else:
        print(render_resource_profile(tracer))
        print(
            f"\nwall {resources['wall_seconds']:.3f}s, "
            f"cpu {resources['cpu_seconds']:.3f}s, "
            f"gc {resources['gc_collections']} collections"
        )
    if args.report:
        report = build_run_report(
            tracer,
            registry,
            command=f"profile {args.target}",
            workload=workload_name,
            params=args.params,
            resources=resources,
        )
        validate_run_report(report)
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote run report to {args.report}")
    return 0


def _render_top(model) -> str:
    from repro.obs.profiler import _format_bytes  # rendering helper

    total = model["points_total"] or 0
    done = model["points_done"]
    pct = done / total if total else 0.0
    status = "finished" if model["finished"] else "in flight"
    bar_width = 30
    filled = int(round(pct * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    lines = [
        f"sweep {model['sweep'] or model['command'] or '?'} [{status}] "
        f"jobs={model.get('jobs', 1)}",
        f"  [{bar}] {done:,}/{total:,} points ({pct:.1%})",
        f"  rate {model['points_per_second']:,.1f} points/s, "
        f"memo hit rate {model['memo_hit_rate']:.1%}, "
        f"wall {model['wall_seconds']:.2f}s",
    ]
    for worker in sorted(model["workers"].values(), key=lambda w: w["pid"]):
        lines.append(
            f"  pid {worker['pid']:>7}: {worker['chunks']:>4} chunks, "
            f"peak RSS {_format_bytes(worker['peak_rss_bytes'])}"
        )
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time

    from repro.obs.dash import build_dashboard
    from repro.obs.events import read_events

    while True:
        # Non-strict: the sweep may still be appending; a torn trailing
        # line is dropped rather than treated as corruption.
        events = read_events(args.events, strict=False)
        model = build_dashboard(events)
        print(_render_top(model))
        if model["finished"] or not args.follow:
            return 0
        time.sleep(args.interval)
        print()


def _cmd_dash(args) -> int:
    from repro.obs.dash import write_dashboard

    model = write_dashboard(args.events, args.out)
    print(
        f"wrote dashboard to {args.out} "
        f"({model['points_done']:,}/{model['points_total']:,} points, "
        f"{len(model['workers'])} workers, "
        f"{'finished' if model['finished'] else 'in flight'})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAD / SimFHE reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table4", help="per-primitive ops/DRAM/AI table")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("table5", help="memory-aware optimal parameters")
    p.add_argument("--quick", action="store_true", help="search a small grid")
    p.add_argument(
        "--jobs", type=int, default=1, help="sweep worker processes"
    )
    p.set_defaults(func=_cmd_table5)

    p = sub.add_parser("table6", help="bootstrapping design comparison")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_table6)

    p = sub.add_parser("fig1", help="Rotate O(1)-caching example")
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="caching-optimization ladder")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="algorithmic-optimization ladder")
    p.add_argument("--params", choices=_PARAM_SETS, default="optimal")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig6", help="ML application comparison")
    p.add_argument("--workload", choices=("lr", "resnet"), default="lr")
    p.add_argument("--design", default="BTS")
    p.add_argument("--caches", default="32,256")
    p.add_argument(
        "--jobs", type=int, default=1, help="sweep worker processes"
    )
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("bootstrap", help="bootstrap cost breakdown")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--cache-mb", type=float, default=None)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_bootstrap)

    p = sub.add_parser("ledger", help="labeled bootstrap cost ledger")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_ledger)

    p = sub.add_parser(
        "trace",
        help="trace a run and export Chrome trace-event JSON",
    )
    p.add_argument("target", choices=("bootstrap", "helr", "resnet"))
    p.add_argument("--out", required=True, help="Chrome trace output path")
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--cache-mb", type=float, default=None)
    p.add_argument(
        "--design",
        default=None,
        help="attribute roofline runtime on a prior design (e.g. BTS)",
    )
    p.add_argument(
        "--report", default=None, help="also write run_report.json here"
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="print MetricsRegistry counters and embed them in the trace",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "diff",
        help="differential cost attribution between two run reports",
    )
    p.add_argument("base", help="baseline run_report.json")
    p.add_argument("other", help="comparison run_report.json")
    p.add_argument(
        "--json", default=None, help="write machine-readable cost_diff.json"
    )
    p.add_argument(
        "--overlay",
        default=None,
        help="write a Chrome-trace overlay of both runs",
    )
    p.add_argument("--top", type=int, default=20, help="span rows to print")
    p.add_argument(
        "--force",
        action="store_true",
        help="diff even when the reports ran different workloads",
    )
    p.add_argument(
        "--no-renames",
        action="store_true",
        help="disable positional rename alignment of unmatched spans",
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "bench",
        help="run the analytical bench matrix against committed baselines",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any cost regression or missing baseline",
    )
    p.add_argument(
        "--update",
        action="store_true",
        help="(re)write the baseline snapshots instead of gating",
    )
    p.add_argument(
        "--workloads",
        default=None,
        help="comma-separated substrings selecting bench workloads",
    )
    p.add_argument(
        "--baseline-dir",
        default=None,
        help="baseline directory (default: benchmarks/baselines)",
    )
    p.add_argument(
        "--out-dir",
        default=None,
        help="write BENCH_*.json trajectories and cost_diff_*.json here",
    )
    p.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        help="relative cost growth tolerated before failing",
    )
    p.add_argument(
        "--abs-tol",
        type=float,
        default=0.0,
        help="absolute cost growth tolerated before failing",
    )
    p.add_argument(
        "--list", action="store_true", help="list bench workloads and exit"
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "kernels",
        help="int64 NTT kernels vs the pure-Python oracle: parity + speedup",
    )
    p.add_argument(
        "--degrees",
        default="4096",
        help="comma-separated ring degrees to check (powers of two)",
    )
    p.add_argument(
        "--limbs", type=int, default=8, help="RNS limb count per degree"
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="min-of-k timing repeats"
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the vectorized/oracle speedup reaches this",
    )
    p.add_argument(
        "--parity-only",
        action="store_true",
        help="skip timing; only assert bit-exact oracle parity (CI mode)",
    )
    p.add_argument("--seed", type=int, default=2012, help="input PRNG seed")
    p.add_argument(
        "--json", action="store_true", help="emit a JSON report to stdout"
    )
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser(
        "memsim",
        help="trace-driven simulation validating the analytical DRAM model",
    )
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument(
        "--config",
        choices=_CONFIGS,
        default="caching",
        help="MAD config for --cache-mb single-point runs "
        "(the default ladder sweeps all caching rungs)",
    )
    p.add_argument(
        "--policy",
        choices=("lru", "belady", "pin"),
        default="pin",
        help="replacement policy for the simulated on-chip memory",
    )
    p.add_argument(
        "--cache-mb",
        type=float,
        default=None,
        help="validate at one capacity (decimal MB) instead of the ladder",
    )
    p.add_argument(
        "--primitive",
        action="append",
        default=None,
        metavar="NAME",
        help="validate only the named primitive (repeatable)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="per-stream relative-error gate (default 0.05)",
    )
    p.add_argument(
        "--out", default=None, help="write memsim_report.json here"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--jobs", type=int, default=1, help="sweep worker processes"
    )
    p.set_defaults(func=_cmd_memsim)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis (cost-model + span invariants)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named rule (repeatable)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its description and exit",
    )
    p.add_argument(
        "--program",
        action="store_true",
        help="additionally run the whole-program pass (taint, schema)",
    )
    p.add_argument(
        "--changed-only",
        action="store_true",
        help="replay the previous result from .lint_cache/ when no file changed",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text, or json with --json)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the chosen format to FILE (stdout stays text)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("balance", help="roofline balance of MAD design points")
    p.set_defaults(func=_cmd_balance)

    p = sub.add_parser("search", help="parameter search for a hardware budget")
    p.add_argument("--multipliers", type=int, default=4096)
    p.add_argument("--bandwidth", type=float, default=1000)
    p.add_argument("--cache-mb", type=float, default=32)
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--quick", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1, help="sweep worker processes"
    )
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "sweep",
        help="run a declarative parameter sweep over worker processes",
    )
    p.add_argument(
        "preset",
        nargs="?",
        default=None,
        help="sweep preset name (see --list)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 evaluates in-process",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="use the preset's reduced grid",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="REPORT",
        help="reuse completed points from a prior sweep_report.json",
    )
    p.add_argument(
        "--out", default=None, help="write sweep_report.json here"
    )
    p.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream a repro.obs.events/v1 JSONL event log here "
        "(live-tailable by `repro top` and renderable by `repro dash`)",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="capture cross-process telemetry and write the merged "
        "run_report.json here (bit-identical across --jobs after "
        "strip_volatile)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--list", action="store_true", help="list sweep presets and exit"
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="simulate a multi-tenant serving scenario on accelerator fleets",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="serving scenario name (see --list)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="arrival-stream seed (same seed -> byte-identical report)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (one fleet per grid point); 1 is in-process",
    )
    p.add_argument(
        "--out", default=None, help="write serve_report.json here"
    )
    p.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream a repro.obs.events/v1 JSONL event log here "
        "(live-tailable by `repro top` and renderable by `repro dash`)",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="capture cross-process telemetry and write the merged "
        "run_report.json here",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--list", action="store_true", help="list serving scenarios and exit"
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "profile",
        help="attribute host resources (RSS, allocations, CPU, GC) span by span",
    )
    p.add_argument("target", choices=("bootstrap", "helr", "resnet", "micro"))
    p.add_argument("--params", choices=_PARAM_SETS, default="baseline")
    p.add_argument("--config", choices=_CONFIGS, default="none")
    p.add_argument("--cache-mb", type=float, default=None)
    p.add_argument(
        "--depth",
        type=int,
        default=3,
        help="meter spans down to this stack depth (deeper spans trace unmetered)",
    )
    p.add_argument(
        "--no-alloc",
        action="store_true",
        help="skip tracemalloc (cheaper; loses allocation peaks)",
    )
    p.add_argument(
        "--report", default=None, help="also write run_report.json here"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "top",
        help="render sweep progress from an event log (live-tails with --follow)",
    )
    p.add_argument("events", help="events.jsonl written by `sweep --events`")
    p.add_argument(
        "--follow",
        action="store_true",
        help="re-render every --interval seconds until the sweep finishes",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, help="polling interval seconds"
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "dash",
        help="render an event log as a self-contained HTML dashboard",
    )
    p.add_argument("events", help="events.jsonl written by `sweep --events`")
    p.add_argument(
        "--out", default="dash.html", help="output path (default dash.html)"
    )
    p.set_defaults(func=_cmd_dash)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs import state as obs

    args = build_parser().parse_args(argv)
    # Every invocation runs against pristine observability state and
    # restores the caller's on exit: repeated in-process main() calls
    # (tests, notebooks) must not leak a tracer or registry between
    # commands through the module-global registry.
    with obs.scoped():
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
