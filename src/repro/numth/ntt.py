"""Negacyclic number-theoretic transform over a prime field.

The CKKS ciphertext ring is ``Z_q[x]/(x^N + 1)``.  Multiplication in this ring
is a *negacyclic* convolution, which becomes a pointwise product after an
NTT twisted by a primitive ``2N``-th root of unity ``psi``:

    forward:  a_hat = NTT_omega(a_i * psi^i),   omega = psi^2
    inverse:  a_i   = psi^{-i} / N * INTT_omega(a_hat)

The implementation is an iterative radix-2 Cooley-Tukey transform on plain
Python integers, with all twiddle factors precomputed per ``(N, q)`` pair.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.numth.modular import mod_inverse, mod_pow
from repro.numth.primes import root_of_unity
from repro.obs import state as obs


def _bit_reverse_table(n: int) -> List[int]:
    """Bit-reversal permutation of ``range(n)`` for a power of two ``n``.

    Uses the arithmetic recurrence ``rev[i] = rev[i >> 1] >> 1 | (i & 1)
    << (bits - 1)``: the reversal of ``i`` is the reversal of ``i >> 1``
    shifted right once, with ``i``'s low bit moved to the top position.
    """
    bits = n.bit_length() - 1
    table = [0] * n
    for i in range(1, n):
        table[i] = table[i >> 1] >> 1 | (i & 1) << (bits - 1)
    return table


class NttContext:
    """Precomputed negacyclic NTT plan for ring degree ``n`` and modulus ``q``.

    Instances are immutable and safe to share; building one costs
    ``O(n log n)`` integer operations.
    """

    def __init__(self, n: int, q: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"ring degree must be a power of two >= 2, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(
                f"modulus {q} does not support a degree-{n} negacyclic NTT "
                f"(need q = 1 mod 2N)"
            )
        self.n = n
        self.q = q
        self.psi = root_of_unity(2 * n, q)
        self.omega = self.psi * self.psi % q
        self._psi_powers = self._powers(self.psi)
        self._inv_psi_powers = self._powers(mod_inverse(self.psi, q))
        self._rev = _bit_reverse_table(n)
        self._stage_twiddles = self._build_stage_twiddles(self.omega)
        self._inv_stage_twiddles = self._build_stage_twiddles(
            mod_inverse(self.omega, q)
        )
        self._n_inv = mod_inverse(n, q)

    def _powers(self, base: int) -> List[int]:
        powers = [1] * self.n
        for i in range(1, self.n):
            powers[i] = powers[i - 1] * base % self.q
        return powers

    def _build_stage_twiddles(self, omega: int) -> List[List[int]]:
        """Twiddle tables per butterfly stage for the iterative CT loop."""
        tables: List[List[int]] = []
        length = 2
        while length <= self.n:
            wlen = mod_pow(omega, self.n // length, self.q)
            half = length // 2
            tw = [1] * half
            for j in range(1, half):
                tw[j] = tw[j - 1] * wlen % self.q
            tables.append(tw)
            length *= 2
        return tables

    def _transform(self, values: List[int], tables: List[List[int]]) -> None:
        n, q, rev = self.n, self.q, self._rev
        # Bit-reversal permutation (in place).
        for i in range(n):
            j = rev[i]
            if i < j:
                values[i], values[j] = values[j], values[i]
        length = 2
        stage = 0
        while length <= n:
            half = length // 2
            tw = tables[stage]
            for start in range(0, n, length):
                for j in range(half):
                    lo = start + j
                    hi = lo + half
                    v = values[hi] * tw[j] % q
                    u = values[lo]
                    values[lo] = (u + v) % q
                    values[hi] = (u - v) % q
            length *= 2
            stage += 1

    def forward(self, coeffs: Sequence[int]) -> List[int]:
        """Map coefficient representation to evaluation representation."""
        obs.count("numth.ntt.forward")
        if len(coeffs) != self.n:
            raise ValueError(f"expected {self.n} coefficients, got {len(coeffs)}")
        q = self.q
        values = [c % q * p % q for c, p in zip(coeffs, self._psi_powers)]
        self._transform(values, self._stage_twiddles)
        return values

    def inverse(self, evals: Sequence[int]) -> List[int]:
        """Map evaluation representation back to coefficient representation."""
        obs.count("numth.ntt.inverse")
        if len(evals) != self.n:
            raise ValueError(f"expected {self.n} evaluations, got {len(evals)}")
        q = self.q
        values = [v % q for v in evals]
        self._transform(values, self._inv_stage_twiddles)
        n_inv = self._n_inv
        return [
            v * n_inv % q * ip % q
            for v, ip in zip(values, self._inv_psi_powers)
        ]

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """Multiply two coefficient-form polynomials in ``Z_q[x]/(x^N+1)``."""
        obs.count("numth.ntt.negacyclic_multiply")
        ea = self.forward(a)
        eb = self.forward(b)
        q = self.q
        return self.inverse([x * y % q for x, y in zip(ea, eb)])
