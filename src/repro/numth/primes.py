"""Primality testing and NTT-friendly prime generation.

The RNS-CKKS scheme needs limb moduli ``q`` that are prime and satisfy
``q = 1 (mod 2N)`` so that the ring ``Z_q[x]/(x^N + 1)`` supports a negacyclic
number-theoretic transform (a primitive ``2N``-th root of unity must exist in
``Z_q``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.numth.modular import mod_pow

# Deterministic Miller-Rabin witness set, valid for all n < 3.3 * 10^24
# (covers every modulus size this library ever generates: <= 62 bits).
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for ``n < 3.3e24``."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        x = mod_pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


#: Iterates between gcd evaluations in Brent's cycle detection; gcds are
#: accumulated as a running product so each batch costs one gcd, not _GCD_BATCH.
_GCD_BATCH = 128


def _pollard_rho(n: int) -> int:
    """Return a non-trivial factor of composite ``n`` (Brent's variant).

    Brent's cycle detection keeps a fixed reference point ``x`` and races
    ``y`` through ``2^k``-length segments, so it needs one polynomial step
    per iterate instead of Floyd's three.  The gcds are batched: up to
    ``_GCD_BATCH`` differences are multiplied together modulo ``n`` before
    a single gcd.  When the batched gcd jumps straight to ``n`` (two
    factors collapsed into one batch), the segment is replayed one step at
    a time from the saved position ``ys`` to recover the earlier of the
    two factors instead of burning the ``c`` retry.
    """
    if n % 2 == 0:
        return 2
    for c in range(1, 100):
        y = 2
        r = 1
        q = 1
        g = 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(_GCD_BATCH, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += _GCD_BATCH
            r *= 2
        if g == n:
            # The batch skipped past the factor; replay it stepwise.
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g
    raise ArithmeticError(f"pollard-rho failed to factor {n}")


def factorize(n: int) -> Dict[int, int]:
    """Return the prime factorisation of ``n`` as ``{prime: multiplicity}``."""
    if n <= 0:
        raise ValueError(f"can only factor positive integers, got {n}")
    factors: Dict[int, int] = {}

    def _record(p: int) -> None:
        factors[p] = factors.get(p, 0) + 1

    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            _record(m)
            continue
        for p in _SMALL_PRIMES:
            if m % p == 0:
                _record(p)
                stack.append(m // p)
                break
        else:
            d = _pollard_rho(m)
            stack.append(d)
            stack.append(m // d)
    return factors


def primitive_root(q: int) -> int:
    """Return a generator of the multiplicative group of the prime field ``Z_q``."""
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    if q == 2:
        return 1
    group_order = q - 1
    prime_factors = list(factorize(group_order))
    for candidate in range(2, q):
        if all(
            mod_pow(candidate, group_order // p, q) != 1 for p in prime_factors
        ):
            return candidate
    raise ArithmeticError(f"no primitive root found for prime {q}")


def root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity in ``Z_q``.

    Requires ``order`` to divide ``q - 1``.
    """
    if (q - 1) % order != 0:
        raise ValueError(f"{order} does not divide {q}-1; no such root exists")
    generator = primitive_root(q)
    root = mod_pow(generator, (q - 1) // order, q)
    # Sanity check primitivity: root^(order/p) != 1 for each prime p | order.
    for p in factorize(order):
        if mod_pow(root, order // p, q) == 1:
            raise ArithmeticError(
                f"derived root {root} is not a primitive {order}-th root mod {q}"
            )
    return root


def find_ntt_primes(
    bit_size: int,
    ring_degree: int,
    count: int,
    exclude: Sequence[int] = (),
) -> List[int]:
    """Find ``count`` distinct primes of ``bit_size`` bits congruent to 1 mod 2N.

    Primes are returned in descending order starting just below
    ``2**bit_size``, matching the usual RNS-CKKS convention of picking limb
    moduli as close to the scaling factor as possible.

    Args:
        bit_size: target size of each prime in bits (the primes satisfy
            ``2**(bit_size-1) < p < 2**bit_size``).
        ring_degree: the polynomial degree ``N``; primes satisfy
            ``p = 1 (mod 2N)``.
        count: how many primes to return.
        exclude: primes to skip (e.g. moduli already allocated to another
            basis).
    """
    if bit_size < 4:
        raise ValueError(f"bit_size too small to be useful: {bit_size}")
    if ring_degree < 2 or ring_degree & (ring_degree - 1):
        raise ValueError(f"ring_degree must be a power of two, got {ring_degree}")
    step = 2 * ring_degree
    excluded = set(exclude)
    primes: List[int] = []
    # Largest candidate of the form k*2N + 1 strictly below 2**bit_size.
    candidate = (2**bit_size - 2) // step * step + 1
    floor = 2 ** (bit_size - 1)
    while len(primes) < count and candidate > floor:
        if candidate not in excluded and is_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ValueError(
            f"only found {len(primes)} NTT primes of {bit_size} bits for "
            f"N={ring_degree}; requested {count}"
        )
    return primes
