"""Number-theory substrate: primality, modular arithmetic, NTT, CRT.

This package provides the exact-arithmetic building blocks used by the
functional RNS-CKKS layer (:mod:`repro.ring`, :mod:`repro.ckks`).  Everything
here operates on plain Python integers so that word sizes are unconstrained
(CKKS limb moduli are typically 40-60 bits and their products overflow any
fixed-width dtype).
"""

from repro.numth.modular import centered_mod, mod_inverse, mod_pow
from repro.numth.primes import (
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)
from repro.numth.ntt import NttContext
from repro.numth.crt import crt_reconstruct, to_rns

__all__ = [
    "centered_mod",
    "mod_inverse",
    "mod_pow",
    "is_prime",
    "find_ntt_primes",
    "primitive_root",
    "root_of_unity",
    "NttContext",
    "crt_reconstruct",
    "to_rns",
]
