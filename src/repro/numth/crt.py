"""Chinese-remainder-theorem helpers for the residue number system."""

from __future__ import annotations

from typing import List, Sequence

from repro.numth.modular import mod_inverse


def to_rns(value: int, moduli: Sequence[int]) -> List[int]:
    """Split an integer into its residues modulo each limb modulus."""
    return [value % q for q in moduli]


def crt_reconstruct(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Reconstruct ``x mod prod(moduli)`` from its RNS residues.

    This is the exact inverse of :func:`to_rns` for values in
    ``[0, prod(moduli))``.  The moduli must be pairwise coprime.
    """
    if len(residues) != len(moduli):
        raise ValueError(
            f"got {len(residues)} residues for {len(moduli)} moduli"
        )
    if not moduli:
        raise ValueError("need at least one modulus")
    total = 1
    for q in moduli:
        total *= q
    acc = 0
    for r, q in zip(residues, moduli):
        big_q = total // q
        acc += r * big_q % total * mod_inverse(big_q % q, q) % total
    return acc % total
