"""Modular-arithmetic helpers shared across the exact-arithmetic stack."""

from __future__ import annotations


def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` for a non-negative exponent."""
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    return pow(base, exponent, modulus)


def mod_inverse(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`ValueError` when the inverse does not exist (i.e. when
    ``gcd(value, modulus) != 1``).
    """
    if modulus <= 1:
        raise ValueError(f"modulus must be > 1, got {modulus}")
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # pragma: no cover - message normalisation
        raise ValueError(f"{value} has no inverse modulo {modulus}") from exc


def centered_mod(value: int, modulus: int) -> int:
    """Reduce ``value`` into the centered interval ``(-modulus/2, modulus/2]``.

    CKKS decodes plaintexts from the centered representation: a coefficient
    close to ``q`` actually encodes a small negative number.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    reduced = value % modulus
    if reduced > modulus // 2:
        reduced -= modulus
    return reduced
