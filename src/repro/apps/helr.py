"""HELR: encrypted logistic-regression training (Han et al., AAAI 2019).

The paper's LR evaluation (Fig. 6 a-e) trains on encrypted data with the
HELR algorithm and — at the MAD-optimal parameters — bootstraps once every
three training iterations.

Per-iteration structure (MNIST-like: 1024-sample minibatch, 196 features
packed across ciphertext slots):

* an encrypted matrix-vector product for the scores ``X * w`` — rotation
  based inner-product accumulation over the feature dimension;
* a degree-7 polynomial sigmoid approximation (3 ct-ct multiplications via
  Paterson-Stockmeyer);
* the gradient product ``X^T * sigma`` — a second rotation tree over the
  batch dimension;
* the weight update (plaintext-scaled additions).

Each iteration consumes ~4 multiplicative levels, so a 19-limb budget
(the post-bootstrap level of the MAD-optimal parameters) sustains 3
iterations per bootstrap, matching the paper.
"""

from __future__ import annotations

import math

from repro.params import CkksParams
from repro.apps.workload import ApplicationWorkload

#: Multiplicative depth of one HELR iteration: scores product (1),
#: degree-7 sigmoid (3), gradient product (1) — packing masks ride along.
MULT_DEPTH_PER_ITERATION = 5

#: Scaling-factor bits HELR needs per multiplication for training-grade
#: precision.  Designs with narrow limbs (e.g. CraterLake's 28-bit words)
#: burn proportionally more limbs per multiplication.
REFERENCE_SCALE_BITS = 50


def levels_per_iteration(params: CkksParams) -> int:
    """Modulus limbs one HELR iteration consumes on ``params``.

    Limb consumption is *bit*-based: five multiplications at a ~50-bit
    scale cost five 50-bit limbs, or nine 28-bit limbs.
    """
    total_bits = MULT_DEPTH_PER_ITERATION * REFERENCE_SCALE_BITS
    return max(1, math.ceil(total_bits / params.log_q))


def iterations_per_bootstrap(params: CkksParams) -> int:
    """Training iterations a single bootstrap sustains on ``params``.

    At the MAD-optimal parameters the 19-limb post-bootstrap budget (one
    limb reserved as the base) sustains exactly 3 iterations, matching the
    paper's "bootstrapping after every three training iterations".
    """
    budget = params.bootstrap_output_limbs - 1  # keep one working limb
    return max(1, budget // levels_per_iteration(params))


def helr_training(
    params: CkksParams,
    iterations: int = 30,
    features: int = 196,
    batch: int = 1024,
) -> ApplicationWorkload:
    """The HELR training workload as CKKS operation counts.

    Args:
        params: parameter set (fixes slots and the bootstrap cadence).
        iterations: minibatch gradient-descent iterations (the HELR paper
            trains MNIST in ~30).
        features: model dimension.
        batch: minibatch size.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    log_f = math.ceil(math.log2(features))
    log_b = math.ceil(math.log2(batch))
    # Rotation trees for X*w (feature reduction) and X^T*sigma (batch
    # reduction), plus alignment rotations for the packed layout.
    rotates_per_iter = log_f + log_b + 4
    # Scores product, 3 sigmoid multiplications, gradient product.
    mults_per_iter = 1 + 3 + 1
    # Plaintext masks for the packing plus the learning-rate scaling.
    pt_mults_per_iter = 3
    adds_per_iter = rotates_per_iter + 4  # tree sums + update
    pt_adds_per_iter = 1

    return ApplicationWorkload(
        name=f"HELR({iterations} iters, {features} features)",
        mults=mults_per_iter * iterations,
        pt_mults=pt_mults_per_iter * iterations,
        rotates=rotates_per_iter * iterations,
        adds=adds_per_iter * iterations,
        pt_adds=pt_adds_per_iter * iterations,
        bootstraps=math.ceil(iterations / iterations_per_bootstrap(params)),
        level_fraction=0.6,
    )
