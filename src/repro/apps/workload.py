"""Generic CKKS application workloads for the performance model.

An :class:`ApplicationWorkload` counts the homomorphic operations an
application performs between bootstraps, plus how many bootstraps it
needs.  Operation costs are evaluated at a representative level (CKKS
programs spend most time in the middle of the modulus chain), and the
bootstrap cost comes from :class:`repro.perf.BootstrapModel` — which is
what makes the MAD optimizations show up in application runtimes:
bootstrapping dominates (the paper cites ~80% of ML application time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs import state as obs
from repro.params import CkksParams
from repro.perf import BootstrapModel, CacheModel, MADConfig, PrimitiveCosts
from repro.perf.events import CostReport


@dataclass(frozen=True)
class ApplicationWorkload:
    """Operation counts of one application run."""

    name: str
    mults: int = 0
    pt_mults: int = 0
    rotates: int = 0
    conjugates: int = 0
    adds: int = 0
    pt_adds: int = 0
    bootstraps: int = 0
    #: Fraction of the full chain at which non-bootstrap ops execute.
    level_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.level_fraction <= 1:
            raise ValueError(
                f"level_fraction must be in (0, 1], got {self.level_fraction}"
            )
        for field_name in (
            "mults",
            "pt_mults",
            "rotates",
            "conjugates",
            "adds",
            "pt_adds",
            "bootstraps",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


@dataclass(frozen=True)
class WorkloadCost:
    """Cost split of an application run."""

    compute: CostReport  # non-bootstrap homomorphic ops
    bootstrap: CostReport  # all bootstrap invocations

    @property
    def total(self) -> CostReport:
        return self.compute + self.bootstrap

    @property
    def bootstrap_fraction(self) -> float:
        """Fraction of total DRAM traffic attributable to bootstrapping."""
        total = self.total.traffic.total
        if total == 0:
            return 0.0
        return self.bootstrap.traffic.total / total


def workload_cost(
    workload: ApplicationWorkload,
    params: CkksParams,
    config: MADConfig = MADConfig.none(),
    cache: Optional[CacheModel] = None,
) -> WorkloadCost:
    """Evaluate a workload under a parameter set and optimization config.

    When a tracer is installed (:mod:`repro.obs`) the call emits a span
    tree: one span per operation class under ``Compute``, and — under
    ``Bootstraps`` — the full per-phase span tree of one bootstrap plus a
    ``Bootstrap (repeats)`` span carrying the remaining invocations, so
    the traced span-cost sum equals the returned total exactly.
    """
    costs = PrimitiveCosts(params, config, cache)
    level = max(2, round(params.max_limbs * workload.level_fraction))
    with obs.span("Workload", name=workload.name, level=level):
        compute = CostReport()
        op_units = [
            ("Mult", costs.mult, workload.mults),
            ("PtMult", costs.pt_mult, workload.pt_mults),
            ("Rotate", costs.rotate, workload.rotates),
            ("Conjugate", costs.conjugate, workload.conjugates),
            ("Add", costs.add, workload.adds),
            ("PtAdd", costs.pt_add, workload.pt_adds),
        ]
        with obs.span("Compute"):
            for op_name, unit_cost, invocations in op_units:
                cost = unit_cost(level).scaled(invocations)
                if invocations:
                    with obs.span(op_name, count=invocations, level=level):
                        obs.record_cost(cost)
                compute = compute + cost

        bootstrap = CostReport()
        if workload.bootstraps:
            model = BootstrapModel(params, config, cache)
            with obs.span("Bootstraps", invocations=workload.bootstraps):
                # total_cost() traces one bootstrap's phase tree itself;
                # the remaining invocations go into one scaled span so the
                # traced sum still matches the returned total exactly.
                single = model.total_cost()
                if workload.bootstraps > 1:
                    with obs.span(
                        "Bootstrap (repeats)", count=workload.bootstraps - 1
                    ):
                        obs.record_cost(
                            single.scaled(workload.bootstraps - 1)
                        )
                bootstrap = single.scaled(workload.bootstraps)
    return WorkloadCost(compute=compute, bootstrap=bootstrap)
