"""Generic CKKS application workloads for the performance model.

An :class:`ApplicationWorkload` counts the homomorphic operations an
application performs between bootstraps, plus how many bootstraps it
needs.  Operation costs are evaluated at a representative level (CKKS
programs spend most time in the middle of the modulus chain), and the
bootstrap cost comes from :class:`repro.perf.BootstrapModel` — which is
what makes the MAD optimizations show up in application runtimes:
bootstrapping dominates (the paper cites ~80% of ML application time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.params import CkksParams
from repro.perf import BootstrapModel, CacheModel, MADConfig, PrimitiveCosts
from repro.perf.events import CostReport


@dataclass(frozen=True)
class ApplicationWorkload:
    """Operation counts of one application run."""

    name: str
    mults: int = 0
    pt_mults: int = 0
    rotates: int = 0
    conjugates: int = 0
    adds: int = 0
    pt_adds: int = 0
    bootstraps: int = 0
    #: Fraction of the full chain at which non-bootstrap ops execute.
    level_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.level_fraction <= 1:
            raise ValueError(
                f"level_fraction must be in (0, 1], got {self.level_fraction}"
            )
        for field_name in (
            "mults",
            "pt_mults",
            "rotates",
            "conjugates",
            "adds",
            "pt_adds",
            "bootstraps",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


@dataclass(frozen=True)
class WorkloadCost:
    """Cost split of an application run."""

    compute: CostReport  # non-bootstrap homomorphic ops
    bootstrap: CostReport  # all bootstrap invocations

    @property
    def total(self) -> CostReport:
        return self.compute + self.bootstrap

    @property
    def bootstrap_fraction(self) -> float:
        """Fraction of total DRAM traffic attributable to bootstrapping."""
        total = self.total.traffic.total
        if total == 0:
            return 0.0
        return self.bootstrap.traffic.total / total


def workload_cost(
    workload: ApplicationWorkload,
    params: CkksParams,
    config: MADConfig = MADConfig.none(),
    cache: Optional[CacheModel] = None,
) -> WorkloadCost:
    """Evaluate a workload under a parameter set and optimization config."""
    costs = PrimitiveCosts(params, config, cache)
    level = max(2, round(params.max_limbs * workload.level_fraction))
    compute = CostReport()
    compute = compute + costs.mult(level).scaled(workload.mults)
    compute = compute + costs.pt_mult(level).scaled(workload.pt_mults)
    compute = compute + costs.rotate(level).scaled(workload.rotates)
    compute = compute + costs.conjugate(level).scaled(workload.conjugates)
    compute = compute + costs.add(level).scaled(workload.adds)
    compute = compute + costs.pt_add(level).scaled(workload.pt_adds)

    bootstrap = CostReport()
    if workload.bootstraps:
        model = BootstrapModel(params, config, cache)
        bootstrap = model.total_cost().scaled(workload.bootstraps)
    return WorkloadCost(compute=compute, bootstrap=bootstrap)
