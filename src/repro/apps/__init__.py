"""Application workload models: HELR logistic regression and ResNet-20."""

from repro.apps.workload import ApplicationWorkload, WorkloadCost, workload_cost
from repro.apps.helr import helr_training
from repro.apps.resnet import resnet20_inference

__all__ = [
    "ApplicationWorkload",
    "WorkloadCost",
    "workload_cost",
    "helr_training",
    "resnet20_inference",
]
