"""ResNet-20 CIFAR-10 inference over CKKS (Lee et al., IEEE Access 2022).

The paper's second ML workload (Fig. 6 f-h) runs single-image encrypted
inference through the Lee et al. ResNet-20 construction:

* 3x3 convolutions are evaluated as packed rotation/PtMult accumulations
  — 9 kernel taps x per-channel-block rotations;
* every ReLU is a high-degree (composite minimax, degree ~27) polynomial
  needing ~10 ct-ct multiplications;
* the deep multiplicative depth forces a bootstrap at every activation
  layer — Lee et al. place one bootstrap per ReLU channel-pack, dominating
  end-to-end latency (which is why the paper's ResNet speedups track the
  bootstrap speedups almost exactly).

ResNet-20: an initial convolution plus 3 stages x 3 blocks x 2 convs,
19 convolution layers, 19 ReLUs, one average-pool + FC layer.
"""

from __future__ import annotations

from repro.params import CkksParams
from repro.apps.workload import ApplicationWorkload

#: Convolution layers in ResNet-20 (1 stem + 18 in residual blocks).
CONV_LAYERS = 19
#: ReLU activations (one per conv except the final FC).
RELU_LAYERS = 19
#: Rotations per convolution: 9 kernel taps times ~8 channel-block
#: alignment rotations under the Lee et al. packing.
ROTATES_PER_CONV = 72
#: ct-ct multiplications per composite-minimax ReLU evaluation.
MULTS_PER_RELU = 10
#: Bootstraps per activation (Lee et al. bootstrap every ReLU; two
#: ciphertext packs per layer on average across the three stages).
BOOTSTRAPS_PER_RELU = 2


def resnet20_inference(params: CkksParams) -> ApplicationWorkload:
    """Single encrypted-image ResNet-20 inference as operation counts."""
    rotates = CONV_LAYERS * ROTATES_PER_CONV + 16  # convs + avgpool/FC tree
    pt_mults = CONV_LAYERS * ROTATES_PER_CONV  # one weight mask per tap
    mults = RELU_LAYERS * MULTS_PER_RELU
    adds = rotates + CONV_LAYERS * 8  # accumulations + residual adds
    pt_adds = CONV_LAYERS  # biases
    return ApplicationWorkload(
        name="ResNet-20 inference (CIFAR-10)",
        mults=mults,
        pt_mults=pt_mults,
        rotates=rotates,
        adds=adds,
        pt_adds=pt_adds,
        bootstraps=RELU_LAYERS * BOOTSTRAPS_PER_RELU,
        level_fraction=0.5,
    )
