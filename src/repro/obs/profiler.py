"""Host resource profiling: RSS, allocation peaks, CPU time, GC activity.

For a reproduction of a *memory-aware* design paper, the telemetry layer
should be able to say what the **host** memory did while we modelled the
accelerator's.  This module is the single place in ``src/`` that touches
host resource APIs (``resource.getrusage``, ``tracemalloc``, ``gc``,
``time.process_time``) — the ``TelemetryDiscipline`` lint rule enforces
the confinement, so overhead and platform quirks stay auditable in one
file.

Three layers:

* point samplers — :func:`rss_peak_bytes`, :func:`process_cpu_seconds`,
  :func:`gc_collections`, and :class:`ResourceMeter` for block-scoped
  deltas (tracemalloc peak per block via ``reset_peak``);
* :func:`profiled_span` — an :mod:`repro.obs.state` span whose exit
  annotates the span with a ``resource`` meta block; the sweep engine
  wraps each point in one, giving per-sweep-point attribution;
* :class:`ProfilingTracer` + :func:`profile_capture` — a tracer that
  meters *every* span down to a depth limit, powering
  ``repro profile <workload>`` per-primitive attribution.

Resource samples are host measurements, not model output: they are
carried in span meta under the ``resource`` key, which
:func:`repro.obs.telemetry.strip_volatile` removes before determinism
comparisons and baseline gating ignores.
"""

from __future__ import annotations

import gc
import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import state as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer, _SpanContext

__all__ = [
    "ProfilingTracer",
    "ResourceMeter",
    "ResourceSample",
    "alloc_tracing",
    "ensure_alloc_tracing",
    "gc_collections",
    "process_cpu_seconds",
    "profile_capture",
    "profiled_span",
    "render_resource_profile",
    "rss_peak_bytes",
    "run_resource_summary",
]


# ----------------------------------------------------------------------
# Point samplers
# ----------------------------------------------------------------------
def rss_peak_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes.  Note this is a process-lifetime high-water mark — it never
    decreases — so per-block attribution uses tracemalloc deltas instead.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def process_cpu_seconds() -> float:
    """User + system CPU seconds of this process."""
    return time.process_time()


def gc_collections() -> int:
    """Total collections across all GC generations so far."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


def alloc_tracing_active() -> bool:
    return tracemalloc.is_tracing()


def ensure_alloc_tracing() -> None:
    """Start tracemalloc and leave it running.

    Pool workers call this once per process: a worker lives exactly as
    long as its pool, so there is no later point to stop at, and
    stopping between chunks would discard the baseline the per-point
    deltas are measured against.  In-process callers should prefer the
    scoped :func:`alloc_tracing`.
    """
    if not tracemalloc.is_tracing():
        tracemalloc.start()


@contextmanager
def alloc_tracing() -> Iterator[None]:
    """Enable tracemalloc for a block (left running if already active).

    Workers start tracing lazily and never stop it mid-run; the parent
    scopes it to the profiled block.
    """
    if tracemalloc.is_tracing():
        yield
        return
    tracemalloc.start()
    try:
        yield
    finally:
        tracemalloc.stop()


def _alloc_peak_and_reset() -> Tuple[int, int]:
    """``(current, peak)`` traced bytes; resets the peak for the next block."""
    if not tracemalloc.is_tracing():
        return 0, 0
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    return current, peak


@dataclass(frozen=True)
class ResourceSample:
    """One block's resource delta, attached to spans as ``meta['resource']``."""

    rss_peak_bytes: int
    alloc_peak_bytes: int
    alloc_current_bytes: int
    cpu_seconds: float
    gc_collections: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rss_peak_bytes": self.rss_peak_bytes,
            "alloc_peak_bytes": self.alloc_peak_bytes,
            "alloc_current_bytes": self.alloc_current_bytes,
            "cpu_seconds": self.cpu_seconds,
            "gc_collections": self.gc_collections,
        }


class ResourceMeter:
    """Block-scoped resource delta: enter to arm, exit to read.

    ``alloc_peak_bytes`` is the tracemalloc high-water mark *within* the
    block (``reset_peak`` on entry); ``cpu_seconds`` and
    ``gc_collections`` are deltas; ``rss_peak_bytes`` is the process
    high-water mark at exit (monotone by nature).
    """

    def __init__(self) -> None:
        self._cpu0 = 0.0
        self._gc0 = 0
        self.sample: Optional[ResourceSample] = None

    def __enter__(self) -> "ResourceMeter":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        self._cpu0 = process_cpu_seconds()
        self._gc0 = gc_collections()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        current, peak = _alloc_peak_and_reset()
        self.sample = ResourceSample(
            rss_peak_bytes=rss_peak_bytes(),
            alloc_peak_bytes=peak,
            alloc_current_bytes=current,
            cpu_seconds=process_cpu_seconds() - self._cpu0,
            gc_collections=gc_collections() - self._gc0,
        )


def profiled_span(name: str, /, **meta: Any) -> Any:
    """An :mod:`repro.obs.state` span annotated with its resource delta.

    The single sanctioned way for code outside this module to attach
    resource samples to spans (the sweep engine wraps each point in one).
    No-op-cheap when tracing is disabled: the null-span context is
    returned as-is — one boolean test, no meter, no generator frame.
    """
    context = obs.span(name, **meta)
    if not obs.tracing_enabled():
        return context
    return _ProfiledSpanContext(context, True)


# ----------------------------------------------------------------------
# Whole-run profiling
# ----------------------------------------------------------------------
class _ProfiledSpanContext:
    """Wraps a span context, metering the block when within the depth limit."""

    __slots__ = ("_inner", "_meter")

    def __init__(self, inner: _SpanContext, profile: bool):
        self._inner = inner
        self._meter = ResourceMeter() if profile else None

    def __enter__(self) -> Span:
        span = self._inner.__enter__()
        if self._meter is not None:
            self._meter.__enter__()
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._meter is not None:
            self._meter.__exit__(exc_type, exc, tb)
            sample = self._meter.sample
            if sample is not None:
                self._inner._span.annotate(resource=sample.as_dict())
        self._inner.__exit__(exc_type, exc, tb)
        return False


class ProfilingTracer(Tracer):
    """A tracer that attaches resource samples to spans as they close.

    ``max_depth`` bounds the metering (a meter per span costs a few
    microseconds; deep primitive loops would pay it millions of times) —
    spans opened deeper than ``max_depth`` record normally, unmetered.
    """

    def __init__(self, max_depth: int = 3, clock: Any = time.perf_counter):
        super().__init__(clock=clock)
        self.max_depth = max_depth

    def span(self, name: str, /, **meta: Any) -> Any:
        profile = len(self._stack) < self.max_depth
        return _ProfiledSpanContext(super().span(name, **meta), profile)


@contextmanager
def profile_capture(
    max_depth: int = 3, trace_allocs: bool = True
) -> Iterator[Tuple[ProfilingTracer, MetricsRegistry]]:
    """:func:`repro.obs.state.capture` with a :class:`ProfilingTracer`.

    Enables tracemalloc for the block (unless ``trace_allocs=False``),
    installs a profiling tracer + fresh registry globally, and restores
    prior state on exit.
    """
    tracer = ProfilingTracer(max_depth=max_depth)
    registry = MetricsRegistry()
    if trace_allocs:
        with alloc_tracing():
            with obs.capture(tracer, registry):
                yield tracer, registry
    else:
        with obs.capture(tracer, registry):
            yield tracer, registry


def run_resource_summary(
    wall_seconds: float, cpu_seconds: float
) -> Dict[str, Any]:
    """The ``resources`` block stamped into run reports."""
    current, peak = (
        tracemalloc.get_traced_memory()
        if tracemalloc.is_tracing()
        else (0, 0)
    )
    return {
        "peak_rss_bytes": rss_peak_bytes(),
        "alloc_peak_bytes": peak,
        "alloc_current_bytes": current,
        "wall_seconds": wall_seconds,
        "cpu_seconds": cpu_seconds,
        "gc_collections": gc_collections(),
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_bytes(value: int) -> str:
    amount = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if amount < 1024 or unit == "GiB":
            return f"{amount:,.1f} {unit}" if unit != "B" else f"{int(amount)} B"
        amount /= 1024
    return f"{int(value)} B"  # pragma: no cover - unreachable


def render_resource_profile(tracer: Tracer, limit: int = 40) -> str:
    """Flat per-span resource table for ``repro profile`` output."""
    rows: List[Tuple[str, Dict[str, Any], float]] = []
    for span in tracer.spans():
        sample = span.meta.get("resource")
        if isinstance(sample, dict):
            indent = "  " * span.depth
            rows.append((indent + span.name, sample, span.duration))
    lines = [
        f"{'span':<44} {'wall s':>9} {'cpu s':>9} "
        f"{'alloc peak':>12} {'gc':>4}"
    ]
    for name, sample, duration in rows[:limit]:
        lines.append(
            f"{name:<44} {duration:>9.4f} "
            f"{sample.get('cpu_seconds', 0.0):>9.4f} "
            f"{_format_bytes(int(sample.get('alloc_peak_bytes', 0))):>12} "
            f"{sample.get('gc_collections', 0):>4}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more metered spans")
    if len(rows) == 0:
        lines.append("(no metered spans — was a ProfilingTracer installed?)")
    lines.append("")
    lines.append(f"process peak RSS: {_format_bytes(rss_peak_bytes())}")
    return "\n".join(lines)
