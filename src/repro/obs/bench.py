"""``python -m repro bench``: the performance-regression harness.

Re-runs the analytical workloads (bootstrap, HELR training, ResNet-20
inference, plus a primitive micro-workload sweep) under tracing, records
the simulator's own wall-clock time and the analytical costs, and
compares each run against its committed baseline snapshot
(``benchmarks/baselines/*.json``, one per workload × design × cache
size) with configurable tolerances.  Analytical-cost growth beyond
tolerance is a *regression*: the run exits non-zero and the offending
spans are named by the :mod:`repro.obs.diff` attribution table.
Wall-clock time is report-only — it lands in the ``BENCH_<workload>.json``
trajectory files, never in the gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import state as obs
from repro.obs.baseline import (
    BaselineStore,
    BenchComparison,
    Tolerance,
    baseline_key,
    compare_reports,
)
from repro.obs.diff import write_cost_diff
from repro.obs.export import (
    attribute_runtime,
    build_run_report,
    validate_run_report,
)

TRAJECTORY_SCHEMA_ID = "repro.obs.bench_trajectory/v1.1"

#: Trajectory schema ids accepted on load; v1.1 adds per-entry provenance.
ACCEPTED_TRAJECTORY_SCHEMA_IDS = (
    "repro.obs.bench_trajectory/v1",
    TRAJECTORY_SCHEMA_ID,
)


def validate_bench_trajectory(payload: Any) -> None:
    """Structural validation of a BENCH_<name>.json trajectory document.

    Raises ValueError on mismatch; gates every trajectory write so a
    drifting producer cannot silently ship entries nothing reads back.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench trajectory must be a JSON object")
    if payload.get("schema") not in ACCEPTED_TRAJECTORY_SCHEMA_IDS:
        raise ValueError(
            f"unsupported bench trajectory schema {payload.get('schema')!r}; "
            f"accepted: {', '.join(ACCEPTED_TRAJECTORY_SCHEMA_IDS)}"
        )
    if not isinstance(payload.get("workload"), str):
        raise ValueError("bench trajectory field 'workload' must be a string")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError("bench trajectory field 'entries' must be a list")
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"trajectory entry #{position} must be an object")
        for key in ("wall_seconds", "ops_total", "traffic_total"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"trajectory entry #{position} field {key!r} "
                    "must be a number"
                )
        if not isinstance(entry.get("regressions"), list):
            raise ValueError(
                f"trajectory entry #{position} field 'regressions' "
                "must be a list"
            )


@dataclass(frozen=True)
class BenchSpec:
    """One bench workload: what to run and which baseline gates it."""

    workload: str  # "micro" | "bootstrap" | "helr" | "resnet" | "memsim" | "sweep" | "serve" | "kernels"
    params: str  # parameter-set name in repro.cli._PARAM_SETS
    config: str  # MAD config name in repro.cli._CONFIGS
    cache_mb: Optional[float] = None
    design: Optional[str] = None  # roofline attribution (report-only)

    @property
    def name(self) -> str:
        return baseline_key(
            self.workload, self.params, self.config, self.cache_mb, self.design
        )


#: The committed bench matrix — every entry has a baseline fixture.
DEFAULT_SPECS: Tuple[BenchSpec, ...] = (
    BenchSpec("micro", "baseline", "none"),
    BenchSpec("micro", "optimal", "all"),
    BenchSpec("bootstrap", "baseline", "none"),
    BenchSpec("bootstrap", "optimal", "caching", cache_mb=256.0),
    BenchSpec("bootstrap", "optimal", "all"),
    BenchSpec("bootstrap", "optimal", "all", cache_mb=256.0, design="BTS"),
    BenchSpec("helr", "optimal", "all", cache_mb=256.0, design="BTS"),
    BenchSpec("resnet", "optimal", "all", cache_mb=256.0, design="BTS"),
    BenchSpec("memsim", "baseline", "caching", cache_mb=32.0),
    BenchSpec("sweep", "baseline", "all"),
    BenchSpec("serve", "optimal", "all"),
    BenchSpec("kernels", "baseline", "none"),
)


def primitive_micro_cost(params, config, cache=None):
    """Traced per-primitive micro-workload at a representative level.

    One span per homomorphic primitive, each recording exactly its unit
    cost — the finest-grained regression probe: a cost change in any
    single primitive is attributed directly instead of smeared across a
    bootstrap phase.
    """
    from repro.perf import PrimitiveCosts
    from repro.perf.events import CostReport

    costs = PrimitiveCosts(params, config, cache)
    level = max(2, round(params.max_limbs * 0.6))
    units: Tuple[Tuple[str, Callable], ...] = (
        ("Add", costs.add),
        ("PtAdd", costs.pt_add),
        ("PtMult", costs.pt_mult),
        ("Mult", costs.mult),
        ("Rotate", costs.rotate),
        ("Conjugate", costs.conjugate),
        ("KeySwitch", costs.key_switch),
        ("Rescale", costs.rescale),
        ("Automorph", costs.automorph),
    )
    total = CostReport()
    with obs.span("Primitives", level=level, params=params.describe()):
        for name, unit in units:
            with obs.span(name, level=level):
                cost = unit(level)
                obs.record_cost(cost)
            total = total + cost
        with obs.span("ModRaise", level=level):
            cost = costs.mod_raise(2, params.max_limbs)
            obs.record_cost(cost)
        total = total + cost
    return total


def memsim_micro_cost(params, config, cache_mb: float = 32.0):
    """Traced memsim micro-workload: replay each primitive's schedule.

    The recorded cost of each span is the *simulated* DRAM traffic of the
    primitive's trace at ``cache_mb`` under LRU — so any drift in the
    schedule generators, the replay semantics, or a replacement policy
    shows up as a gated traffic change, attributed to the primitive that
    moved.
    """
    from repro.memsim.policies import make_policy
    from repro.memsim.schedules import ScheduleBuilder
    from repro.memsim.simulator import MemorySimulator
    from repro.perf.cache import MB
    from repro.perf.events import CostReport

    builder = ScheduleBuilder(params, config)
    limbs = params.max_limbs
    schedules = (
        builder.decomp(limbs),
        builder.mod_up(limbs),
        builder.ksk_inner_product(limbs),
        builder.mod_down(limbs),
        builder.key_switch(limbs),
        builder.mult(limbs),
        builder.rotate(limbs),
        builder.pt_mat_vec_mult(limbs, builder.dft_diagonals()),
    )
    total = CostReport()
    with obs.span("MemsimMicro", cache_mb=cache_mb, params=params.describe()):
        for schedule in schedules:
            with obs.span("memsim:bench", primitive=schedule.label):
                result = MemorySimulator(
                    int(cache_mb * MB), make_policy("lru")
                ).replay(schedule.trace)
                cost = CostReport(traffic=result.traffic)
                obs.record_cost(cost)
            total = total + cost
    return total


def sweep_micro_cost(params, config):
    """Traced sweep micro-workload: a small Table 5 grid through the engine.

    Runs a fixed 24-candidate search grid through
    :func:`repro.sweep.run_sweep` in-process and sums the candidates'
    bootstrap costs, so the bench gate covers the sweep dispatch, memo
    and merge path itself: any cost drift in the engine (a dropped or
    double-evaluated point, a memo key collision) changes the gated
    total.  Wall-clock stays report-only, as everywhere in the bench.

    ``params`` names the design's own parameter set and is unused — the
    grid supplies the candidates; it is part of the signature so the
    spec's baseline key stays self-describing.
    """
    from repro.hardware import PRIOR_DESIGNS, mad_counterpart
    from repro.perf.events import CostReport
    from repro.search.space import enumerate_parameter_space
    from repro.sweep import SweepAxis, SweepSpec, run_sweep

    del params
    candidates = tuple(
        enumerate_parameter_space(
            log_q_choices=(50, 54, 58),
            max_limbs_choices=(35, 40),
            dnum_choices=(2, 3),
            fft_iter_choices=(3, 4),
        )
    )
    spec = SweepSpec(
        name="sweep-micro",
        evaluator="search.candidate",
        axes=(SweepAxis("params", candidates),),
        context={
            "design": mad_counterpart(PRIOR_DESIGNS["GPU [Jung et al.]"]),
            "config": config,
            "enforce_cache": False,
        },
    )
    outcome = run_sweep(spec, jobs=1)
    total = CostReport()
    for result in outcome.values:
        total = total + result.cost
    return total


def kernels_micro_cost(
    params, config, degree: int = 4096, limbs: int = 8, repeats: int = 3
):
    """Traced NTT-kernel micro-workload: the int64 engine vs its oracle.

    One forward+inverse round trip of the whole RNS basis (``limbs``
    sub-``2**30`` moduli at ring degree ``degree``), executed on both the
    vectorized :class:`repro.kernels.ntt.BatchNttKernel` and the
    pure-Python :class:`repro.numth.ntt.NttContext` oracle with min-of-k
    timing.  The *gated* cost is the closed-form transform model — per
    direction and limb: ``N`` twist multiplies plus ``N/2 * log2 N``
    butterfly multiplies and ``N * log2 N`` butterfly adds, moving the
    limb-major ``(L, N)`` int64 matrix once per stage pass — identical
    for the two engines by construction, so the gate pins the modeled
    work while the run itself asserts the engines agree bit-for-bit.

    Wall-clock and the vectorized/oracle speedup land in ``host.``-
    prefixed gauges: report-only, zeroed in committed baselines and
    tracked per machine in the ``BENCH_kernels.json`` trajectory.

    ``params`` and ``config`` are part of the signature so the spec's
    baseline key stays self-describing; the workload is parameterised by
    ``(degree, limbs)`` instead.
    """
    import random

    from repro.kernels.ntt import BatchNttKernel
    from repro.numth import NttContext, find_ntt_primes
    from repro.perf.events import CostReport, MemTraffic, OpCount

    del params, config
    primes = find_ntt_primes(30, degree, limbs)
    contexts = [NttContext(degree, q) for q in primes]
    kernel = BatchNttKernel(degree, primes, contexts)
    rng = random.Random(2012)
    rows = [[rng.randrange(q) for _ in range(degree)] for q in primes]

    log_n = degree.bit_length() - 1
    limb_bytes = limbs * degree * 8
    per_direction = CostReport(
        ops=OpCount(
            mults=limbs * (degree + (degree // 2) * log_n),
            adds=limbs * degree * log_n,
        ),
        # One read+write pass over the limb-major matrix per stage level,
        # plus the psi twist (forward) / untwist (inverse) pass.
        traffic=MemTraffic(
            ct_read=limb_bytes * (log_n + 1),
            ct_write=limb_bytes * (log_n + 1),
        ),
    )
    round_trip = per_direction + per_direction

    def best_of(run: Callable[[], Any]) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
        return best

    total = CostReport()
    with obs.span(
        "KernelsMicro", degree=degree, limbs=limbs, repeats=repeats
    ):
        with obs.span("ntt:oracle", engine="oracle"):
            oracle_seconds = best_of(
                lambda: [
                    ctx.inverse(ctx.forward(row))
                    for ctx, row in zip(contexts, rows)
                ]
            )
            obs.record_cost(round_trip)
        total = total + round_trip
        with obs.span("ntt:vectorized", engine="vectorized"):
            vectorized_seconds = best_of(
                lambda: kernel.inverse(kernel.forward(rows))
            )
            obs.record_cost(round_trip)
        total = total + round_trip

        # Differential gate: the bench refuses to report a speedup for an
        # engine that diverged from the oracle.
        fwd = kernel.forward(rows)
        if fwd.tolist() != [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ] or kernel.inverse(fwd).tolist() != rows:
            raise RuntimeError(
                "vectorized NTT diverged from the pure-Python oracle at "
                f"degree={degree}, limbs={limbs}"
            )
        obs.annotate(parity="bit-exact")
        obs.gauge("host.kernels.oracle_seconds", oracle_seconds)
        obs.gauge("host.kernels.vectorized_seconds", vectorized_seconds)
        obs.gauge(
            "host.kernels.speedup", oracle_seconds / vectorized_seconds
        )
    return total


def serve_micro_cost(params, config):
    """Traced serving micro-workload: the ``micro`` scenario, one fleet.

    Runs the registered two-tenant ``micro`` scenario's request stream
    (seed 0) on a fixed 8192-multiplier / 32 MB / 1 TB/s design carrying
    ``params``, through the full event loop — arrivals, batching,
    level-budget bootstraps, cache partitioning.  The simulator records
    one cost per tenant span, so the gated total covers the entire
    serving pipeline: drift in arrival generation, batch formation,
    bootstrap triggering or pricing all move the committed numbers.
    Latency percentiles are simulated time and never enter the gate.
    """
    from repro.hardware.design import HardwareDesign
    from repro.serve.scenario import SCENARIOS
    from repro.serve.simulator import simulate

    scenario = SCENARIOS["micro"]
    fleet = scenario.fleets[0]
    design = HardwareDesign(
        name="serve-bench",
        modular_multipliers=8192,
        on_chip_mb=32.0,
        bandwidth_gb_s=1000.0,
        params=params,
    )
    result = simulate(
        fleet_name="serve-bench",
        design=design,
        devices=fleet.devices,
        tenants=scenario.tenants,
        duration_s=scenario.duration_s,
        seed=0,
        scenario=scenario.name,
        config=config,
        scheduler=fleet.scheduler,
        cache_policy=fleet.cache_policy,
        batch=fleet.batch,
    )
    return result.total_cost


def _runner(spec: BenchSpec) -> Tuple[Callable[[], Any], str]:
    """(zero-arg traced runner, workload display name) for a spec."""
    from repro.cli import _CONFIGS, _PARAM_SETS
    from repro.perf import BootstrapModel, CacheModel

    params = _PARAM_SETS[spec.params]
    config = _CONFIGS[spec.config]()
    cache = CacheModel.from_mb(spec.cache_mb) if spec.cache_mb else None

    if spec.workload == "micro":
        return lambda: primitive_micro_cost(params, config, cache), "micro"
    if spec.workload == "kernels":
        return lambda: kernels_micro_cost(params, config), "kernels"
    if spec.workload == "sweep":
        return lambda: sweep_micro_cost(params, config), "sweep"
    if spec.workload == "serve":
        return lambda: serve_micro_cost(params, config), "serve"
    if spec.workload == "memsim":
        return (
            lambda: memsim_micro_cost(params, config, spec.cache_mb or 32.0),
            "memsim",
        )
    if spec.workload == "bootstrap":
        return (
            lambda: BootstrapModel(params, config, cache).ledger().total,
            "bootstrap",
        )
    from repro.apps import helr_training, resnet20_inference, workload_cost

    factory = helr_training if spec.workload == "helr" else resnet20_inference
    workload = factory(params)
    return (
        lambda: workload_cost(workload, params, config, cache).total,
        workload.name,
    )


def run_spec(spec: BenchSpec) -> Dict[str, Any]:
    """Run one bench workload traced and return its run report."""
    from dataclasses import asdict

    from repro.cli import _CONFIGS

    from repro.obs.profiler import process_cpu_seconds, run_resource_summary

    runner, workload_name = _runner(spec)
    cpu0 = process_cpu_seconds()
    wall0 = time.perf_counter()
    with obs.capture() as (tracer, registry):
        runner()
    resources = run_resource_summary(
        wall_seconds=time.perf_counter() - wall0,
        cpu_seconds=process_cpu_seconds() - cpu0,
    )

    runtime = None
    if spec.design:
        from repro.hardware import PRIOR_DESIGNS

        estimate = attribute_runtime(tracer, PRIOR_DESIGNS[spec.design])
        if estimate is not None:
            runtime = {
                "design": spec.design,
                "compute_seconds": estimate.compute_seconds,
                "memory_seconds": estimate.memory_seconds,
                "roofline_seconds": estimate.seconds,
                "bound": estimate.bound,
            }

    report = build_run_report(
        tracer,
        registry,
        command=f"bench {spec.name}",
        workload=workload_name,
        params=spec.params,
        config=asdict(_CONFIGS[spec.config]()),
        runtime=runtime,
        resources=resources,
    )
    validate_run_report(report)
    return report


def _append_trajectory(
    out_dir: Path, spec: BenchSpec, report: Dict[str, Any],
    comparison: Optional[BenchComparison], runner_seconds: float,
) -> Path:
    """Append one entry to the workload's BENCH_<name>.json trajectory."""
    path = out_dir / f"BENCH_{spec.name}.json"
    trajectory: Dict[str, Any] = {
        "schema": TRAJECTORY_SCHEMA_ID,
        "workload": spec.name,
        "entries": [],
    }
    if path.is_file():
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if (
                isinstance(existing, dict)
                and existing.get("schema") in ACCEPTED_TRAJECTORY_SCHEMA_IDS
                and isinstance(existing.get("entries"), list)
            ):
                trajectory = existing
                trajectory["schema"] = TRAJECTORY_SCHEMA_ID
        except (OSError, ValueError):
            pass  # corrupt trajectory: start a fresh one
    from repro.obs.events import provenance as build_provenance

    # Host-measurement gauges (wall-clock, engine speedups) are the whole
    # point of a trajectory: they are zeroed in the committed *baseline*
    # but tracked per machine here.
    host_gauges = {
        name: value
        for name, value in report["metrics"].get("gauges", {}).items()
        if name.startswith("host.")
    }
    trajectory["entries"].append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "provenance": build_provenance(),
            "host_gauges": host_gauges,
            "wall_seconds": runner_seconds,
            "trace_wall_seconds": report["wall_seconds"],
            "ops_total": report["totals"]["ops"]["total"],
            "traffic_total": report["totals"]["traffic"]["total"],
            "arithmetic_intensity": report["totals"]["arithmetic_intensity"],
            "ok": comparison.ok if comparison is not None else None,
            "regressions": (
                [r.metric for r in comparison.regressions]
                if comparison is not None
                else []
            ),
        }
    )
    validate_bench_trajectory(trajectory)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def run_bench(
    specs: Tuple[BenchSpec, ...] = DEFAULT_SPECS,
    store: Optional[BaselineStore] = None,
    *,
    update: bool = False,
    tolerance: Tolerance = Tolerance(),
    out_dir: Optional[str] = None,
    printer: Callable[[str], None] = print,
) -> int:
    """Run the bench matrix; returns a process exit code.

    ``update=True`` (re)writes every baseline instead of gating.  A
    missing baseline is itself a failure in gating mode — the matrix is
    meant to be fully committed.
    """
    store = store if store is not None else BaselineStore()
    out_path = Path(out_dir) if out_dir else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    failures: List[str] = []
    for spec in specs:
        started = time.perf_counter()
        report = run_spec(spec)
        runner_seconds = time.perf_counter() - started

        comparison: Optional[BenchComparison] = None
        if update:
            path = store.save(spec.name, report)
            printer(
                f"{spec.name}: baseline updated ({path}) — "
                f"{report['totals']['ops']['total']:,} ops, "
                f"{report['totals']['traffic']['total']:,} bytes, "
                f"{runner_seconds * 1e3:.1f} ms"
            )
        else:
            baseline = store.load(spec.name)
            if baseline is None:
                failures.append(spec.name)
                printer(
                    f"{spec.name}: MISSING baseline "
                    f"({store.path_for(spec.name)}) — run "
                    f"`python -m repro bench --update` and commit it"
                )
            else:
                comparison = compare_reports(baseline, report, tolerance)
                comparison.workload = spec.name
                if comparison.ok:
                    printer(
                        comparison.describe()
                        + f"  [{runner_seconds * 1e3:.1f} ms]"
                    )
                else:
                    printer(comparison.describe())
                    failures.append(spec.name)
                if out_path is not None and comparison.diff is not None:
                    write_cost_diff(
                        comparison.diff,
                        str(out_path / f"cost_diff_{spec.name}.json"),
                    )

        if out_path is not None:
            _append_trajectory(out_path, spec, report, comparison, runner_seconds)

    if failures:
        printer(
            f"\nbench FAILED: {len(failures)}/{len(specs)} workloads "
            f"regressed or lack baselines: {', '.join(failures)}"
        )
        return 1
    printer(f"\nbench ok: {len(specs)} workloads within tolerance")
    return 0
