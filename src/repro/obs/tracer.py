"""Hierarchical span tracing with a zero-cost disabled path.

A :class:`Tracer` records a tree of named, wall-clock-timed spans.  Model
code opens spans with ``with tracer.span("CoeffToSlot", level=l):`` and
attributes analytical :class:`~repro.perf.events.CostReport` deltas to the
innermost open span via :meth:`Tracer.record_cost`.

Two invariants keep traced and untraced runs bit-identical:

* spans only *observe* — they store the cost objects handed to them and
  never feed anything back into the model;
* each cost is recorded exactly once, by the code that folds it into a
  total, so the sum of all spans' *exclusive* costs equals the untraced
  total exactly (integer arithmetic, no rounding).

When tracing is disabled the process-global tracer is the shared
:data:`NULL_TRACER`, whose ``span`` returns one reusable no-op context
manager — no allocation, no timing, no bookkeeping.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("name", "meta", "parent", "children", "start", "end", "cost")

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        meta: Optional[Dict[str, Any]] = None,
        start: float = 0.0,
    ):
        self.name = name
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self.parent = parent
        self.children: List["Span"] = []
        self.start = start
        self.end: Optional[float] = None
        #: Cost recorded *directly* in this span (exclusive of children).
        self.cost = None

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def duration(self) -> float:
        """Wall-clock seconds; 0.0 while the span is still open."""
        return (self.end if self.end is not None else self.start) - self.start

    def record_cost(self, cost) -> None:
        """Attribute an analytical cost delta to this span (accumulates)."""
        self.cost = cost if self.cost is None else self.cost + cost

    def annotate(self, **meta) -> None:
        self.meta.update(meta)

    def total_cost(self):
        """Inclusive cost: own plus all descendants (None if none recorded)."""
        total = self.cost
        for child in self.children:
            sub = child.total_cost()
            if sub is not None:
                total = sub if total is None else total + sub
        return total

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


class _SpanContext:
    """Context manager that opens a span on entry and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_meta", "_span")

    def __init__(self, tracer: "Tracer", name: str, meta: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._meta = meta

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        span = Span(self._name, parent, self._meta, start=tracer._clock())
        (parent.children if parent is not None else tracer.roots).append(span)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        span.end = self._tracer._clock()
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


class Tracer:
    """Records a forest of nested spans.

    Args:
        clock: monotonic-seconds callable; injectable for deterministic
            tests (defaults to :func:`time.perf_counter`).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, /, **meta) -> _SpanContext:
        """Context manager opening a child of the current span."""
        return _SpanContext(self, name, meta)

    def record_cost(self, cost) -> None:
        """Attribute a cost delta to the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].record_cost(cost)

    def annotate(self, **meta) -> None:
        """Merge metadata into the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].meta.update(meta)

    def spans(self) -> Iterator[Span]:
        """All recorded spans, pre-order across the root forest."""
        for root in self.roots:
            yield from root.walk()

    def total_cost(self):
        """Sum of every span's exclusive cost (None when nothing recorded).

        Because costs are recorded exactly once, this equals the model's
        untraced total bit-for-bit.
        """
        total = None
        for span in self.spans():
            if span.cost is not None:
                total = span.cost if total is None else total + span.cost
        return total


class _NullSpan:
    """Reusable inert span returned by the disabled path."""

    __slots__ = ()
    name = "<tracing disabled>"
    children = ()
    cost = None
    meta: Dict[str, Any] = {}

    def record_cost(self, cost) -> None:
        pass

    def annotate(self, **meta) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


class NullTracer:
    """Do-nothing tracer; the process-global default when disabled."""

    __slots__ = ()
    enabled = False
    current = None

    def span(self, name: str, /, **meta) -> _NullSpanContext:
        return _NULL_CONTEXT

    def record_cost(self, cost) -> None:
        pass

    def annotate(self, **meta) -> None:
        pass

    def spans(self) -> Iterator[Span]:
        return iter(())

    def total_cost(self):
        return None


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
