"""Process-global observability state and the instrumentation facade.

Instrumented modules never hold tracer references; they call the
module-level helpers here::

    from repro.obs import state as obs

    with obs.span("CoeffToSlot", level=level):
        obs.record_cost(cost)
    obs.count("numth.ntt.forward")

By default the global tracer is :data:`~repro.obs.tracer.NULL_TRACER` and
metrics are disabled, so every helper is a boolean test or a no-op method
on a shared singleton.  :func:`capture` enables both for a block and
restores the previous state on exit — the pattern the CLI and tests use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Span, Tracer

_tracer = NULL_TRACER
_metrics = MetricsRegistry()
_metrics_enabled = False


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def get_tracer():
    """The process-global tracer (the null tracer when disabled)."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]):
    """Install ``tracer`` globally (None disables); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = NULL_TRACER if tracer is None else tracer
    return previous


def tracing_enabled() -> bool:
    return _tracer.enabled


def span(name: str, /, **meta):
    """Open a span on the global tracer (no-op context when disabled)."""
    return _tracer.span(name, **meta)


def record_cost(cost) -> None:
    """Attribute a cost delta to the innermost open span."""
    _tracer.record_cost(cost)


def annotate(**meta) -> None:
    """Merge metadata into the innermost open span."""
    _tracer.annotate(**meta)


def current_span() -> Optional[Span]:
    return _tracer.current


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def metrics() -> MetricsRegistry:
    """The process-global metrics registry (readable even when disabled)."""
    return _metrics


def set_metrics(
    registry: Optional[MetricsRegistry], enabled: bool = True
) -> Tuple[MetricsRegistry, bool]:
    """Swap the global registry; returns the previous (registry, enabled)."""
    global _metrics, _metrics_enabled
    previous = (_metrics, _metrics_enabled)
    if registry is not None:
        _metrics = registry
    _metrics_enabled = enabled
    return previous


def metrics_enabled() -> bool:
    return _metrics_enabled


def count(name: str, amount: int = 1) -> None:
    """Increment a counter; a single boolean test when disabled."""
    if _metrics_enabled:
        _metrics.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    if _metrics_enabled:
        _metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    if _metrics_enabled:
        _metrics.histogram(name).observe(value)


# ----------------------------------------------------------------------
# Scoped enablement
# ----------------------------------------------------------------------
def reset() -> None:
    """Restore the pristine default state: null tracer, fresh disabled registry.

    Back-to-back CLI invocations in one process (tests drive ``main()``
    directly) must not see each other's counters; :func:`scoped` calls
    this so every invocation starts clean.
    """
    global _tracer, _metrics, _metrics_enabled
    _tracer = NULL_TRACER
    _metrics = MetricsRegistry()
    _metrics_enabled = False


@contextmanager
def scoped() -> Iterator[None]:
    """Run a block against fresh global state, restoring the caller's on exit.

    Unlike :func:`capture` this does not *enable* anything — it
    guarantees isolation: whatever the block installs (via
    :func:`capture`, :func:`set_tracer`, ...) is discarded afterwards,
    and nothing recorded before the block bleeds in.  ``cli.main`` wraps
    every command dispatch in one.
    """
    global _tracer, _metrics, _metrics_enabled
    previous = (_tracer, _metrics, _metrics_enabled)
    reset()
    try:
        yield
    finally:
        _tracer, _metrics, _metrics_enabled = previous


@contextmanager
def suppressed() -> Iterator[None]:
    """Disable tracing and metrics for a block, restoring state on exit.

    Used where instrumentation must be *observationally transparent*:
    :meth:`repro.sweep.memo.Memo.get_or_compute` runs compute callbacks
    under suppression so a memoized evaluation emits the same telemetry
    on hit and miss (none) — otherwise merged span trees would depend on
    which worker happened to see a key first.
    """
    global _tracer, _metrics, _metrics_enabled
    previous = (_tracer, _metrics, _metrics_enabled)
    _tracer = NULL_TRACER
    _metrics_enabled = False
    try:
        yield
    finally:
        _tracer, _metrics, _metrics_enabled = previous


@contextmanager
def capture(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable tracing + metrics for a block, restoring prior state on exit.

    Yields the (fresh unless provided) tracer and registry so the caller
    can export them after the block.
    """
    tracer = Tracer() if tracer is None else tracer
    registry = MetricsRegistry() if registry is None else registry
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry, enabled=True)
    try:
        yield tracer, registry
    finally:
        set_tracer(
            previous_tracer if previous_tracer is not NULL_TRACER else None
        )
        set_metrics(previous_metrics[0], enabled=previous_metrics[1])
