"""``repro dash``: a self-contained HTML dashboard over an event stream.

Renders a ``repro.obs.events/v1`` JSONL file (see
:mod:`repro.obs.events`) into a single HTML file with **no external
resources** — no CDN scripts, no fonts, no stylesheets; everything is
inline, so the artifact can be archived next to the run report and
opened offline years later.

Layout: a header with the run's provenance, stat tiles (points, wall
time, throughput, memo hit rate, peak worker RSS), an SVG progress line
chart (points completed over time), per-worker RSS bars, and a chunk
table.  Colors follow the repo's chart conventions: a single blue series
on light/dark surfaces selected via CSS custom properties (the dark
values are their own steps, not an automatic inversion), and text always
wears ink tokens, never the series color.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.events import read_events

__all__ = ["build_dashboard", "render_dashboard", "write_dashboard"]

#: Palette roles (light, dark) — validated categorical slot 1 + chrome.
_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --series-1-soft:  #9ec5f4;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-1-soft:  #256abf;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --series-1-soft:  #256abf;
}
.viz-root {
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; min-height: 100vh;
}
.viz-root h1 { font-size: 1.25rem; margin: 0 0 4px; }
.viz-root .sub { color: var(--text-secondary); font-size: 0.85rem; margin: 0 0 20px; }
.viz-root .prov { color: var(--text-muted); font-size: 0.75rem; margin: 4px 0 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 1.5rem; }
.tile .k { color: var(--text-secondary); font-size: 0.75rem; margin-top: 2px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 20px;
}
.panel h2 { font-size: 0.9rem; margin: 0 0 12px; color: var(--text-primary); }
svg text { font-family: inherit; fill: var(--text-muted); font-size: 10px; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .grid { stroke: var(--gridline); stroke-width: 1; }
svg .line { stroke: var(--series-1); stroke-width: 2; fill: none; }
svg .dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
svg .dot:hover { r: 6; }
svg .bar { fill: var(--series-1); }
table { border-collapse: collapse; width: 100%; font-size: 0.8rem; }
th { text-align: left; color: var(--text-secondary); font-weight: 600; }
th, td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--gridline); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:hover td { background: color-mix(in srgb, var(--series-1) 8%, transparent); }
"""


def _fmt_bytes(value: float) -> str:
    amount = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if amount < 1024 or unit == "GiB":
            return f"{amount:,.1f} {unit}" if unit != "B" else f"{int(amount)} B"
        amount /= 1024
    return f"{value:.0f} B"  # pragma: no cover - unreachable


def build_dashboard(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce an event stream to the model the dashboard renders."""
    model: Dict[str, Any] = {
        "command": "",
        "provenance": {},
        "sweep": None,
        "points_total": 0,
        "points_done": 0,
        "wall_seconds": None,
        "memo_hits": 0,
        "memo_misses": 0,
        "workers": {},
        "progress": [],  # (t_rel, points_done)
        "chunks": [],
        "finished": False,
    }
    t0: Optional[float] = None
    for event in events:
        kind, data, ts = event["type"], event["data"], event["ts"]
        if t0 is None:
            t0 = ts
        if kind == "run_start":
            model["command"] = data.get("command", "")
            model["provenance"] = data.get("provenance", {})
        elif kind == "sweep_start":
            model["sweep"] = data.get("sweep")
            model["points_total"] = data.get("points", 0)
            model["points_done"] = data.get("reused", 0)
            model["jobs"] = data.get("jobs", 1)
            model["progress"].append((ts - t0, model["points_done"]))
        elif kind == "chunk_complete":
            model["points_done"] = data.get("points_done", model["points_done"])
            model["memo_hits"] += data.get("memo_hits", 0)
            model["memo_misses"] += data.get("memo_misses", 0)
            model["progress"].append((ts - t0, model["points_done"]))
            worker = data.get("worker", {})
            pid = worker.get("pid")
            if pid is not None:
                entry = model["workers"].setdefault(
                    pid, {"pid": pid, "chunks": 0, "peak_rss_bytes": 0}
                )
                entry["chunks"] += 1
                entry["peak_rss_bytes"] = max(
                    entry["peak_rss_bytes"], worker.get("peak_rss_bytes", 0)
                )
            model["chunks"].append(
                {
                    "chunk": data.get("chunk"),
                    "first_index": data.get("first_index"),
                    "last_index": data.get("last_index"),
                    "busy_seconds": data.get("busy_seconds", 0.0),
                    "memo_hits": data.get("memo_hits", 0),
                    "memo_misses": data.get("memo_misses", 0),
                    "pid": pid,
                    "t_rel": ts - t0,
                }
            )
        elif kind == "sweep_end":
            model["wall_seconds"] = data.get("wall_seconds")
            model["finished"] = True
            for worker in data.get("workers", []):
                pid = worker.get("pid")
                if pid is None:
                    continue
                entry = model["workers"].setdefault(
                    pid, {"pid": pid, "chunks": 0, "peak_rss_bytes": 0}
                )
                entry["peak_rss_bytes"] = max(
                    entry["peak_rss_bytes"], worker.get("peak_rss_bytes", 0)
                )
    last_t = model["progress"][-1][0] if model["progress"] else 0.0
    if model["wall_seconds"] is None:
        model["wall_seconds"] = last_t
    rate_window = model["wall_seconds"] or last_t
    done_new = model["points_done"]
    model["points_per_second"] = done_new / rate_window if rate_window else 0.0
    total = model["memo_hits"] + model["memo_misses"]
    model["memo_hit_rate"] = model["memo_hits"] / total if total else 0.0
    model["peak_rss_bytes"] = max(
        (w["peak_rss_bytes"] for w in model["workers"].values()), default=0
    )
    return model


def _progress_svg(progress: List[Any], total: int) -> str:
    """Single-series progress line (points completed over seconds)."""
    width, height = 640, 200
    pad_l, pad_r, pad_t, pad_b = 42, 12, 10, 24
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    if not progress:
        return (
            f'<svg viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="no progress data">'
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle">'
            "no progress events</text></svg>"
        )
    t_max = max((t for t, _ in progress), default=0.0) or 1.0
    y_max = max(total, max(done for _, done in progress), 1)

    def x(t: float) -> float:
        return pad_l + (t / t_max) * plot_w

    def y(done: float) -> float:
        return pad_t + plot_h - (done / y_max) * plot_h

    gridlines = []
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        gy = pad_t + plot_h - frac * plot_h
        label = f"{frac * y_max:,.0f}"
        gridlines.append(
            f'<line class="grid" x1="{pad_l}" y1="{gy:.1f}" '
            f'x2="{width - pad_r}" y2="{gy:.1f}"/>'
            f'<text x="{pad_l - 6}" y="{gy + 3:.1f}" '
            f'text-anchor="end">{label}</text>'
        )
    points = " ".join(f"{x(t):.1f},{y(d):.1f}" for t, d in progress)
    dots = "".join(
        f'<circle class="dot" cx="{x(t):.1f}" cy="{y(d):.1f}" r="3.5">'
        f"<title>{d:,} points at {t:.2f}s</title></circle>"
        for t, d in progress
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="points completed over time">'
        + "".join(gridlines)
        + f'<line class="axis" x1="{pad_l}" y1="{pad_t + plot_h}" '
        f'x2="{width - pad_r}" y2="{pad_t + plot_h}"/>'
        + f'<polyline class="line" points="{points}"/>'
        + dots
        + f'<text x="{pad_l}" y="{height - 6}">0s</text>'
        f'<text x="{width - pad_r}" y="{height - 6}" '
        f'text-anchor="end">{t_max:.2f}s</text>'
        "</svg>"
    )


def _worker_bars(workers: Dict[Any, Dict[str, Any]]) -> str:
    """Horizontal per-worker peak-RSS bars with direct labels."""
    rows = sorted(workers.values(), key=lambda w: w["pid"])
    if not rows:
        return "<p class='sub'>no worker data</p>"
    width, bar_h, gap = 640, 18, 8
    label_w, value_w = 110, 90
    plot_w = width - label_w - value_w
    peak = max(w["peak_rss_bytes"] for w in rows) or 1
    height = len(rows) * (bar_h + gap) + gap
    bars = []
    for i, worker in enumerate(rows):
        by = gap + i * (bar_h + gap)
        bw = max(2.0, (worker["peak_rss_bytes"] / peak) * plot_w)
        bars.append(
            f'<text x="{label_w - 8}" y="{by + bar_h - 5}" '
            f'text-anchor="end">pid {worker["pid"]}</text>'
            f'<rect class="bar" x="{label_w}" y="{by}" rx="4" '
            f'width="{bw:.1f}" height="{bar_h}">'
            f'<title>pid {worker["pid"]}: '
            f'{_fmt_bytes(worker["peak_rss_bytes"])} peak RSS, '
            f'{worker["chunks"]} chunks</title></rect>'
            f'<text x="{label_w + bw + 6:.1f}" y="{by + bar_h - 5}">'
            f'{_fmt_bytes(worker["peak_rss_bytes"])}</text>'
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="peak RSS per worker">' + "".join(bars) + "</svg>"
    )


def render_dashboard(events: Sequence[Mapping[str, Any]]) -> str:
    """Render an event stream as a standalone HTML document."""
    model = build_dashboard(events)
    esc = html.escape
    provenance = model["provenance"]
    sha = str(provenance.get("git_sha", "unknown"))[:12]
    dirty = " (dirty)" if provenance.get("git_dirty") else ""
    status = "finished" if model["finished"] else "in flight"
    title = model["sweep"] or model["command"] or "run"

    tiles = [
        (f"{model['points_done']:,} / {model['points_total']:,}", "points"),
        (f"{model['wall_seconds']:.2f}s", "wall time"),
        (f"{model['points_per_second']:,.1f}", "points / s"),
        (f"{model['memo_hit_rate']:.1%}", "memo hit rate"),
        (_fmt_bytes(model["peak_rss_bytes"]), "peak worker RSS"),
        (str(len(model["workers"]) or 1), "workers"),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{esc(value)}</div>'
        f'<div class="k">{esc(label)}</div></div>'
        for value, label in tiles
    )
    chunk_rows = "".join(
        f"<tr><td class='num'>{c['chunk']}</td>"
        f"<td class='num'>{c['first_index']}–{c['last_index']}</td>"
        f"<td class='num'>{c['busy_seconds'] * 1e3:,.1f}</td>"
        f"<td class='num'>{c['memo_hits']}</td>"
        f"<td class='num'>{c['memo_misses']}</td>"
        f"<td class='num'>{c['pid']}</td>"
        f"<td class='num'>{c['t_rel']:,.2f}</td></tr>"
        for c in model["chunks"]
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dash — {esc(str(title))}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>repro sweep dashboard — {esc(str(title))}</h1>
<p class="sub">{esc(model["command"])} · {esc(status)}
<span class="prov">commit {esc(sha)}{esc(dirty)} ·
python {esc(str(provenance.get("python", "?")))} ·
numpy {esc(str(provenance.get("numpy", "?")))}</span></p>
<div class="tiles">{tiles_html}</div>
<div class="panel"><h2>Points completed over time</h2>
{_progress_svg(model["progress"], model["points_total"])}</div>
<div class="panel"><h2>Peak RSS per worker</h2>
{_worker_bars(model["workers"])}</div>
<div class="panel"><h2>Chunks</h2>
<table>
<thead><tr><th class="num">chunk</th><th class="num">indices</th>
<th class="num">busy ms</th><th class="num">memo hits</th>
<th class="num">memo misses</th><th class="num">pid</th>
<th class="num">t (s)</th></tr></thead>
<tbody>{chunk_rows}</tbody>
</table></div>
<p class="prov">schema {esc(str(events[0]["schema"] if events else "?"))} ·
{len(events)} events · argv {esc(" ".join(map(str, provenance.get("argv", []))))}</p>
</body>
</html>
"""


def write_dashboard(events_path: str, out_path: str) -> Dict[str, Any]:
    """Read an events file, render the dashboard, write it; returns the model.

    Tolerates a live (still-growing) events file: a torn trailing line is
    dropped rather than failing the render.
    """
    events = read_events(events_path, strict=False)
    document = render_dashboard(events)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return build_dashboard(events)


def _self_test() -> None:  # pragma: no cover - manual aid
    print(json.dumps({"css_bytes": len(_CSS)}))
