"""Trace and metrics exporters.

Three output formats, all fed from one :class:`~repro.obs.tracer.Tracer`:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — loadable in
  Perfetto (ui.perfetto.dev) or ``chrome://tracing``; every span becomes a
  complete ("X") event whose ``args`` carry its exclusive ops/traffic.
* **Flat text profile** (:func:`render_flat_profile`) — spans aggregated
  by name in the :meth:`repro.perf.ledger.CostLedger.render` style.
* **``run_report.json``** (:func:`build_run_report`) — a stable
  machine-readable summary (schema id ``repro.obs.run_report/v1.1``,
  JSON-Schema in :data:`RUN_REPORT_SCHEMA`) suitable for ``BENCH_*.json``
  trajectory tracking and mechanical run-to-run diffing.

Schema history: v1.1 adds a required ``provenance`` block (git SHA,
python/numpy versions, argv — see :func:`repro.obs.events.provenance`)
and an optional ``resources`` block (peak RSS, allocation peak, CPU
seconds).  v1 reports remain readable everywhere
(:data:`ACCEPTED_SCHEMA_IDS`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.events import provenance as build_provenance
from repro.obs.events import validate_provenance
from repro.perf.events import CostReport, MemTraffic, OpCount

SCHEMA_ID = "repro.obs.run_report/v1.1"

#: Schema ids :func:`validate_run_report` accepts; new reports are always
#: written with :data:`SCHEMA_ID`.
ACCEPTED_SCHEMA_IDS = ("repro.obs.run_report/v1", SCHEMA_ID)


def compute_span_paths(names_and_depths) -> List[str]:
    """Stable hierarchical paths for a pre-order ``(name, depth)`` sequence.

    A span's path is its ancestors' names joined with ``/``; repeated
    same-name siblings are disambiguated with a ``#<k>`` suffix (second
    occurrence gets ``#2``), so the path of every span is unique and —
    as long as span *labels* stay constant across runs — identical from
    run to run.  This is the alignment key :mod:`repro.obs.diff` uses.
    """
    paths: List[str] = []
    path_stack: List[str] = []
    # counts_stack[d] counts name occurrences among depth-d siblings of
    # the currently open depth-(d-1) span.
    counts_stack: List[Dict[str, int]] = [{}]
    for name, depth in names_and_depths:
        if depth < 0 or depth > len(path_stack):
            raise ValueError(
                f"span {name!r} at depth {depth} does not follow its parent "
                f"(open depth {len(path_stack)})"
            )
        del path_stack[depth:]
        del counts_stack[depth + 1:]
        counts = counts_stack[depth]
        occurrence = counts.get(name, 0)
        counts[name] = occurrence + 1
        label = name if occurrence == 0 else f"{name}#{occurrence + 1}"
        path = f"{path_stack[-1]}/{label}" if path_stack else label
        paths.append(path)
        path_stack.append(path)
        counts_stack.append({})
    return paths

#: JSON-Schema (draft-07) for the run report; CI validates emitted reports
#: against it with ``jsonschema`` and :func:`validate_run_report` performs
#: the same structural checks without the dependency.
RUN_REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "repro.obs run report",
    "type": "object",
    "required": [
        "schema",
        "command",
        "wall_seconds",
        "totals",
        "spans",
        "metrics",
        "provenance",
    ],
    "properties": {
        "schema": {"enum": list(ACCEPTED_SCHEMA_IDS)},
        "provenance": {
            "type": "object",
            "required": ["git_sha", "python", "platform", "argv"],
            "properties": {
                "git_sha": {"type": "string"},
                "git_dirty": {"type": ["boolean", "null"]},
                "python": {"type": "string"},
                "numpy": {"type": ["string", "null"]},
                "platform": {"type": "string"},
                "argv": {"type": "array"},
                "config_fingerprint": {"type": ["string", "null"]},
            },
        },
        "resources": {
            "type": ["object", "null"],
            "properties": {
                "peak_rss_bytes": {"type": "integer", "minimum": 0},
                "alloc_peak_bytes": {"type": "integer", "minimum": 0},
                "alloc_current_bytes": {"type": "integer", "minimum": 0},
                "wall_seconds": {"type": "number", "minimum": 0},
                "cpu_seconds": {"type": "number", "minimum": 0},
                "gc_collections": {"type": "integer", "minimum": 0},
            },
        },
        "command": {"type": "string"},
        "workload": {"type": "string"},
        "params": {"type": ["string", "null"]},
        "config": {"type": ["object", "null"]},
        "wall_seconds": {"type": "number", "minimum": 0},
        "totals": {
            "type": "object",
            "required": ["ops", "traffic", "arithmetic_intensity"],
            "properties": {
                "ops": {
                    "type": "object",
                    "required": ["mults", "adds", "total"],
                    "properties": {
                        "mults": {"type": "integer", "minimum": 0},
                        "adds": {"type": "integer", "minimum": 0},
                        "total": {"type": "integer", "minimum": 0},
                    },
                },
                "traffic": {
                    "type": "object",
                    "required": [
                        "ct_read", "ct_write", "key_read", "pt_read", "total",
                    ],
                },
                "arithmetic_intensity": {"type": "number"},
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "path", "depth", "start_us", "duration_us"],
                "properties": {
                    "name": {"type": "string"},
                    "path": {"type": "string"},
                    "depth": {"type": "integer", "minimum": 0},
                    "start_us": {"type": "number", "minimum": 0},
                    "duration_us": {"type": "number", "minimum": 0},
                    "ops": {"type": ["object", "null"]},
                    "traffic": {"type": ["object", "null"]},
                    "meta": {"type": "object"},
                },
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
        },
        "runtime": {"type": ["object", "null"]},
    },
}


# ----------------------------------------------------------------------
# Cost serialization helpers
# ----------------------------------------------------------------------
def ops_dict(ops: OpCount) -> Dict[str, int]:
    return {"mults": ops.mults, "adds": ops.adds, "total": ops.total}


def traffic_dict(traffic: MemTraffic) -> Dict[str, int]:
    return {
        "ct_read": traffic.ct_read,
        "ct_write": traffic.ct_write,
        "key_read": traffic.key_read,
        "pt_read": traffic.pt_read,
        "total": traffic.total,
    }


def cost_dict(cost: CostReport) -> Dict[str, Any]:
    return {
        "ops": ops_dict(cost.ops),
        "traffic": traffic_dict(cost.traffic),
        "arithmetic_intensity": cost.arithmetic_intensity,
    }


def _json_safe(value: Any) -> Any:
    """Coerce span metadata to JSON-serializable values.

    Dict entries are emitted in sorted key order so the rendered report
    never depends on dict construction order (callers assemble config
    and metadata dicts along different code paths).
    """
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        return {str(k): _json_safe(v) for k, v in items}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def to_chrome_trace(
    tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Render a tracer's span forest as a Chrome trace-event document."""
    spans = list(tracer.spans())
    origin = min((s.start for s in spans), default=0.0)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for span in spans:
        args: Dict[str, Any] = _json_safe(span.meta)
        if span.cost is not None:
            args["ops"] = span.cost.ops.total
            args["bytes"] = span.cost.traffic.total
            args["cost"] = cost_dict(span.cost)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": span.name,
                "cat": "repro",
                "ts": max(0.0, (span.start - origin) * 1e6),
                "dur": max(0.0, span.duration * 1e6),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": _json_safe(metadata or {}),
    }


def write_chrome_trace(
    tracer, path: str, metadata: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, metadata), handle, indent=1)


# ----------------------------------------------------------------------
# Flat text profile
# ----------------------------------------------------------------------
def render_flat_profile(tracer) -> str:
    """Spans aggregated by name, CostLedger.render style.

    Wall time sums each span's own (inclusive) duration; Gops/GB/AI come
    from *exclusive* costs so the column totals match the model exactly.
    """
    aggregated: Dict[str, Dict[str, Any]] = {}
    for span in tracer.spans():
        row = aggregated.setdefault(
            span.name, {"calls": 0, "seconds": 0.0, "cost": None}
        )
        row["calls"] += 1
        row["seconds"] += span.duration
        if span.cost is not None:
            row["cost"] = (
                span.cost if row["cost"] is None else row["cost"] + span.cost
            )
    total = tracer.total_cost()
    total = total if total is not None else CostReport()

    header = (
        f"{'Span':28} {'Calls':>6} {'Wall ms':>9} {'Gops':>9} {'GB':>8} "
        f"{'AI':>6} {'Ops%':>7} {'GB%':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, row in aggregated.items():
        label = name if len(name) <= 28 else name[:27] + "…"
        cost = row["cost"]
        if cost is None:
            lines.append(
                f"{label:28} {row['calls']:6d} {row['seconds'] * 1e3:9.3f} "
                f"{'-':>9} {'-':>8} {'-':>6} {'-':>7} {'-':>7}"
            )
            continue
        ops_share = (
            cost.ops.total / total.ops.total if total.ops.total else 0.0
        )
        traffic_share = (
            cost.traffic.total / total.traffic.total
            if total.traffic.total
            else 0.0
        )
        lines.append(
            f"{label:28} {row['calls']:6d} {row['seconds'] * 1e3:9.3f} "
            f"{cost.giga_ops():9.2f} {cost.gigabytes():8.2f} "
            f"{cost.arithmetic_intensity:6.2f} {ops_share:7.1%} "
            f"{traffic_share:7.1%}"
        )
    lines.append("-" * len(header))
    wall = sum(root.duration for root in tracer.roots)
    lines.append(
        f"{'Total':28} {len(aggregated):6d} {wall * 1e3:9.3f} "
        f"{total.giga_ops():9.2f} {total.gigabytes():8.2f} "
        f"{total.arithmetic_intensity:6.2f} {1.0 if total.ops.total else 0.0:7.1%} "
        f"{1.0 if total.traffic.total else 0.0:7.1%}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Roofline attribution
# ----------------------------------------------------------------------
def attribute_runtime(tracer, design):
    """Annotate every costed span with its roofline estimate on ``design``.

    Each span gets ``compute_seconds`` / ``memory_seconds`` /
    ``roofline_seconds`` / ``bound`` metadata computed from its *inclusive*
    cost.  Returns the whole-trace :class:`~repro.hardware.runtime
    .RuntimeEstimate`, or None if no span recorded a cost.
    """
    from repro.hardware.runtime import estimate_runtime

    for span in tracer.spans():
        cost = span.total_cost()
        if cost is None:
            continue
        estimate = estimate_runtime(cost, design)
        span.annotate(
            design=design.name,
            compute_seconds=estimate.compute_seconds,
            memory_seconds=estimate.memory_seconds,
            roofline_seconds=estimate.seconds,
            bound=estimate.bound,
        )
    overall = tracer.total_cost()
    return estimate_runtime(overall, design) if overall is not None else None


# ----------------------------------------------------------------------
# run_report.json
# ----------------------------------------------------------------------
def build_run_report(
    tracer,
    registry=None,
    command: str = "",
    workload: str = "",
    params: Optional[str] = None,
    config: Optional[Dict[str, Any]] = None,
    runtime: Optional[Dict[str, Any]] = None,
    provenance: Optional[Dict[str, Any]] = None,
    resources: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the stable machine-readable summary of one traced run.

    ``provenance`` defaults to the current process's block
    (:func:`repro.obs.events.provenance`) so every emitted report is
    attributable to a commit; pass an explicit block to override.
    ``resources`` is the optional host-resource summary
    (:func:`repro.obs.profiler.run_resource_summary`).
    """
    spans_out: List[Dict[str, Any]] = []
    spans = list(tracer.spans())
    origin = min((s.start for s in spans), default=0.0)
    paths = compute_span_paths((s.name, s.depth) for s in spans)
    for span, path in zip(spans, paths):
        spans_out.append(
            {
                "name": span.name,
                "path": path,
                "depth": span.depth,
                "start_us": max(0.0, (span.start - origin) * 1e6),
                "duration_us": max(0.0, span.duration * 1e6),
                "ops": ops_dict(span.cost.ops) if span.cost is not None else None,
                "traffic": (
                    traffic_dict(span.cost.traffic)
                    if span.cost is not None
                    else None
                ),
                "meta": _json_safe(span.meta),
            }
        )
    total = tracer.total_cost()
    total = total if total is not None else CostReport()
    ai = total.arithmetic_intensity
    return {
        "schema": SCHEMA_ID,
        "command": command,
        "workload": workload,
        "params": params,
        "config": _json_safe(config) if config is not None else None,
        "wall_seconds": sum(root.duration for root in tracer.roots),
        "totals": {
            "ops": ops_dict(total.ops),
            "traffic": traffic_dict(total.traffic),
            # inf is not valid JSON; an all-compute run reports AI = -1.
            "arithmetic_intensity": ai if ai != float("inf") else -1.0,
        },
        "spans": spans_out,
        "metrics": (
            registry.snapshot()
            if registry is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        ),
        "runtime": _json_safe(runtime) if runtime is not None else None,
        "provenance": _json_safe(
            build_provenance() if provenance is None else provenance
        ),
        "resources": _json_safe(resources) if resources is not None else None,
    }


def validate_run_report(report: Any) -> None:
    """Structural validation of a run report; raises ValueError on mismatch.

    Mirrors :data:`RUN_REPORT_SCHEMA` without requiring ``jsonschema``.
    Accepts every id in :data:`ACCEPTED_SCHEMA_IDS`; the ``provenance``
    block is required from v1.1 on.
    """

    def fail(message: str) -> None:
        raise ValueError(f"invalid run report: {message}")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if report.get("schema") not in ACCEPTED_SCHEMA_IDS:
        fail(f"schema id {report.get('schema')!r} not in {ACCEPTED_SCHEMA_IDS!r}")
    if report["schema"] == SCHEMA_ID:
        validate_provenance(report.get("provenance"), fail)
    for key in ("command", "wall_seconds", "totals", "spans", "metrics"):
        if key not in report:
            fail(f"missing required key {key!r}")
    if not isinstance(report["command"], str):
        fail("command is not a string")
    wall = report["wall_seconds"]
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
        fail("wall_seconds is not a non-negative number")

    totals = report["totals"]
    if not isinstance(totals, dict):
        fail("totals is not an object")
    for section, keys in (
        ("ops", ("mults", "adds", "total")),
        ("traffic", ("ct_read", "ct_write", "key_read", "pt_read", "total")),
    ):
        block = totals.get(section)
        if not isinstance(block, dict):
            fail(f"totals.{section} is not an object")
        for key in keys:
            value = block.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                fail(f"totals.{section}.{key} is not a non-negative integer")
    if "arithmetic_intensity" not in totals:
        fail("totals.arithmetic_intensity missing")

    spans = report["spans"]
    if not isinstance(spans, list):
        fail("spans is not an array")
    for index, span in enumerate(spans):
        if not isinstance(span, dict):
            fail(f"spans[{index}] is not an object")
        for key in ("name", "path", "depth", "start_us", "duration_us"):
            if key not in span:
                fail(f"spans[{index}] missing {key!r}")
        for key in ("name", "path"):
            if not isinstance(span[key], str):
                fail(f"spans[{index}].{key} is not a string")
        if not isinstance(span["depth"], int) or span["depth"] < 0:
            fail(f"spans[{index}].depth is not a non-negative integer")
        for key in ("start_us", "duration_us"):
            value = span[key]
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"spans[{index}].{key} is not a non-negative number")

    metrics = report["metrics"]
    if not isinstance(metrics, dict):
        fail("metrics is not an object")
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(key), dict):
            fail(f"metrics.{key} is not an object")
