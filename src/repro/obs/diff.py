"""Differential cost attribution between two traced runs.

The paper's whole argument is a sequence of *deltas* — Figures 2/3 report
per-optimization DRAM-traffic reductions, Table 6 compares designs.  This
module turns two ``run_report.json`` documents (see
:func:`repro.obs.export.build_run_report`) into one ``cost_diff.json``:

* spans are aligned **by path** (names joined with ``/``, repeated
  siblings disambiguated with ``#k`` — :func:`~repro.obs.export
  .compute_span_paths`), with *rename tolerance*: unmatched siblings
  under an aligned parent are paired positionally and flagged
  ``renamed`` so a relabeled phase still diffs against its counterpart;
* every aligned pair carries the delta of its exclusive op counts and
  per-stream DRAM traffic (``ct_read`` / ``ct_write`` / ``key_read`` /
  ``pt_read``) plus arithmetic intensity, and spans present in only one
  run appear as ``added`` / ``removed`` with their full cost as delta;
* metric counters are diffed by name so cache-fit decisions and NTT
  invocation counts are attributable too;
* the result renders as a sorted attribution table
  (:func:`render_attribution_table`), a Chrome-trace overlay with both
  runs side by side (:func:`build_overlay_trace`), and a validated
  machine-readable document (schema id ``repro.obs.cost_diff/v1``).

Wall-clock numbers ride along for context but never enter the
``identical`` verdict — the analytical cost model is exact integer
arithmetic, timing is not.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import (
    ACCEPTED_SCHEMA_IDS as ACCEPTED_RUN_REPORT_SCHEMA_IDS,
)
from repro.obs.export import compute_span_paths

SCHEMA_ID = "repro.obs.cost_diff/v1"

#: Schema id stamped into the Chrome-trace overlay's ``otherData`` block.
OVERLAY_SCHEMA_ID = "repro.obs.diff_overlay/v1"

#: DRAM traffic streams, in the paper's Figure 2/3 breakdown order.
STREAMS = ("ct_read", "ct_write", "key_read", "pt_read")
_OPS_KEYS = ("mults", "adds", "total")
_TRAFFIC_KEYS = STREAMS + ("total",)
_STATUSES = ("matched", "renamed", "added", "removed")

#: JSON-Schema (draft-07) for cost_diff.json; :func:`validate_cost_diff`
#: performs the same structural checks without the dependency.
COST_DIFF_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "repro.obs cost diff",
    "type": "object",
    "required": ["schema", "base", "other", "identical", "totals", "spans", "metrics"],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "base": {"$ref": "#/definitions/run_summary"},
        "other": {"$ref": "#/definitions/run_summary"},
        "identical": {"type": "boolean"},
        "totals": {
            "type": "object",
            "required": ["base", "other", "delta"],
            "properties": {
                "base": {"type": "object"},
                "other": {"type": "object"},
                "delta": {
                    "type": "object",
                    "required": ["ops", "traffic", "arithmetic_intensity"],
                },
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "path", "status", "base_name", "other_name",
                    "ops", "traffic", "traffic_share", "duration_us",
                ],
                "properties": {
                    "path": {"type": "string"},
                    "status": {"enum": list(_STATUSES)},
                    "base_name": {"type": ["string", "null"]},
                    "other_name": {"type": ["string", "null"]},
                    "ops": {"type": "object"},
                    "traffic": {"type": "object"},
                    "arithmetic_intensity": {"type": "object"},
                    "traffic_share": {"type": "number"},
                    "duration_us": {"type": "object"},
                },
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters"],
            "properties": {"counters": {"type": "object"}},
        },
    },
    "definitions": {
        "run_summary": {
            "type": "object",
            "required": ["command", "workload", "wall_seconds"],
            "properties": {
                "command": {"type": "string"},
                "workload": {"type": "string"},
                "params": {"type": ["string", "null"]},
                "config": {"type": ["object", "null"]},
                "wall_seconds": {"type": "number"},
            },
        },
    },
}


class WorkloadMismatchError(ValueError):
    """Raised when two run reports describe different workloads."""


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
def _check_report(report: Any, which: str) -> None:
    if not isinstance(report, dict) or "spans" not in report:
        raise ValueError(f"{which} is not a run report (no spans)")
    schema = report.get("schema")
    if schema not in ACCEPTED_RUN_REPORT_SCHEMA_IDS:
        raise ValueError(
            f"{which} has schema {schema!r}, expected one of "
            f"{ACCEPTED_RUN_REPORT_SCHEMA_IDS!r}"
        )


def _run_summary(report: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "command": report.get("command", ""),
        "workload": report.get("workload", ""),
        "params": report.get("params"),
        "config": report.get("config"),
        "wall_seconds": report.get("wall_seconds", 0.0),
    }


def _zeros(keys: Tuple[str, ...]) -> Dict[str, int]:
    return {key: 0 for key in keys}


def _block(span: Optional[Dict[str, Any]], field: str, keys) -> Dict[str, int]:
    """A span's ops/traffic block, zero-filled for container/absent spans."""
    block = (span or {}).get(field) or {}
    return {key: int(block.get(key, 0)) for key in keys}


def _ai(ops_total: int, traffic_total: int) -> float:
    """Arithmetic intensity with the run-report convention: ∞ → -1.0."""
    if traffic_total == 0:
        return -1.0 if ops_total else 0.0
    return ops_total / traffic_total


# ----------------------------------------------------------------------
# Span-forest alignment
# ----------------------------------------------------------------------
def _build_forest(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reconstruct the span tree from the flat pre-order report list."""
    roots: List[Dict[str, Any]] = []
    stack: List[Dict[str, Any]] = []
    for index, span in enumerate(spans):
        depth = span.get("depth", 0)
        if depth > len(stack):
            raise ValueError(
                f"spans[{index}] at depth {depth} does not follow its parent"
            )
        del stack[depth:]
        node = {"span": span, "children": []}
        (stack[-1]["children"] if stack else roots).append(node)
        stack.append(node)
    return roots


def _sibling_keys(nodes: List[Dict[str, Any]]) -> List[Tuple[str, int]]:
    """(name, occurrence) key per node — the per-parent alignment identity."""
    counts: Dict[str, int] = {}
    keys = []
    for node in nodes:
        name = node["span"]["name"]
        occurrence = counts.get(name, 0)
        counts[name] = occurrence + 1
        keys.append((name, occurrence))
    return keys


def _label(name: str, occurrence: int) -> str:
    return name if occurrence == 0 else f"{name}#{occurrence + 1}"


def _align_siblings(
    base_nodes: List[Dict[str, Any]],
    other_nodes: List[Dict[str, Any]],
    parent_path: str,
    rename_tolerance: bool,
    entries: List[Dict[str, Any]],
) -> None:
    """Align two sibling lists and recurse into aligned pairs."""
    base_keys = _sibling_keys(base_nodes)
    other_keys = _sibling_keys(other_nodes)
    other_by_key = dict(zip(other_keys, other_nodes))

    pairs: List[Tuple[Optional[dict], Optional[dict], Tuple[str, int], bool]] = []
    matched_other = set()
    unmatched_base: List[Tuple[dict, Tuple[str, int]]] = []
    for node, key in zip(base_nodes, base_keys):
        if key in other_by_key:
            pairs.append((node, other_by_key[key], key, False))
            matched_other.add(key)
        else:
            unmatched_base.append((node, key))
    unmatched_other = [
        (node, key)
        for node, key in zip(other_nodes, other_keys)
        if key not in matched_other
    ]

    if rename_tolerance:
        # Pair leftover siblings positionally: a span that merely changed
        # its label still occupies the same structural slot.
        paired = min(len(unmatched_base), len(unmatched_other))
        for i in range(paired):
            base_node, base_key = unmatched_base[i]
            other_node, _ = unmatched_other[i]
            pairs.append((base_node, other_node, base_key, True))
        unmatched_base = unmatched_base[paired:]
        unmatched_other = unmatched_other[paired:]

    for node, key in unmatched_base:
        pairs.append((node, None, key, False))
    for node, key in unmatched_other:
        pairs.append((None, node, key, False))

    for base_node, other_node, key, renamed in pairs:
        label = _label(*key)
        path = f"{parent_path}/{label}" if parent_path else label
        entries.append(_span_entry(path, base_node, other_node, renamed))
        _align_siblings(
            base_node["children"] if base_node else [],
            other_node["children"] if other_node else [],
            path,
            rename_tolerance,
            entries,
        )


def _span_entry(
    path: str,
    base_node: Optional[Dict[str, Any]],
    other_node: Optional[Dict[str, Any]],
    renamed: bool,
) -> Dict[str, Any]:
    base_span = base_node["span"] if base_node else None
    other_span = other_node["span"] if other_node else None
    if base_span is None:
        status = "added"
    elif other_span is None:
        status = "removed"
    else:
        status = "renamed" if renamed else "matched"

    base_ops = _block(base_span, "ops", _OPS_KEYS)
    other_ops = _block(other_span, "ops", _OPS_KEYS)
    base_traffic = _block(base_span, "traffic", _TRAFFIC_KEYS)
    other_traffic = _block(other_span, "traffic", _TRAFFIC_KEYS)
    base_us = float((base_span or {}).get("duration_us", 0.0))
    other_us = float((other_span or {}).get("duration_us", 0.0))
    return {
        "path": path,
        "status": status,
        "base_name": base_span["name"] if base_span else None,
        "other_name": other_span["name"] if other_span else None,
        "ops": {
            "base": base_ops,
            "other": other_ops,
            "delta": {k: other_ops[k] - base_ops[k] for k in _OPS_KEYS},
        },
        "traffic": {
            "base": base_traffic,
            "other": other_traffic,
            "delta": {
                k: other_traffic[k] - base_traffic[k] for k in _TRAFFIC_KEYS
            },
        },
        "arithmetic_intensity": {
            "base": _ai(base_ops["total"], base_traffic["total"]),
            "other": _ai(other_ops["total"], other_traffic["total"]),
        },
        "traffic_share": 0.0,  # filled in once all entries exist
        "duration_us": {
            "base": base_us,
            "other": other_us,
            "delta": other_us - base_us,
        },
    }


def _is_changed(entry: Dict[str, Any]) -> bool:
    if entry["status"] != "matched":
        return True
    return any(entry["ops"]["delta"].values()) or any(
        entry["traffic"]["delta"].values()
    )


# ----------------------------------------------------------------------
# The diff itself
# ----------------------------------------------------------------------
def diff_run_reports(
    base: Dict[str, Any],
    other: Dict[str, Any],
    *,
    rename_tolerance: bool = True,
    require_same_workload: bool = True,
) -> Dict[str, Any]:
    """Diff two run reports into a ``cost_diff.json`` document.

    Only *changed* spans appear in ``spans`` (sorted by traffic-delta
    magnitude, then ops delta, then path) — the diff of two identical
    runs is empty.  Raises :class:`WorkloadMismatchError` when the
    reports describe different workloads unless
    ``require_same_workload=False``.
    """
    _check_report(base, "base")
    _check_report(other, "other")
    base_workload = base.get("workload", "")
    other_workload = other.get("workload", "")
    if require_same_workload and base_workload != other_workload:
        raise WorkloadMismatchError(
            f"cannot diff different workloads: base ran {base_workload!r}, "
            f"other ran {other_workload!r} (use --force / "
            f"require_same_workload=False to diff anyway)"
        )

    entries: List[Dict[str, Any]] = []
    _align_siblings(
        _build_forest(base["spans"]),
        _build_forest(other["spans"]),
        "",
        rename_tolerance,
        entries,
    )
    entries = [entry for entry in entries if _is_changed(entry)]

    magnitude = sum(abs(e["traffic"]["delta"]["total"]) for e in entries)
    for entry in entries:
        entry["traffic_share"] = (
            abs(entry["traffic"]["delta"]["total"]) / magnitude
            if magnitude
            else 0.0
        )
    entries.sort(
        key=lambda e: (
            -abs(e["traffic"]["delta"]["total"]),
            -abs(e["ops"]["delta"]["total"]),
            e["path"],
        )
    )

    base_totals = base.get("totals", {})
    other_totals = other.get("totals", {})
    delta_ops = {
        k: _block(other_totals, "ops", _OPS_KEYS)[k]
        - _block(base_totals, "ops", _OPS_KEYS)[k]
        for k in _OPS_KEYS
    }
    delta_traffic = {
        k: _block(other_totals, "traffic", _TRAFFIC_KEYS)[k]
        - _block(base_totals, "traffic", _TRAFFIC_KEYS)[k]
        for k in _TRAFFIC_KEYS
    }

    base_counters = (base.get("metrics") or {}).get("counters") or {}
    other_counters = (other.get("metrics") or {}).get("counters") or {}
    counter_deltas = {
        name: {
            "base": int(base_counters.get(name, 0)),
            "other": int(other_counters.get(name, 0)),
            "delta": int(other_counters.get(name, 0))
            - int(base_counters.get(name, 0)),
        }
        for name in sorted(set(base_counters) | set(other_counters))
        if int(other_counters.get(name, 0)) != int(base_counters.get(name, 0))
    }

    identical = (
        not entries
        and not counter_deltas
        and not any(delta_ops.values())
        and not any(delta_traffic.values())
    )

    return {
        "schema": SCHEMA_ID,
        "base": _run_summary(base),
        "other": _run_summary(other),
        "identical": identical,
        "totals": {
            "base": base_totals,
            "other": other_totals,
            "delta": {
                "ops": delta_ops,
                "traffic": delta_traffic,
                "arithmetic_intensity": float(
                    other_totals.get("arithmetic_intensity", 0.0)
                )
                - float(base_totals.get("arithmetic_intensity", 0.0)),
                "wall_seconds": float(other.get("wall_seconds", 0.0))
                - float(base.get("wall_seconds", 0.0)),
            },
        },
        "spans": entries,
        "metrics": {"counters": counter_deltas},
    }


def spans_with_paths(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The report's spans, with ``path`` computed when absent (old reports)."""
    spans = report["spans"]
    if all("path" in span for span in spans):
        return spans
    paths = compute_span_paths((s["name"], s.get("depth", 0)) for s in spans)
    return [dict(span, path=path) for span, path in zip(spans, paths)]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_bytes(delta: int) -> str:
    sign = "+" if delta > 0 else "-" if delta < 0 else " "
    value = abs(delta)
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if value >= scale:
            return f"{sign}{value / scale:.2f} {unit}"
    return f"{sign}{value} B"


def _fmt_ops(delta: int) -> str:
    sign = "+" if delta > 0 else "-" if delta < 0 else " "
    value = abs(delta)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{sign}{value / scale:.2f}{unit}"
    return f"{sign}{value}"


def render_attribution_table(diff: Dict[str, Any], top: Optional[int] = 20) -> str:
    """Human-readable attribution: streams, spans (sorted), counters."""
    base, other = diff["base"], diff["other"]
    lines = [
        f"cost diff: {base['workload'] or base['command'] or 'base'}"
        f" (base) vs {other['workload'] or other['command'] or 'other'} (other)"
    ]
    if diff["identical"]:
        lines.append("runs are analytically identical — no cost deltas")
        return "\n".join(lines)

    totals = diff["totals"]
    lines.append("")
    header = f"{'Stream':10} {'base':>14} {'other':>14} {'delta':>12} {'rel':>8}"
    lines += [header, "-" * len(header)]
    base_traffic = _block(totals["base"], "traffic", _TRAFFIC_KEYS)
    other_traffic = _block(totals["other"], "traffic", _TRAFFIC_KEYS)
    for stream in _TRAFFIC_KEYS:
        b, o = base_traffic[stream], other_traffic[stream]
        rel = f"{(o - b) / b:+.1%}" if b else ("n/a" if o else "0.0%")
        lines.append(
            f"{stream:10} {b:>14,} {o:>14,} {_fmt_bytes(o - b):>12} {rel:>8}"
        )
    delta_ops = totals["delta"]["ops"]["total"]
    lines.append(f"{'ops':10} {'':>14} {'':>14} {_fmt_ops(delta_ops):>12}")

    entries = diff["spans"]
    if entries:
        lines.append("")
        header = (
            f"{'Span path':44} {'Δbytes':>12} {'Δops':>10} "
            f"{'share':>7}  {'status':8}"
        )
        lines += [header, "-" * len(header)]
        shown = entries if top is None else entries[:top]
        for entry in shown:
            path = entry["path"]
            if len(path) > 44:
                path = "…" + path[-43:]
            lines.append(
                f"{path:44} {_fmt_bytes(entry['traffic']['delta']['total']):>12} "
                f"{_fmt_ops(entry['ops']['delta']['total']):>10} "
                f"{entry['traffic_share']:>7.1%}  {entry['status']:8}"
            )
        if top is not None and len(entries) > top:
            lines.append(f"… {len(entries) - top} more changed spans")

    counters = diff["metrics"]["counters"]
    if counters:
        lines.append("")
        header = f"{'Counter':44} {'base':>10} {'other':>10} {'delta':>8}"
        lines += [header, "-" * len(header)]
        for name, row in counters.items():
            label = name if len(name) <= 44 else "…" + name[-43:]
            lines.append(
                f"{label:44} {row['base']:>10} {row['other']:>10} "
                f"{row['delta']:>+8}"
            )
    return "\n".join(lines)


def build_overlay_trace(
    base: Dict[str, Any], other: Dict[str, Any], diff: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Chrome-trace overlay: base run on pid 1, other on pid 2.

    Aligned spans in the *other* process carry their cost delta in
    ``args.delta``, so hovering a span in Perfetto shows what changed.
    """
    if diff is None:
        diff = diff_run_reports(base, other, require_same_workload=False)
    delta_by_path = {entry["path"]: entry for entry in diff["spans"]}
    events: List[Dict[str, Any]] = []
    for pid, label, report in ((1, "base", base), (2, "other", other)):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "name": "process_name",
                "args": {"name": f"{label}: {report.get('workload', '')}"},
            }
        )
        for span in spans_with_paths(report):
            args: Dict[str, Any] = {"path": span["path"]}
            if span.get("ops"):
                args["ops"] = span["ops"]["total"]
            if span.get("traffic"):
                args["bytes"] = span["traffic"]["total"]
            entry = delta_by_path.get(span["path"])
            if pid == 2 and entry is not None:
                args["delta"] = {
                    "ops": entry["ops"]["delta"]["total"],
                    "bytes": entry["traffic"]["delta"]["total"],
                    "status": entry["status"],
                }
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "name": span["name"],
                    "cat": "repro-diff",
                    "ts": float(span.get("start_us", 0.0)),
                    "dur": float(span.get("duration_us", 0.0)),
                    "args": args,
                }
            )
    overlay = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": OVERLAY_SCHEMA_ID,
            "identical": diff["identical"],
        },
    }
    validate_diff_overlay(overlay)
    return overlay


def validate_diff_overlay(payload: Any) -> None:
    """Structural validation of an overlay trace; raises ValueError."""
    if not isinstance(payload, dict):
        raise ValueError("diff overlay must be a JSON object")
    other = payload.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != OVERLAY_SCHEMA_ID:
        raise ValueError(
            "diff overlay otherData.schema "
            f"{other.get('schema') if isinstance(other, dict) else None!r} "
            f"!= {OVERLAY_SCHEMA_ID!r}"
        )
    if not isinstance(other.get("identical"), bool):
        raise ValueError("diff overlay otherData.identical must be a bool")
    if not isinstance(payload.get("traceEvents"), list):
        raise ValueError("diff overlay traceEvents must be a list")


def write_cost_diff(diff: Dict[str, Any], path: str) -> None:
    validate_cost_diff(diff)
    with open(path, "w") as handle:
        json.dump(diff, handle, indent=1, sort_keys=True)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_cost_diff(diff: Any) -> None:
    """Structural validation; raises ValueError on mismatch.

    Mirrors :data:`COST_DIFF_SCHEMA` without requiring ``jsonschema`` —
    the same dependency-free pattern as
    :func:`repro.obs.export.validate_run_report`.
    """

    def fail(message: str) -> None:
        raise ValueError(f"invalid cost diff: {message}")

    if not isinstance(diff, dict):
        fail("top level is not an object")
    if diff.get("schema") != SCHEMA_ID:
        fail(f"schema id {diff.get('schema')!r} != {SCHEMA_ID!r}")
    for key in ("base", "other", "identical", "totals", "spans", "metrics"):
        if key not in diff:
            fail(f"missing required key {key!r}")
    if not isinstance(diff["identical"], bool):
        fail("identical is not a boolean")
    for which in ("base", "other"):
        summary = diff[which]
        if not isinstance(summary, dict):
            fail(f"{which} is not an object")
        for key in ("command", "workload", "wall_seconds"):
            if key not in summary:
                fail(f"{which}.{key} missing")
        if not isinstance(summary["workload"], str):
            fail(f"{which}.workload is not a string")

    totals = diff["totals"]
    if not isinstance(totals, dict):
        fail("totals is not an object")
    for key in ("base", "other", "delta"):
        if not isinstance(totals.get(key), dict):
            fail(f"totals.{key} is not an object")
    delta = totals["delta"]
    for section, keys in (("ops", _OPS_KEYS), ("traffic", _TRAFFIC_KEYS)):
        block = delta.get(section)
        if not isinstance(block, dict):
            fail(f"totals.delta.{section} is not an object")
        for key in keys:
            value = block.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"totals.delta.{section}.{key} is not an integer")
    if "arithmetic_intensity" not in delta:
        fail("totals.delta.arithmetic_intensity missing")

    spans = diff["spans"]
    if not isinstance(spans, list):
        fail("spans is not an array")
    for index, entry in enumerate(spans):
        if not isinstance(entry, dict):
            fail(f"spans[{index}] is not an object")
        for key in (
            "path", "status", "base_name", "other_name",
            "ops", "traffic", "traffic_share", "duration_us",
        ):
            if key not in entry:
                fail(f"spans[{index}] missing {key!r}")
        if not isinstance(entry["path"], str):
            fail(f"spans[{index}].path is not a string")
        if entry["status"] not in _STATUSES:
            fail(f"spans[{index}].status {entry['status']!r} not in {_STATUSES}")
        for section, keys in (("ops", _OPS_KEYS), ("traffic", _TRAFFIC_KEYS)):
            block = entry[section]
            if not isinstance(block, dict):
                fail(f"spans[{index}].{section} is not an object")
            for side in ("base", "other", "delta"):
                side_block = block.get(side)
                if not isinstance(side_block, dict):
                    fail(f"spans[{index}].{section}.{side} is not an object")
                for key in keys:
                    value = side_block.get(key)
                    if not isinstance(value, int) or isinstance(value, bool):
                        fail(
                            f"spans[{index}].{section}.{side}.{key} "
                            f"is not an integer"
                        )
        share = entry["traffic_share"]
        if not isinstance(share, (int, float)) or not 0 <= share <= 1:
            fail(f"spans[{index}].traffic_share is not in [0, 1]")

    metrics = diff["metrics"]
    if not isinstance(metrics, dict) or not isinstance(
        metrics.get("counters"), dict
    ):
        fail("metrics.counters is not an object")
    for name, row in metrics["counters"].items():
        if not isinstance(row, dict) or not all(
            isinstance(row.get(k), int) for k in ("base", "other", "delta")
        ):
            fail(f"metrics.counters[{name!r}] is malformed")
