"""Baseline snapshot store and cost-regression comparison.

A *baseline* is a committed ``run_report.json`` (see
:mod:`repro.obs.export`) for one bench workload — one file per
workload × design × cache size under ``benchmarks/baselines/``.  Before
a baseline is written it is **normalized**: wall-clock fields are zeroed
so the committed fixture is deterministic (the analytical cost model is
exact integer arithmetic; timing is machine noise and is tracked in the
``BENCH_*.json`` trajectories instead, never gated).

:func:`compare_reports` gates the analytical totals — op counts and every
DRAM traffic stream — against a configurable :class:`Tolerance` and
attributes any regression to the spans that caused it via
:mod:`repro.obs.diff`.
"""

from __future__ import annotations

import copy
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.diff import diff_run_reports, render_attribution_table
from repro.obs.export import validate_run_report

#: Default directory of committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

#: (label, section, key) triples gated by :func:`compare_reports`.
GATED_TOTALS = (
    ("ops.mults", "ops", "mults"),
    ("ops.adds", "ops", "adds"),
    ("ops.total", "ops", "total"),
    ("traffic.ct_read", "traffic", "ct_read"),
    ("traffic.ct_write", "traffic", "ct_write"),
    ("traffic.key_read", "traffic", "key_read"),
    ("traffic.pt_read", "traffic", "pt_read"),
    ("traffic.total", "traffic", "total"),
)


def baseline_key(
    workload: str,
    params: str,
    config: str,
    cache_mb: Optional[float] = None,
    design: Optional[str] = None,
) -> str:
    """Filename-safe identity of one baseline (workload × design × cache)."""
    parts = [workload, params, config]
    parts.append(f"cache{cache_mb:g}" if cache_mb else "nocache")
    if design:
        parts.append(design)
    slug = "__".join(parts).lower()
    return re.sub(r"[^a-z0-9_.-]+", "-", slug)


def normalize_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy with host-measurement fields removed (deterministic fixture).

    Wall-clock fields are zeroed and resource samples (run-level
    ``resources`` block, per-span ``meta.resource``) dropped — both are
    machine noise.  Gauges under the ``host.`` prefix are zeroed for the
    same reason: that prefix is the convention for host measurements
    (engine wall-clock, speedup ratios) recorded by workloads such as the
    ``kernels`` micro-bench; the live values are tracked in the
    ``BENCH_*.json`` trajectories instead.  The ``provenance`` block is
    kept: it is what makes a committed baseline attributable to the
    commit that produced it.
    """
    normalized = copy.deepcopy(report)
    normalized["wall_seconds"] = 0.0
    if "resources" in normalized:
        normalized["resources"] = None
    for span in normalized.get("spans", ()):
        span["start_us"] = 0.0
        span["duration_us"] = 0.0
        meta = span.get("meta")
        if isinstance(meta, dict):
            meta.pop("resource", None)
    metrics = normalized.get("metrics")
    if isinstance(metrics, dict):
        gauges = metrics.get("gauges")
        if isinstance(gauges, dict):
            for name in gauges:
                if name.startswith("host."):
                    gauges[name] = 0.0
    return normalized


class BaselineStore:
    """Load/save normalized run reports under a baselines directory."""

    def __init__(self, root: str = DEFAULT_BASELINE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def exists(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        if not path.is_file():
            return None
        with open(path) as handle:
            report = json.load(handle)
        validate_run_report(report)
        return report

    def save(self, key: str, report: Dict[str, Any]) -> Path:
        normalized = normalize_report(report)
        validate_run_report(normalized)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        with open(path, "w") as handle:
            json.dump(normalized, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path

    def keys(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))


@dataclass(frozen=True)
class Tolerance:
    """Regression slack: a cost may grow by ``max(absolute, base*relative)``.

    Both default to zero — the analytical model is deterministic, so any
    growth is a real regression unless explicitly tolerated.
    """

    relative: float = 0.0
    absolute: float = 0.0

    def __post_init__(self) -> None:
        if self.relative < 0 or self.absolute < 0:
            raise ValueError("tolerances must be non-negative")

    def slack(self, base: float) -> float:
        return max(self.absolute, base * self.relative)

    def allows(self, base: float, current: float) -> bool:
        return current <= base + self.slack(base)


@dataclass(frozen=True)
class Regression:
    """One gated metric that grew beyond tolerance."""

    metric: str
    base: int
    current: int
    allowed: float

    def describe(self) -> str:
        rel = (self.current - self.base) / self.base if self.base else float("inf")
        return (
            f"{self.metric}: {self.base:,} -> {self.current:,} "
            f"({rel:+.2%}, allowed <= {self.allowed:,.0f})"
        )


@dataclass
class BenchComparison:
    """Outcome of comparing one run against its committed baseline."""

    workload: str
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    diff: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        if self.ok:
            if self.improvements:
                return (
                    f"{self.workload}: ok "
                    f"(improved: {', '.join(self.improvements)})"
                )
            return f"{self.workload}: ok (costs unchanged)"
        lines = [f"{self.workload}: REGRESSION"]
        lines += [f"  {r.describe()}" for r in self.regressions]
        if self.diff is not None:
            lines.append(render_attribution_table(self.diff, top=10))
        return "\n".join(lines)


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: Tolerance = Tolerance(),
) -> BenchComparison:
    """Gate ``current`` against ``baseline`` on every analytical total.

    Wall-clock time is deliberately not gated (report-only); the span
    attribution of any delta comes from :func:`~repro.obs.diff
    .diff_run_reports` and is included in the result for rendering.
    """
    base_totals = baseline.get("totals", {})
    cur_totals = current.get("totals", {})
    regressions: List[Regression] = []
    improvements: List[str] = []
    for label, section, key in GATED_TOTALS:
        base_value = int(base_totals.get(section, {}).get(key, 0))
        cur_value = int(cur_totals.get(section, {}).get(key, 0))
        if not tolerance.allows(base_value, cur_value):
            regressions.append(
                Regression(
                    metric=label,
                    base=base_value,
                    current=cur_value,
                    allowed=base_value + tolerance.slack(base_value),
                )
            )
        elif cur_value < base_value:
            improvements.append(label)

    comparison = BenchComparison(
        workload=current.get("workload", "") or baseline.get("workload", ""),
        regressions=regressions,
        improvements=improvements,
    )
    diff = diff_run_reports(baseline, current, require_same_workload=False)
    if not diff["identical"]:
        comparison.diff = diff
    return comparison
