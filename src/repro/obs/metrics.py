"""Counters, gauges and histograms for model-internal event rates.

A :class:`MetricsRegistry` is a get-or-create namespace of named
instruments.  Instrumented call sites (cache-fit queries, NTT invocations,
evaluator key switches, ...) go through the module-level helpers in
:mod:`repro.obs.state`, which check a single enabled flag before touching
the registry — disabled metrics cost one boolean test per call site.
"""

from __future__ import annotations

from typing import Dict


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (e.g. current cache size, live limb count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming count/sum/min/max/mean of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, dict]:
        """JSON-ready view of every instrument (stable key order)."""
        return {
            "counters": self.counters(),
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )
