"""Structured event log (``repro.obs.events/v1``) and run provenance.

Two pieces every long-running surface shares:

* :func:`provenance` — the identity block stamped into every report the
  repo emits (run reports, sweep reports, memsim reports, bench
  trajectories): git commit, interpreter and numpy versions, platform,
  argv and an optional config fingerprint.  A regression found in CI is
  attributable to the commit that produced it, not just to "a run".
* :class:`EventLog` — a schema-versioned JSONL stream of run events.
  One process writes (the sweep *parent*; workers report in-band through
  chunk results), many may read: ``repro top`` tails the file to render
  in-flight progress and ``repro dash`` turns a finished stream into a
  standalone HTML dashboard.  Every line is self-describing (schema id,
  monotone sequence number, wall timestamp, type, payload) and flushed
  on write so live readers never see a torn line.

The validator mirrors its siblings (:func:`repro.obs.export
.validate_run_report`, :func:`repro.sweep.report.validate_sweep_report`):
structural checks, no ``jsonschema`` dependency.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Sequence

__all__ = [
    "EVENTS_SCHEMA_ID",
    "EventLog",
    "provenance",
    "read_events",
    "validate_events",
    "validate_provenance",
]

EVENTS_SCHEMA_ID = "repro.obs.events/v1"

#: Event types the sweep engine emits; the log accepts any type string.
RUN_START = "run_start"
SWEEP_START = "sweep_start"
CHUNK_COMPLETE = "chunk_complete"
SWEEP_END = "sweep_end"
RUN_END = "run_end"

#: Provenance keys that must always be present (and be strings).
_PROVENANCE_REQUIRED = ("git_sha", "python", "platform")

_git_cache: Optional[Dict[str, Any]] = None


def _git_describe() -> Dict[str, Any]:
    """``{git_sha, git_dirty}`` of the working tree, cached per process.

    Falls back to ``{"git_sha": "unknown", "git_dirty": None}`` outside a
    git checkout or when git is unavailable — provenance must never make
    a run fail.
    """
    global _git_cache
    if _git_cache is not None:
        return dict(_git_cache)
    sha = "unknown"
    dirty: Optional[bool] = None
    root = Path(__file__).resolve().parents[3]
    cwd = root if (root / ".git").exists() else Path.cwd()
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout
        dirty = bool(status.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    _git_cache = {"git_sha": sha, "git_dirty": dirty}
    return dict(_git_cache)


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        return None
    return str(numpy.__version__)


def provenance(
    argv: Optional[Sequence[str]] = None,
    config_fingerprint: Optional[str] = None,
) -> Dict[str, Any]:
    """The identity block stamped into every emitted report.

    Args:
        argv: command line recorded with the run (defaults to
            ``sys.argv``).
        config_fingerprint: optional stable hash of the run's
            configuration (e.g. a sweep spec fingerprint) so two runs of
            the same commit are still distinguishable by what they ran.
    """
    block = _git_describe()
    block.update(
        {
            "python": platform.python_version(),
            "numpy": _numpy_version(),
            "platform": platform.platform(),
            "argv": list(sys.argv if argv is None else argv),
            "config_fingerprint": config_fingerprint,
        }
    )
    return block


def validate_provenance(block: Any, fail: Callable[[str], None]) -> None:
    """Structural check of one provenance block (calls ``fail`` on error)."""
    if not isinstance(block, dict):
        fail("provenance is not an object")
        return
    for key in _PROVENANCE_REQUIRED:
        if not isinstance(block.get(key), str):
            fail(f"provenance.{key} is not a string")
    if not isinstance(block.get("argv"), list):
        fail("provenance.argv is not an array")


class EventLog:
    """Append-only JSONL event stream, one writer, flushed per line.

    The first emitted event should be ``run_start`` carrying the
    provenance block (:meth:`start` does this); readers treat that line
    as the stream header.  ``seq`` increases by one per line so a reader
    can detect truncation, and ``ts`` is wall time (``time.time``) so
    cross-process readers can compute rates.
    """

    def __init__(
        self,
        path: str,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self._clock = clock
        self._seq = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    def emit(self, type: str, data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Append one event line; returns the emitted event dict."""
        if self._handle is None:
            raise ValueError(f"event log {self.path!r} is closed")
        if not type:
            raise ValueError("event type must be non-empty")
        event = {
            "schema": EVENTS_SCHEMA_ID,
            "seq": self._seq,
            "ts": self._clock(),
            "type": type,
            "data": dict(data) if data else {},
        }
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        self._seq += 1
        return event

    def start(
        self,
        command: str,
        provenance_block: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Emit the ``run_start`` header (provenance + command)."""
        return self.emit(
            RUN_START,
            {
                "command": command,
                "provenance": (
                    provenance() if provenance_block is None else provenance_block
                ),
            },
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading and validation
# ----------------------------------------------------------------------
def read_events(path: str, strict: bool = True) -> List[Dict[str, Any]]:
    """Parse an events JSONL file.

    ``strict=True`` validates the whole stream; ``strict=False`` (the
    live-tailing mode of ``repro top``) drops a torn trailing line and
    validates what parsed.
    """
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if strict:
                    raise ValueError(
                        f"{path}:{number}: event line is not valid JSON"
                    ) from None
                break  # torn tail of a live file
    validate_events(events)
    return events


def validate_events(events: Any) -> None:
    """Structural validation of an event stream; raises ValueError."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid event stream: {message}")

    if not isinstance(events, list):
        fail("stream is not a list of events")
    for position, event in enumerate(events):
        where = f"events[{position}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        if event.get("schema") != EVENTS_SCHEMA_ID:
            fail(f"{where}.schema {event.get('schema')!r} != {EVENTS_SCHEMA_ID!r}")
        if event.get("seq") != position:
            fail(f"{where}.seq {event.get('seq')!r} is not the line position")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            fail(f"{where}.ts is not a non-negative number")
        if not isinstance(event.get("type"), str) or not event["type"]:
            fail(f"{where}.type is not a non-empty string")
        if not isinstance(event.get("data"), dict):
            fail(f"{where}.data is not an object")
    if events:
        first = events[0]
        if first["type"] != RUN_START:
            fail(f"first event is {first['type']!r}, expected {RUN_START!r}")
        validate_provenance(first["data"].get("provenance"), fail)
