"""Cross-process telemetry: capture, merge and graft span/metric state.

The PR-1 observability layer is process-local: a ``--jobs N`` sweep used
to produce a ``sweep:run`` span with **no children**, because each
worker's spans and metrics died with the worker.  This module closes that
gap with three operations:

* :func:`capture_snapshot` — freeze a worker-local
  :class:`~repro.obs.tracer.Tracer` + :class:`~repro.obs.metrics
  .MetricsRegistry` into a picklable :data:`TelemetrySnapshot` dict
  (schema id :data:`SNAPSHOT_VERSION`).  Span costs stay as the frozen
  :class:`~repro.perf.events.CostReport` dataclasses — exact integers,
  no JSON round-trip.
* :func:`merge_snapshots` — fold snapshots **in canonical chunk order**:
  span forests concatenate, counters sum, histograms combine their
  streaming moments, gauges take the last write.  Because the parent
  always merges in canonical order (never completion order), the merged
  telemetry is bit-identical between ``--jobs N`` and serial — the same
  determinism bar the engine sets for sweep *results*.
* :func:`graft_snapshot` — rebuild a snapshot's span dicts as real
  :class:`~repro.obs.tracer.Span` children of the parent tracer's
  current span, rebasing worker-local clocks onto the parent clock so
  durations stay meaningful.

:func:`strip_volatile` is the comparison companion: it removes the
fields of a run report that legitimately differ across schedulings
(wall-clock, resource samples, provenance, per-worker memo statistics)
so tests can assert the remainder is bit-identical across ``--jobs``.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "SNAPSHOT_VERSION",
    "capture_snapshot",
    "graft_snapshot",
    "merge_into_registry",
    "merge_snapshots",
    "strip_volatile",
    "validate_snapshot",
]

SNAPSHOT_VERSION = "repro.obs.telemetry/v1"

#: Metric names whose values depend on scheduling (worker count, chunk
#: boundaries, which worker saw a memo key first) rather than on what was
#: computed.  Stripped before cross-``--jobs`` bit-identity comparisons.
VOLATILE_METRIC_PREFIXES = ("sweep.chunks.", "sweep.memo.")
VOLATILE_METRIC_NAMES = frozenset(
    {"sweep.jobs", "sweep.worker_utilisation", "sweep.memo_hit_rate"}
)

#: Span meta keys whose values are host measurements, not model output.
VOLATILE_META_KEYS = frozenset({"resource"})


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _span_to_dict(span: Span, base: float) -> Dict[str, Any]:
    return {
        "name": span.name,
        "meta": dict(span.meta),
        "start": span.start - base,
        "end": (span.end - base) if span.end is not None else None,
        "cost": span.cost,
        "children": [_span_to_dict(child, base) for child in span.children],
    }


def capture_snapshot(tracer: Tracer, registry: MetricsRegistry) -> Dict[str, Any]:
    """Freeze a tracer + registry into a picklable snapshot dict.

    Span times are stored relative to the earliest root start, so the
    worker's absolute ``perf_counter`` origin (meaningless in another
    process) never leaves the worker.
    """
    roots = list(tracer.roots)
    base = min((span.start for span in roots), default=0.0)
    histograms: Dict[str, Dict[str, float]] = {}
    for name, hist in sorted(registry._histograms.items()):
        histograms[name] = {
            "count": hist.count,
            "total": hist.total,
            "min": hist.min,
            "max": hist.max,
        }
    return {
        "version": SNAPSHOT_VERSION,
        "spans": [_span_to_dict(span, base) for span in roots],
        "metrics": {
            "counters": registry.counters(),
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(registry._gauges.items())
            },
            "histograms": histograms,
        },
    }


def validate_snapshot(snapshot: Any) -> None:
    """Structural check of one snapshot; raises ValueError."""
    if not isinstance(snapshot, dict):
        raise ValueError("telemetry snapshot is not a dict")
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"telemetry snapshot version {snapshot.get('version')!r} "
            f"!= {SNAPSHOT_VERSION!r}"
        )
    if not isinstance(snapshot.get("spans"), list):
        raise ValueError("telemetry snapshot spans is not a list")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("telemetry snapshot metrics is not a dict")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            raise ValueError(f"telemetry snapshot metrics.{section} is not a dict")


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _merge_histogram(
    into: Dict[str, float], other: Mapping[str, float]
) -> Dict[str, float]:
    if not other.get("count"):
        return into
    if not into.get("count"):
        return dict(other)
    return {
        "count": into["count"] + other["count"],
        "total": into["total"] + other["total"],
        "min": min(into["min"], other["min"]),
        "max": max(into["max"], other["max"]),
    }


def merge_snapshots(snapshots: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots, **in the order given**, into one snapshot.

    The fold is associative, and because the caller supplies canonical
    chunk order the result is independent of which worker produced which
    snapshot or when it completed.  Counters and histogram moments sum;
    gauges are last-write-wins (matching :class:`Gauge` semantics);
    span forests concatenate.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    spans: List[Dict[str, Any]] = []
    for snapshot in snapshots:
        validate_snapshot(snapshot)
        spans.extend(copy.deepcopy(snapshot["spans"]))
        metrics = snapshot["metrics"]
        for name, value in metrics["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for name, value in metrics["gauges"].items():
            gauges[name] = value
        for name, moments in metrics["histograms"].items():
            histograms[name] = _merge_histogram(
                histograms.get(name, {"count": 0}), moments
            )
    return {
        "version": SNAPSHOT_VERSION,
        "spans": spans,
        "metrics": {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        },
    }


def merge_into_registry(
    snapshot: Mapping[str, Any], registry: MetricsRegistry
) -> None:
    """Fold a snapshot's metrics into a live registry."""
    validate_snapshot(snapshot)
    metrics = snapshot["metrics"]
    for name, value in metrics["counters"].items():
        registry.counter(name).inc(value)
    for name, value in metrics["gauges"].items():
        registry.gauge(name).set(value)
    for name, moments in metrics["histograms"].items():
        hist = registry.histogram(name)
        if moments.get("count"):
            hist.count += int(moments["count"])
            hist.total += moments["total"]
            hist.min = min(hist.min, moments["min"])
            hist.max = max(hist.max, moments["max"])


# ----------------------------------------------------------------------
# Graft
# ----------------------------------------------------------------------
def _dict_to_span(
    node: Mapping[str, Any], parent: Optional[Span], base: float
) -> Span:
    span = Span(node["name"], parent, node["meta"], start=base + node["start"])
    span.end = None if node["end"] is None else base + node["end"]
    span.cost = node["cost"]
    span.children = [
        _dict_to_span(child, span, base) for child in node["children"]
    ]
    return span

def graft_snapshot(snapshot: Mapping[str, Any], tracer: Tracer) -> List[Span]:
    """Rebuild a snapshot's spans as children of the tracer's current span.

    Worker-relative times are rebased onto the parent tracer's clock at
    graft time, so durations survive and the graft point orders after
    everything the parent already recorded.  Returns the grafted root
    spans.
    """
    validate_snapshot(snapshot)
    parent = tracer.current
    base = tracer._clock()
    grafted = [
        _dict_to_span(node, parent, base) for node in snapshot["spans"]
    ]
    target = parent.children if parent is not None else tracer.roots
    target.extend(grafted)
    return grafted


# ----------------------------------------------------------------------
# Volatile-field stripping (cross-``--jobs`` comparison)
# ----------------------------------------------------------------------
def _is_volatile_metric(name: str) -> bool:
    return name in VOLATILE_METRIC_NAMES or any(
        name.startswith(prefix) for prefix in VOLATILE_METRIC_PREFIXES
    )


def _strip_span_dict(span: Dict[str, Any]) -> None:
    span["start_us"] = 0
    span["duration_us"] = 0
    meta = span.get("meta")
    if isinstance(meta, dict):
        for key in VOLATILE_META_KEYS:
            meta.pop(key, None)
        if "jobs" in meta and span.get("name") == "sweep:run":
            meta["jobs"] = 0
    for child in span.get("children", ()):
        _strip_span_dict(child)


def _strip_metrics(metrics: Dict[str, Any]) -> None:
    for section in ("counters", "gauges", "histograms"):
        values = metrics.get(section)
        if isinstance(values, dict):
            for name in [n for n in values if _is_volatile_metric(n)]:
                del values[name]


def strip_volatile(report: Mapping[str, Any]) -> Dict[str, Any]:
    """A deep copy of a run report with scheduling-dependent fields removed.

    Strips wall-clock (span times, ``runtime``), host resource samples,
    provenance, worker summaries, and metrics whose values depend on the
    chunk schedule (:data:`VOLATILE_METRIC_PREFIXES`,
    :data:`VOLATILE_METRIC_NAMES`).  What remains — the span tree with
    its exact analytical costs, the stable metrics, totals — must be
    bit-identical between ``--jobs N`` and serial runs of the same spec.
    """
    stripped: Dict[str, Any] = copy.deepcopy(dict(report))
    stripped.pop("provenance", None)
    stripped.pop("resources", None)
    stripped.pop("workers", None)
    if "wall_seconds" in stripped:
        stripped["wall_seconds"] = 0.0
    runtime = stripped.get("runtime")
    if isinstance(runtime, dict):
        runtime["wall_seconds"] = 0.0
        runtime.pop("cpu_seconds", None)
    for span in stripped.get("spans", ()):
        _strip_span_dict(span)
    metrics = stripped.get("metrics")
    if isinstance(metrics, dict):
        _strip_metrics(metrics)
    return stripped
