"""Observability: hierarchical span tracing, metrics, machine-readable dumps.

The subsystem has three layers:

* :mod:`repro.obs.tracer` / :mod:`repro.obs.metrics` — the recording
  primitives (span trees with analytical-cost attribution; counters,
  gauges, histograms);
* :mod:`repro.obs.state` — the process-global default tracer/registry and
  the instrumentation facade used by model code (``obs.span``,
  ``obs.record_cost``, ``obs.count``), with a no-op fast path when
  disabled;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), a flat text profile, and the versioned
  ``run_report.json`` schema (every span carries a stable hierarchical
  *path*, the cross-run alignment key);
* :mod:`repro.obs.diff` — differential cost attribution between two run
  reports: span-by-span alignment with rename tolerance, per-stream
  traffic deltas, a sorted attribution table, a Chrome-trace overlay and
  the versioned ``cost_diff.json`` schema;
* :mod:`repro.obs.baseline` / :mod:`repro.obs.bench` — committed
  baseline snapshots (``benchmarks/baselines/``) and the
  ``python -m repro bench`` regression gate built on the diff engine;
* :mod:`repro.obs.telemetry` / :mod:`repro.obs.profiler` /
  :mod:`repro.obs.events` / :mod:`repro.obs.dash` — cross-process
  telemetry snapshots (capture/merge/graft, deterministic across
  ``--jobs``), host resource profiling (RSS / tracemalloc / CPU / GC),
  the provenance-stamped ``repro.obs.events/v1`` JSONL stream, and the
  standalone HTML dashboard over it.

Typical use::

    from repro import obs
    from repro.obs.export import write_chrome_trace

    with obs.capture() as (tracer, registry):
        BootstrapModel(params, config).total_cost()
    write_chrome_trace(tracer, "trace.json")

Tracing alters nothing: a traced run returns bit-identical CostReports to
an untraced one, and the sum of all span costs equals the model total.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.state import (
    annotate,
    capture,
    count,
    current_span,
    gauge,
    get_tracer,
    metrics,
    metrics_enabled,
    observe,
    record_cost,
    reset,
    scoped,
    set_metrics,
    set_tracer,
    span,
    suppressed,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "annotate",
    "capture",
    "count",
    "current_span",
    "gauge",
    "get_tracer",
    "metrics",
    "metrics_enabled",
    "observe",
    "record_cost",
    "reset",
    "scoped",
    "set_metrics",
    "set_tracer",
    "span",
    "suppressed",
    "tracing_enabled",
]
