"""Pluggable request schedulers: FIFO, SJF and weighted fair queueing.

A scheduler owns the pending-request queue and answers one question:
*which request runs next?*  All three implementations are totally
ordered by a deterministic key that ends in the request's global arrival
sequence number, so ties never depend on insertion order, hash seeds or
process identity — the property that keeps ``--jobs N`` capacity sweeps
bit-identical to serial runs.

* ``fifo`` — arrival order.
* ``sjf``  — shortest estimated service time first (the estimate is the
  roofline runtime of the kind's unit cost on the fleet's design, a
  pure function of the grid point).
* ``wfq``  — start-time fair queueing: each request gets a virtual
  finish tag ``max(tenant_last_tag, vtime) + service/weight``; the
  queue orders by tag.  Virtual time advances to the tag of each
  dispatched request, so a tenant's share of device time converges to
  its weight regardless of its request sizes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.requests import Request

__all__ = ["SCHEDULER_NAMES", "Scheduler", "make_scheduler"]

#: Recognised scheduler names.
SCHEDULER_NAMES: Tuple[str, ...] = ("fifo", "sjf", "wfq")

#: seconds of service one request of (tenant, kind) is estimated to take.
ServiceEstimator = Callable[[Request], float]
#: (priority..., seq) — the heap ordering key; seq last breaks all ties.
_QueueKey = Tuple[float, float, int]


class Scheduler:
    """Priority queue of pending requests under one discipline."""

    def __init__(
        self,
        name: str,
        estimator: ServiceEstimator,
        weights: Dict[str, float],
    ) -> None:
        if name not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {name!r}; "
                f"choose from {', '.join(SCHEDULER_NAMES)}"
            )
        self.name = name
        self._estimator = estimator
        self._weights = weights
        self._heap: List[Tuple[_QueueKey, Request]] = []
        #: wfq state: per-tenant last finish tag and the global vtime.
        self._last_tag: Dict[str, float] = {}
        self._vtime = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    def push(self, request: Request) -> None:
        heapq.heappush(self._heap, (self._key(request), request))

    def peek(self) -> Optional[Request]:
        return self._heap[0][1] if self._heap else None

    def pop(self) -> Request:
        key, request = heapq.heappop(self._heap)
        if self.name == "wfq":
            # Virtual time advances to the dispatched request's tag.
            self._vtime = max(self._vtime, key[0])
        return request

    def take_matching(
        self, head: Request, limit: int, matches: Callable[[Request], bool]
    ) -> List[Request]:
        """``head`` plus up to ``limit - 1`` queued requests satisfying
        ``matches``, removed in queue-priority order (the batch builder)."""
        batch = [head]
        kept: List[Tuple[_QueueKey, Request]] = []
        while self._heap and len(batch) < limit:
            key, request = heapq.heappop(self._heap)
            if matches(request):
                batch.append(request)
            else:
                kept.append((key, request))
        for entry in kept:
            heapq.heappush(self._heap, entry)
        return batch

    # ------------------------------------------------------------------
    def _key(self, request: Request) -> _QueueKey:
        if self.name == "fifo":
            return (0.0, 0.0, request.seq)
        if self.name == "sjf":
            return (self._estimator(request), 0.0, request.seq)
        # wfq: start-time fair queueing finish tags.
        weight = self._weights.get(request.tenant, 1.0)
        service = self._estimator(request)
        start = max(self._last_tag.get(request.tenant, 0.0), self._vtime)
        tag = start + service / weight
        self._last_tag[request.tenant] = tag
        return (tag, 0.0, request.seq)


def make_scheduler(
    name: str,
    estimator: ServiceEstimator,
    weights: Optional[Dict[str, float]] = None,
) -> Scheduler:
    """Construct a scheduler by name (see :data:`SCHEDULER_NAMES`)."""
    return Scheduler(name, estimator, dict(weights or {}))
