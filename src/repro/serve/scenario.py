"""Named serving scenarios and fleet presets.

A *scenario* is the workload side of a capacity-planning question: a
tenant mix (arrival laws, workload mixes, fairness weights, SLA
targets) plus a simulated duration.  A *fleet* is the supply side: one
of the paper's Table 6 accelerators (or its MAD counterpart), a device
count, a scheduler and a cache-partition policy.  Scenarios and fleets
are registered by name so sweep grid points and CLI invocations can
reference them as plain strings — the sweep context stays JSON-pure
and the heavy objects are resolved inside the evaluator.

The ``mixed`` scenario is the flagship: an interactive primitive tenant,
a bursty ML-application tenant and a diurnal batch tenant, served by
BTS, CraterLake and BTS's 32 MB MAD counterpart.  ``micro`` is a
seconds-long two-tenant primitive-only run used by the bench harness
and fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro.hardware.design import HardwareDesign
from repro.hardware.designs import BTS, CRATERLAKE, mad_counterpart
from repro.perf import MADConfig
from repro.serve.arrivals import ArrivalProcess
from repro.serve.batching import BatchPolicy
from repro.serve.requests import TenantSpec
from repro.serve.simulator import SimResult, simulate

__all__ = [
    "CONFIG_FACTORIES",
    "FLEET_PRESETS",
    "FleetSpec",
    "SCENARIOS",
    "Scenario",
    "fleet_with",
    "run_scenario",
    "simulate_fleet",
]

#: MAD optimization configs a scenario can price under (mirrors the CLI).
CONFIG_FACTORIES: Dict[str, Callable[[], MADConfig]] = {
    "none": MADConfig.none,
    "caching": MADConfig.caching_only,
    "all": MADConfig.all,
}


@dataclass(frozen=True)
class FleetSpec:
    """One homogeneous accelerator fleet serving a scenario."""

    name: str
    design: HardwareDesign
    devices: int = 2
    scheduler: str = "fifo"
    cache_policy: str = "equal"
    batch: BatchPolicy = BatchPolicy()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if self.devices < 1:
            raise ValueError("fleet devices must be >= 1")


@dataclass(frozen=True)
class Scenario:
    """A named tenant mix over a simulated horizon."""

    name: str
    duration_s: float
    tenants: Tuple[TenantSpec, ...]
    fleets: Tuple[FleetSpec, ...]
    config: str = "all"  # key into CONFIG_FACTORIES

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if not self.fleets:
            raise ValueError("a scenario needs at least one fleet")
        if self.config not in CONFIG_FACTORIES:
            raise ValueError(
                f"unknown config {self.config!r}; "
                f"choose from {', '.join(sorted(CONFIG_FACTORIES))}"
            )


_INTERACTIVE = TenantSpec(
    name="interactive",
    arrival=ArrivalProcess(shape="poisson", rate_per_s=40.0),
    mix=(("mult", 3.0), ("rotate", 2.0), ("key_switch", 1.0)),
    weight=3.0,
    level_budget=8,
    sla_p99_ms=50.0,
)

_ANALYTICS = TenantSpec(
    name="analytics",
    arrival=ArrivalProcess(
        shape="bursty", rate_per_s=0.5, burst_factor=4.0, burst_fraction=0.2
    ),
    mix=(("helr", 2.0), ("resnet", 1.0)),
    weight=1.0,
    level_budget=12,
    sla_p99_ms=None,
)

_BATCH = TenantSpec(
    name="batch",
    arrival=ArrivalProcess(
        shape="diurnal", rate_per_s=20.0, period_s=10.0, amplitude=0.8
    ),
    mix=(("mult", 1.0), ("rotate", 1.0)),
    weight=1.0,
    level_budget=6,
    sla_p99_ms=200.0,
)

#: Named fleet configurations capacity sweeps and scenarios reference.
FLEET_PRESETS: Dict[str, FleetSpec] = {
    fleet.name: fleet
    for fleet in (
        FleetSpec(
            name="bts-wfq",
            design=BTS,
            devices=2,
            scheduler="wfq",
            cache_policy="weighted",
            batch=BatchPolicy(window_s=0.01, max_batch=8),
        ),
        FleetSpec(
            name="craterlake-sjf",
            design=CRATERLAKE,
            devices=2,
            scheduler="sjf",
            cache_policy="equal",
            batch=BatchPolicy(window_s=0.01, max_batch=8),
        ),
        FleetSpec(
            name="bts-mad-fifo",
            design=mad_counterpart(BTS),
            devices=2,
            scheduler="fifo",
            cache_policy="shared",
            batch=BatchPolicy(window_s=0.01, max_batch=8),
        ),
        FleetSpec(
            name="bts-micro",
            design=BTS,
            devices=1,
            scheduler="fifo",
            cache_policy="equal",
            batch=BatchPolicy(window_s=0.001, max_batch=4),
        ),
    )
}

#: Registered scenarios, by name.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="mixed",
            duration_s=20.0,
            tenants=(_INTERACTIVE, _ANALYTICS, _BATCH),
            fleets=(
                FLEET_PRESETS["bts-wfq"],
                FLEET_PRESETS["craterlake-sjf"],
                FLEET_PRESETS["bts-mad-fifo"],
            ),
        ),
        Scenario(
            name="micro",
            duration_s=2.0,
            tenants=(
                TenantSpec(
                    name="alpha",
                    arrival=ArrivalProcess(shape="poisson", rate_per_s=30.0),
                    mix=(("mult", 2.0), ("rotate", 1.0)),
                    weight=2.0,
                    level_budget=6,
                    sla_p99_ms=25.0,
                ),
                TenantSpec(
                    name="beta",
                    arrival=ArrivalProcess(
                        shape="bursty", rate_per_s=20.0, burst_factor=3.0
                    ),
                    mix=(("key_switch", 1.0), ("mult", 1.0)),
                    weight=1.0,
                    level_budget=8,
                ),
            ),
            fleets=(FLEET_PRESETS["bts-micro"],),
        ),
    )
}


def simulate_fleet(
    scenario: Scenario, fleet: FleetSpec, seed: int
) -> SimResult:
    """Run one fleet of ``scenario`` to completion."""
    config = CONFIG_FACTORIES[scenario.config]()
    return simulate(
        fleet_name=fleet.name,
        design=fleet.design,
        devices=fleet.devices,
        tenants=scenario.tenants,
        duration_s=scenario.duration_s,
        seed=seed,
        scenario=scenario.name,
        config=config,
        scheduler=fleet.scheduler,
        cache_policy=fleet.cache_policy,
        batch=fleet.batch,
    )


def run_scenario(scenario: Scenario, seed: int) -> List[SimResult]:
    """Run every fleet of ``scenario``; results in fleet order."""
    return [
        simulate_fleet(scenario, fleet, seed) for fleet in scenario.fleets
    ]


def fleet_with(
    fleet: FleetSpec, *, devices: int = 0, cache_policy: str = ""
) -> FleetSpec:
    """``fleet`` with sweep-axis overrides (zero/empty keeps the preset)."""
    updated = fleet
    if devices:
        updated = replace(updated, devices=devices)
    if cache_policy:
        updated = replace(updated, cache_policy=cache_policy)
    return updated
