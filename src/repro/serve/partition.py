"""Per-tenant on-chip-cache partitioning.

A serving accelerator's on-chip memory is the contended resource the
paper is about: Fig. 2's optimization rungs each require a capacity
threshold (O(1) digits < O(beta) digits < O(alpha) limbs < limb
re-ordering < whole ciphertexts), so *how the fleet splits its SRAM
between tenants* decides which rungs each tenant's requests run at.
Three policies:

* ``shared``   — no isolation: every tenant prices against the full
  on-chip capacity (an optimistic upper bound that ignores conflict
  misses between tenants).
* ``equal``    — static partition into ``1/n`` slices.
* ``weighted`` — static partition proportional to tenant weights (the
  same weights weighted-fair queueing uses for service time).

Slices are :class:`repro.perf.CacheModel` instances, so a tenant's
capacity feeds the exact fit predicates the cost model already uses —
no new capacity logic is introduced here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.perf import CacheModel
from repro.serve.requests import TenantSpec

__all__ = ["CACHE_POLICIES", "partition_cache"]

#: Recognised cache-partition policies.
CACHE_POLICIES: Tuple[str, ...] = ("shared", "equal", "weighted")


def partition_cache(
    policy: str,
    on_chip_mb: float,
    tenants: Sequence[TenantSpec],
) -> Dict[str, Optional[CacheModel]]:
    """Tenant name -> cache slice under ``policy``.

    Raises ValueError for unknown policies or non-positive capacity.
    """
    if policy not in CACHE_POLICIES:
        raise ValueError(
            f"unknown cache policy {policy!r}; "
            f"choose from {', '.join(CACHE_POLICIES)}"
        )
    if on_chip_mb <= 0:
        raise ValueError("on_chip_mb must be positive")
    if not tenants:
        raise ValueError("partitioning needs at least one tenant")
    if policy == "shared":
        shared = CacheModel.from_mb(on_chip_mb)
        return {tenant.name: shared for tenant in tenants}
    if policy == "equal":
        slice_mb = on_chip_mb / len(tenants)
        return {
            tenant.name: CacheModel.from_mb(slice_mb) for tenant in tenants
        }
    total_weight = sum(tenant.weight for tenant in tenants)
    return {
        tenant.name: CacheModel.from_mb(
            on_chip_mb * tenant.weight / total_weight
        )
        for tenant in tenants
    }
