"""Tenants, requests and the per-kind cost catalog.

A request is one unit of client work: a homomorphic primitive
(``mult``/``rotate``/``key_switch``) or a whole application inference
(``helr``/``resnet``), priced through the existing cost model — the
serving simulator introduces *no* cost formulas of its own.  Primitive
requests are priced by :class:`repro.perf.PrimitiveCosts` at the same
representative level the bench micro-workload uses; application
requests by :func:`repro.apps.workload_cost`; ``bootstrap`` by
:class:`repro.perf.BootstrapModel`.  All pricing happens under the
tenant's *cache slice* (see :mod:`repro.serve.partition`), which is what
makes partitioning bite: a tenant squeezed below a Fig. 2 rung loses
that rung's optimization, exactly as the paper's ladder predicts.

Level budgeting: each primitive kind consumes modulus-chain levels
(``mult`` rescales, ``rotate``/``key_switch`` do not); when a tenant's
cumulative consumption crosses its ``level_budget`` the simulator
enqueues a ``bootstrap`` request on the tenant's behalf.  Application
kinds consume no budget — their workload counts already include their
own bootstrap invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs import state as obs
from repro.params import CkksParams
from repro.perf import CacheModel, MADConfig
from repro.perf.events import CostReport
from repro.serve.arrivals import ArrivalProcess

__all__ = [
    "KIND_LEVELS",
    "PricingCatalog",
    "Request",
    "TenantSpec",
    "WORKLOAD_KINDS",
    "price_kind",
]

#: Modulus-chain levels one request of each kind consumes.
KIND_LEVELS: Dict[str, int] = {
    "mult": 1,  # rescale after the multiplication
    "rotate": 0,
    "key_switch": 0,
    "helr": 0,  # application counts include their own bootstraps
    "resnet": 0,
    "bootstrap": 0,
}

#: Client-schedulable workload kinds (``bootstrap`` is simulator-internal).
WORKLOAD_KINDS: Tuple[str, ...] = (
    "mult",
    "rotate",
    "key_switch",
    "helr",
    "resnet",
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: traffic law, workload mix and fairness weight."""

    name: str
    arrival: ArrivalProcess
    #: Weighted workload mix, ``((kind, weight), ...)``.
    mix: Tuple[Tuple[str, float], ...]
    weight: float = 1.0  # weighted-fair-queueing share
    level_budget: int = 12  # levels consumed before a bootstrap triggers
    sla_p99_ms: Optional[float] = None  # reported-against target, never gated

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.level_budget <= 0:
            raise ValueError("level_budget must be positive")
        known = set(WORKLOAD_KINDS)
        for kind, weight in self.mix:
            if kind not in known:
                raise ValueError(
                    f"unknown workload kind {kind!r}; "
                    f"choose from {', '.join(WORKLOAD_KINDS)}"
                )
            if weight <= 0:
                raise ValueError(f"mix weight for {kind!r} must be positive")


@dataclass(frozen=True)
class Request:
    """One unit of work flowing through the simulator."""

    seq: int  # global arrival sequence number (deterministic tie-break)
    tenant: str
    kind: str
    arrival_s: float
    internal: bool = False  # True for simulator-enqueued bootstraps


def price_kind(
    kind: str,
    params: CkksParams,
    config: MADConfig,
    cache: Optional[CacheModel],
) -> CostReport:
    """Unit :class:`CostReport` of one request of ``kind``.

    Priced under suppressed telemetry: catalog construction is a pure
    lookup-table build, and its cache-fit probe metrics would otherwise
    differ between memoized and recomputed paths.
    """
    from repro.apps import helr_training, resnet20_inference, workload_cost
    from repro.perf import BootstrapModel, PrimitiveCosts

    with obs.suppressed():
        if kind == "bootstrap":
            return BootstrapModel(params, config, cache).total_cost()
        if kind in ("mult", "rotate", "key_switch"):
            costs = PrimitiveCosts(params, config, cache)
            level = max(2, round(params.max_limbs * 0.6))
            unit = getattr(costs, kind)
            result = unit(level)
            assert isinstance(result, CostReport)
            return result
        if kind == "helr":
            workload = helr_training(params, iterations=1)
        elif kind == "resnet":
            workload = resnet20_inference(params)
        else:
            raise ValueError(
                f"unknown workload kind {kind!r}; "
                f"choose from {', '.join(WORKLOAD_KINDS)} or 'bootstrap'"
            )
        return workload_cost(workload, params, config, cache).total


class PricingCatalog:
    """Per-(tenant, kind) unit costs for one fleet configuration.

    Built once per simulation from the tenants' cache slices; the
    simulator only ever reads it, so every dispatch prices identically
    no matter which worker process runs the grid point.
    """

    def __init__(
        self,
        params: CkksParams,
        config: MADConfig,
        slices: Dict[str, Optional[CacheModel]],
    ) -> None:
        self.params = params
        self.config = config
        self._slices = slices
        self._units: Dict[Tuple[str, str], CostReport] = {}

    def unit_cost(self, tenant: str, kind: str) -> CostReport:
        key = (tenant, kind)
        cached = self._units.get(key)
        if cached is None:
            cached = price_kind(
                kind, self.params, self.config, self._slices[tenant]
            )
            self._units[key] = cached
        return cached
