"""Latency statistics for serving runs: nearest-rank percentiles.

SLA reporting quotes order statistics (p50/p99/p999), not moments: tail
latency is what capacity planning is about ("serving heavy traffic from
millions of users", ROADMAP north star).  The nearest-rank definition is
used deliberately — it returns an *observed* sample, never an
interpolated value, so two runs with identical latency multisets report
bit-identical percentiles regardless of how the samples were ordered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["LatencySummary", "percentile", "summarize_latencies"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in (0, 100]).

    Rank ``ceil(q/100 * n)`` of the sorted samples; the result is always
    one of the observed values.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency population (seconds)."""

    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_s: float

    def as_row(self) -> Dict[str, float]:
        """JSON row in milliseconds, the unit SLAs are quoted in."""
        return {
            "count": self.count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.p50_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
            "p999_ms": self.p999_s * 1e3,
            "max_ms": self.max_s * 1e3,
        }


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Summary statistics of a non-empty latency sample set."""
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean_s=sum(ordered) / len(ordered),
        p50_s=percentile(ordered, 50),
        p99_s=percentile(ordered, 99),
        p999_s=percentile(ordered, 99.9),
        max_s=ordered[-1],
    )
