"""Seeded arrival processes: the serving simulator's only entropy source.

Every random draw the serving simulator makes happens in this module,
from generators seeded with a *string* key (``"{seed}:{scenario}:
{tenant}"``): :class:`random.Random` hashes string seeds with SHA-512,
so the streams are bit-identical across processes, platforms and
``PYTHONHASHSEED`` values.  Everything downstream of these functions is
a pure function of the returned lists — the whole-program determinism
taint pass (:mod:`repro.lint.program.taint`) allowlists this file as a
seeded-stream channel (:data:`repro.lint.program.scopes.SEEDED_STREAM_FILES`)
for exactly that reason; RNG use anywhere else in ``serve/`` is a
finding.

Three arrival shapes, per the serving literature's usual suspects:

* ``poisson`` — memoryless: exponential inter-arrival gaps at ``rate_per_s``.
* ``bursty``  — hyperexponential: with probability ``burst_fraction`` a
  gap is drawn at ``rate_per_s * burst_factor`` (a burst), otherwise at
  ``rate_per_s / burst_factor`` (a lull); heavier tail than Poisson at
  the same nominal rate.
* ``diurnal`` — inhomogeneous Poisson by Lewis thinning: candidates at
  the peak rate ``rate_per_s * (1 + amplitude)``, accepted with
  probability proportional to ``1 + amplitude * sin(2*pi*t/period_s)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ArrivalProcess", "arrival_times", "tenant_arrivals"]

#: Recognised arrival-process shapes.
ARRIVAL_SHAPES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class ArrivalProcess:
    """One tenant's request-arrival law."""

    shape: str = "poisson"
    rate_per_s: float = 10.0
    burst_factor: float = 4.0  # bursty: rate multiplier inside a burst
    burst_fraction: float = 0.2  # bursty: probability a gap is burst-drawn
    period_s: float = 60.0  # diurnal: one "day" of the sinusoid
    amplitude: float = 0.8  # diurnal: peak-to-mean modulation, in [0, 1)

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"unknown arrival shape {self.shape!r}; "
                f"choose from {', '.join(ARRIVAL_SHAPES)}"
            )
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 <= self.burst_fraction <= 1:
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")


def _stream(seed_key: str) -> random.Random:
    """A deterministic generator for one named stream."""
    return random.Random(seed_key)


def arrival_times(
    process: ArrivalProcess, duration_s: float, seed_key: str
) -> List[float]:
    """Sorted arrival times in ``[0, duration_s)`` for one stream."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = _stream(seed_key)
    times: List[float] = []
    now = 0.0
    if process.shape == "poisson":
        while True:
            now += rng.expovariate(process.rate_per_s)
            if now >= duration_s:
                break
            times.append(now)
    elif process.shape == "bursty":
        hot = process.rate_per_s * process.burst_factor
        cold = process.rate_per_s / process.burst_factor
        while True:
            rate = hot if rng.random() < process.burst_fraction else cold
            now += rng.expovariate(rate)
            if now >= duration_s:
                break
            times.append(now)
    else:  # diurnal: Lewis thinning against the sinusoidal intensity
        peak = process.rate_per_s * (1 + process.amplitude)
        while True:
            now += rng.expovariate(peak)
            if now >= duration_s:
                break
            intensity = 1 + process.amplitude * math.sin(
                2 * math.pi * now / process.period_s
            )
            if rng.random() * (1 + process.amplitude) < intensity:
                times.append(now)
    return times


def tenant_arrivals(
    process: ArrivalProcess,
    mix: Sequence[Tuple[str, float]],
    duration_s: float,
    seed_key: str,
) -> List[Tuple[float, str]]:
    """``(arrival_time, workload_kind)`` pairs for one tenant's stream.

    Kinds are drawn from the weighted ``mix`` with an independent
    generator (``seed_key + ":mix"``) so changing the mix never perturbs
    the arrival times themselves — ablations over tenant mixes keep the
    same traffic shape.
    """
    if not mix:
        raise ValueError("tenant mix must name at least one workload kind")
    total_weight = float(sum(weight for _, weight in mix))
    if total_weight <= 0:
        raise ValueError("tenant mix weights must sum to a positive value")
    times = arrival_times(process, duration_s, seed_key)
    rng = _stream(seed_key + ":mix")
    arrivals: List[Tuple[float, str]] = []
    for when in times:
        draw = rng.random() * total_weight
        cumulative = 0.0
        chosen = mix[-1][0]
        for kind, weight in mix:
            cumulative += weight
            if draw < cumulative:
                chosen = kind
                break
        arrivals.append((when, chosen))
    return arrivals
