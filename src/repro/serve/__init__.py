"""``repro.serve`` — discrete-event multi-tenant FHE serving simulator.

The cost model answers "what does one bootstrap cost on this design?";
this package answers the operator's question: *how many of which
accelerator do I need to serve this tenant mix at my SLA?*  Seeded
arrival processes (:mod:`~repro.serve.arrivals`) generate per-tenant
request streams; a virtual-clock event heap
(:mod:`~repro.serve.simulator`) schedules them onto a fleet under a
pluggable discipline (:mod:`~repro.serve.schedulers`), forming
same-parameter batches that amortize switching-key traffic
(:mod:`~repro.serve.batching`) and pricing every dispatch through the
existing :class:`~repro.perf.events.CostReport` pipeline under each
tenant's cache slice (:mod:`~repro.serve.partition`).  Results land in
a ``repro.serve/v1`` report (:mod:`~repro.serve.report`) with
per-tenant p50/p99/p999 latency, throughput, fleet utilisation,
batching efficiency and cost-per-request.

Everything is a pure function of ``(scenario, fleet, seed)``: no wall
clock (SimClockDiscipline enforces this), no ambient RNG (all entropy
lives in :mod:`~repro.serve.arrivals` behind SHA-512 string seeding),
so the ``serve.scenario`` sweep evaluator reproduces bit-identically
under any ``--jobs`` split.
"""

from repro.serve.arrivals import (
    ARRIVAL_SHAPES,
    ArrivalProcess,
    arrival_times,
    tenant_arrivals,
)
from repro.serve.batching import (
    BatchPolicy,
    batch_key,
    batched_cost,
    key_reads_saved,
)
from repro.serve.partition import CACHE_POLICIES, partition_cache
from repro.serve.report import (
    ACCEPTED_SCHEMA_IDS,
    SCHEMA_ID,
    SERVE_REPORT_SCHEMA,
    assemble_serve_report,
    build_serve_report,
    fleet_row,
    load_serve_report,
    scenario_fingerprint,
    tenant_row,
    validate_serve_report,
    write_serve_report,
)
from repro.serve.requests import (
    KIND_LEVELS,
    PricingCatalog,
    Request,
    TenantSpec,
    WORKLOAD_KINDS,
    price_kind,
)
from repro.serve.scenario import (
    CONFIG_FACTORIES,
    FLEET_PRESETS,
    FleetSpec,
    SCENARIOS,
    Scenario,
    fleet_with,
    run_scenario,
    simulate_fleet,
)
from repro.serve.schedulers import SCHEDULER_NAMES, Scheduler, make_scheduler
from repro.serve.simulator import SimResult, TenantResult, simulate
from repro.serve.stats import (
    LatencySummary,
    percentile,
    summarize_latencies,
)

__all__ = [
    "ACCEPTED_SCHEMA_IDS",
    "ARRIVAL_SHAPES",
    "ArrivalProcess",
    "BatchPolicy",
    "CACHE_POLICIES",
    "CONFIG_FACTORIES",
    "FLEET_PRESETS",
    "FleetSpec",
    "KIND_LEVELS",
    "LatencySummary",
    "PricingCatalog",
    "Request",
    "SCENARIOS",
    "SCHEDULER_NAMES",
    "SCHEMA_ID",
    "SERVE_REPORT_SCHEMA",
    "Scenario",
    "Scheduler",
    "SimResult",
    "TenantResult",
    "TenantSpec",
    "WORKLOAD_KINDS",
    "arrival_times",
    "assemble_serve_report",
    "batch_key",
    "batched_cost",
    "build_serve_report",
    "fleet_row",
    "fleet_with",
    "key_reads_saved",
    "load_serve_report",
    "make_scheduler",
    "partition_cache",
    "percentile",
    "price_kind",
    "run_scenario",
    "scenario_fingerprint",
    "simulate",
    "simulate_fleet",
    "summarize_latencies",
    "tenant_arrivals",
    "tenant_row",
    "validate_serve_report",
    "write_serve_report",
]
