"""The discrete-event serving simulator: virtual clock, event heap.

Time here is *simulated* seconds on an event heap — the module never
reads a wall clock (SimClockDiscipline lints ``serve/`` for ``time``/
``datetime`` imports), so a run is a pure function of ``(scenario,
fleet, seed)`` and repeats bit-identically anywhere.

Mechanics per event pop, in deterministic order (completions before
arrivals before wakes at equal timestamps, then a global event
sequence number):

* **arrival** — the request enters the fleet's scheduler.
* **completion** — the device returns to the idle pool; each request in
  the finished batch records its latency; client requests consume their
  kind's modulus-chain levels and, on crossing the tenant's
  ``level_budget``, enqueue one ``bootstrap`` request on the tenant's
  behalf (completed bootstraps restore the budget).
* **dispatch** (after every event) — while a device is idle and the
  scheduler's head request is *ready* (it has waited out the batching
  window, or ``max_batch`` same-key requests are queued), the head plus
  its same-``(tenant, kind)`` followers form a batch, priced by
  :func:`~repro.serve.batching.batched_cost` and timed by the existing
  roofline :func:`~repro.hardware.runtime.estimate_runtime`.  Batches
  always run on the lowest-numbered idle device.

Costs aggregate exclusively by :class:`~repro.perf.events.CostReport`
addition; the simulator holds no raw byte/op counters.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hardware.design import HardwareDesign
from repro.hardware.runtime import estimate_runtime
from repro.obs import state as obs
from repro.perf import MADConfig
from repro.perf.events import CostReport
from repro.serve.batching import (
    BatchPolicy,
    batch_key,
    batched_cost,
)
from repro.serve.partition import partition_cache
from repro.serve.requests import (
    KIND_LEVELS,
    PricingCatalog,
    Request,
    TenantSpec,
)
from repro.serve.arrivals import tenant_arrivals
from repro.serve.schedulers import Scheduler, make_scheduler
from repro.serve.stats import LatencySummary, summarize_latencies

__all__ = ["SimResult", "TenantResult", "simulate"]

#: Event-type codes; lower pops first at equal timestamps.
_COMPLETE = 0
_ARRIVAL = 1
_WAKE = 2


@dataclass(frozen=True)
class TenantResult:
    """One tenant's serving outcome."""

    tenant: str
    offered: int
    completed: int
    bootstraps: int
    latency: Optional[LatencySummary]  # None when nothing completed
    cost: CostReport
    sla_p99_ms: Optional[float]

    @property
    def sla_met(self) -> Optional[bool]:
        if self.sla_p99_ms is None or self.latency is None:
            return None
        return self.latency.p99_s * 1e3 <= self.sla_p99_ms


@dataclass(frozen=True)
class SimResult:
    """One fleet configuration's serving outcome (all tenants)."""

    fleet: str
    design: str
    devices: int
    scheduler: str
    cache_policy: str
    duration_s: float
    makespan_s: float
    offered: int
    completed: int
    bootstraps: int
    batches: int
    batched_requests: int
    busy_device_seconds: float
    total_cost: CostReport
    unbatched_cost: CostReport  # what the same traffic costs without batching
    tenants: Tuple[TenantResult, ...]

    # ------------------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def utilisation(self) -> float:
        capacity = self.devices * self.makespan_s
        return self.busy_device_seconds / capacity if capacity > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def key_read_saved_fraction(self) -> float:
        """Fraction of unbatched switching-key traffic batching removed."""
        unbatched = self.unbatched_cost.traffic.key_read
        if unbatched == 0:
            return 0.0
        return 1.0 - self.total_cost.traffic.key_read / unbatched


@dataclass
class _TenantState:
    """Mutable per-tenant bookkeeping inside one simulation."""

    offered: int = 0
    completed: int = 0
    bootstraps: int = 0
    levels_used: int = 0
    bootstrap_pending: bool = False
    latencies: List[float] = field(default_factory=list)
    cost: CostReport = field(default_factory=CostReport)


def _build_requests(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int,
    scenario: str,
) -> List[Request]:
    """All client requests of the run, in canonical arrival order."""
    stream: List[Tuple[float, int, str]] = []
    for position, tenant in enumerate(tenants):
        seed_key = f"{seed}:{scenario}:{tenant.name}"
        for when, kind in tenant_arrivals(
            tenant.arrival, tenant.mix, duration_s, seed_key
        ):
            stream.append((when, position, kind))
    stream.sort()
    return [
        Request(
            seq=index,
            tenant=tenants[position].name,
            kind=kind,
            arrival_s=when,
        )
        for index, (when, position, kind) in enumerate(stream)
    ]


def simulate(
    *,
    fleet_name: str,
    design: HardwareDesign,
    devices: int,
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int,
    scenario: str,
    config: Optional[MADConfig] = None,
    scheduler: str = "fifo",
    cache_policy: str = "equal",
    batch: Optional[BatchPolicy] = None,
) -> SimResult:
    """Run one fleet configuration to completion (queue fully drained)."""
    if devices < 1:
        raise ValueError("a fleet needs at least one device")
    if not tenants:
        raise ValueError("a scenario needs at least one tenant")
    config = config if config is not None else MADConfig.all()
    batch = batch if batch is not None else BatchPolicy()

    slices = partition_cache(cache_policy, design.on_chip_mb, tenants)
    catalog = PricingCatalog(design.params, config, slices)

    # Per-(tenant, kind) roofline service estimates, computed up front so
    # scheduler decisions never re-enter the cost model mid-run.
    estimates: Dict[Tuple[str, str], float] = {}
    for tenant in tenants:
        kinds = sorted({kind for kind, _ in tenant.mix} | {"bootstrap"})
        for kind in kinds:
            unit = catalog.unit_cost(tenant.name, kind)
            estimates[(tenant.name, kind)] = estimate_runtime(
                unit, design
            ).seconds

    weights = {tenant.name: tenant.weight for tenant in tenants}
    queue: Scheduler = make_scheduler(
        scheduler, lambda r: estimates[(r.tenant, r.kind)], weights
    )
    by_name = {tenant.name: tenant for tenant in tenants}
    states: Dict[str, _TenantState] = {
        tenant.name: _TenantState() for tenant in tenants
    }

    requests = _build_requests(tenants, duration_s, seed, scenario)
    next_seq = len(requests)

    #: (time, type_code, event_seq, payload)
    events: List[Tuple[float, int, int, Any]] = []
    event_seq = 0
    for request in requests:
        states[request.tenant].offered += 1
        heapq.heappush(
            events, (request.arrival_s, _ARRIVAL, event_seq, request)
        )
        event_seq += 1

    idle: List[int] = list(range(devices))
    heapq.heapify(idle)
    pending: Dict[Tuple[str, str], int] = {}

    total = CostReport()
    unbatched = CostReport()
    busy_device_seconds = 0.0
    makespan = 0.0
    batches = 0
    batched_requests = 0
    completed = 0
    bootstraps_done = 0

    def dispatch(now: float) -> None:
        nonlocal event_seq, total, unbatched, busy_device_seconds
        nonlocal batches, batched_requests
        while idle and len(queue):
            head = queue.peek()
            assert head is not None
            key = batch_key(head)
            ready_at = head.arrival_s + batch.window_s
            if now < ready_at and pending.get(key, 0) < batch.max_batch:
                # Hold for followers; wake when the window closes.
                heapq.heappush(events, (ready_at, _WAKE, event_seq, None))
                event_seq += 1
                return
            head = queue.pop()
            group = queue.take_matching(
                head, batch.max_batch, lambda r: batch_key(r) == key
            )
            pending[key] = pending.get(key, 0) - len(group)
            unit = catalog.unit_cost(head.tenant, head.kind)
            cost = batched_cost(unit, len(group))
            seconds = estimate_runtime(cost, design).seconds
            device = heapq.heappop(idle)
            heapq.heappush(
                events, (now + seconds, _COMPLETE, event_seq, (device, group))
            )
            event_seq += 1
            total = total + cost
            unbatched = unbatched + unit.scaled(len(group))
            states[head.tenant].cost = states[head.tenant].cost + cost
            busy_device_seconds += seconds
            batches += 1
            batched_requests += len(group)
            obs.count("serve.batches")

    def complete(now: float, device: int, group: List[Request]) -> None:
        nonlocal event_seq, completed, bootstraps_done, makespan
        heapq.heappush(idle, device)
        makespan = max(makespan, now)
        for request in group:
            state = states[request.tenant]
            if request.internal:
                bootstraps_done += 1
                state.bootstraps += 1
                state.levels_used = 0
                state.bootstrap_pending = False
                obs.count("serve.bootstraps")
                continue
            completed += 1
            state.completed += 1
            state.latencies.append(now - request.arrival_s)
            state.levels_used += KIND_LEVELS[request.kind]
            obs.count("serve.requests.completed")
        leader = group[0]
        state = states[leader.tenant]
        spec = by_name[leader.tenant]
        if (
            state.levels_used >= spec.level_budget
            and not state.bootstrap_pending
            and spec.level_budget > 0
        ):
            state.bootstrap_pending = True
            boot = Request(
                seq=next_boot_seq(),
                tenant=leader.tenant,
                kind="bootstrap",
                arrival_s=now,
                internal=True,
            )
            enqueue(boot)

    def next_boot_seq() -> int:
        nonlocal next_seq
        next_seq += 1
        return next_seq

    def enqueue(request: Request) -> None:
        key = batch_key(request)
        pending[key] = pending.get(key, 0) + 1
        queue.push(request)

    with obs.span(
        "serve:fleet",
        fleet=fleet_name,
        design=design.name,
        devices=devices,
        scheduler=scheduler,
        cache_policy=cache_policy,
    ):
        while events:
            now, code, _, payload = heapq.heappop(events)
            if code == _ARRIVAL:
                enqueue(payload)
            elif code == _COMPLETE:
                device, group = payload
                complete(now, device, group)
            dispatch(now)

        tenant_rows: List[TenantResult] = []
        for tenant in tenants:
            state = states[tenant.name]
            summary = (
                summarize_latencies(state.latencies)
                if state.latencies
                else None
            )
            if obs.tracing_enabled():
                with obs.span("serve:tenant", tenant=tenant.name):
                    obs.record_cost(state.cost)
            tenant_rows.append(
                TenantResult(
                    tenant=tenant.name,
                    offered=state.offered,
                    completed=state.completed,
                    bootstraps=state.bootstraps,
                    latency=summary,
                    cost=state.cost,
                    sla_p99_ms=tenant.sla_p99_ms,
                )
            )

    return SimResult(
        fleet=fleet_name,
        design=design.name,
        devices=devices,
        scheduler=scheduler,
        cache_policy=cache_policy,
        duration_s=duration_s,
        makespan_s=makespan,
        offered=len(requests),
        completed=completed,
        bootstraps=bootstraps_done,
        batches=batches,
        batched_requests=batched_requests,
        busy_device_seconds=busy_device_seconds,
        total_cost=total,
        unbatched_cost=unbatched,
        tenants=tuple(tenant_rows),
    )
