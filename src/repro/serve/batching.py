"""Same-parameter batching: amortizing switching-key traffic.

Fig. 3 of the paper shows switching-key reads are the one DRAM stream
caching cannot shrink — but a *server* can: requests of the same tenant
and kind run under the same evaluation keys, so a batch of ``k``
requests streams the ksk material once.  :func:`batched_cost` prices
exactly that: ciphertext/plaintext traffic and compute scale by ``k``
(each request still moves its own operands), while ``key_read`` stays
at the unit cost.  The batch is built by constructing fresh
:class:`~repro.perf.events.MemTraffic`/:class:`~repro.perf.events.CostReport`
objects — cost fields are never mutated (LedgerDiscipline).

Batch formation is a *window* policy, decided by the simulator: a
request becomes dispatchable once it has waited ``window_s`` (giving
same-key followers a chance to arrive) or once ``max_batch`` requests
of its key are queued, whichever comes first.  ``window_s = 0`` degrades
to opportunistic batching (batch whatever is already queued).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.serve.requests import Request

__all__ = ["BatchPolicy", "batch_key", "batched_cost", "key_reads_saved"]


@dataclass(frozen=True)
class BatchPolicy:
    """How a fleet forms batches."""

    window_s: float = 0.0  # max time a head request waits for followers
    max_batch: int = 8  # requests per batch, >= 1

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError("window_s must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


def batch_key(request: Request) -> Tuple[str, str]:
    """Requests batch iff they share ``(tenant, kind)``.

    Same tenant implies the same parameter set and cache slice; same
    kind implies the same evaluation-key working set — the conditions
    under which ksk amortization is sound.
    """
    return (request.tenant, request.kind)


def batched_cost(unit: CostReport, size: int) -> CostReport:
    """Cost of a batch of ``size`` requests with unit cost ``unit``.

    Compute and ciphertext/plaintext traffic are per-request; the
    switching-key stream is read once for the whole batch.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    return CostReport(
        ops=OpCount(
            mults=unit.ops.mults * size,
            adds=unit.ops.adds * size,
        ),
        traffic=MemTraffic(
            ct_read=unit.traffic.ct_read * size,
            ct_write=unit.traffic.ct_write * size,
            key_read=unit.traffic.key_read,
            pt_read=unit.traffic.pt_read * size,
        ),
    )


def key_reads_saved(unit: CostReport, size: int) -> int:
    """Switching-key bytes a batch of ``size`` avoids versus unbatched."""
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    return unit.traffic.key_read * (size - 1)
