"""``serve_report.json`` — schema ``repro.serve/v1`` — and its validator.

One report captures a whole scenario run: the scenario identity
(name, seed, duration, pricing config), a provenance block
(:func:`repro.obs.events.provenance`) and one entry per fleet holding
throughput, utilisation, batching efficiency, cost-per-request and the
per-tenant latency/SLA rows.  Every number in a fleet entry is a pure
function of ``(scenario, fleet, seed)`` — reports are byte-identical
across machines, processes and ``--jobs`` splits, which is what the CI
determinism gate asserts.

:func:`validate_serve_report` performs the structural checks without
the ``jsonschema`` dependency, mirroring :mod:`repro.sweep.report`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence

from repro.serve.scenario import Scenario
from repro.serve.simulator import SimResult, TenantResult

__all__ = [
    "ACCEPTED_SCHEMA_IDS",
    "SCHEMA_ID",
    "SERVE_REPORT_SCHEMA",
    "assemble_serve_report",
    "build_serve_report",
    "fleet_row",
    "load_serve_report",
    "scenario_fingerprint",
    "tenant_row",
    "validate_serve_report",
    "write_serve_report",
]

SCHEMA_ID = "repro.serve/v1"

#: Schema ids accepted on load; new reports always use SCHEMA_ID.
ACCEPTED_SCHEMA_IDS = (SCHEMA_ID,)

#: JSON-Schema (draft-07); CI validates with ``jsonschema`` where
#: available and :func:`validate_serve_report` mirrors it without the
#: dependency.
SERVE_REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "repro.serve scenario report",
    "type": "object",
    "required": [
        "schema",
        "scenario",
        "seed",
        "duration_s",
        "config",
        "fingerprint",
        "fleets",
    ],
    "properties": {
        "schema": {"enum": list(ACCEPTED_SCHEMA_IDS)},
        "provenance": {"type": "object"},
        "scenario": {"type": "string"},
        "seed": {"type": "integer", "minimum": 0},
        "duration_s": {"type": "number", "exclusiveMinimum": 0},
        "config": {"type": "string"},
        "fingerprint": {"type": "string", "pattern": "^[0-9a-f]{64}$"},
        "fleets": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": [
                    "fleet",
                    "design",
                    "devices",
                    "scheduler",
                    "cache_policy",
                    "makespan_s",
                    "requests",
                    "throughput_rps",
                    "utilisation",
                    "batching",
                    "cost",
                    "tenants",
                ],
                "properties": {
                    "fleet": {"type": "string"},
                    "design": {"type": "string"},
                    "devices": {"type": "integer", "minimum": 1},
                    "scheduler": {"type": "string"},
                    "cache_policy": {"type": "string"},
                    "makespan_s": {"type": "number", "minimum": 0},
                    "requests": {
                        "type": "object",
                        "required": ["offered", "completed", "bootstraps"],
                    },
                    "throughput_rps": {"type": "number", "minimum": 0},
                    "utilisation": {
                        "type": "number",
                        "minimum": 0,
                        "maximum": 1,
                    },
                    "batching": {
                        "type": "object",
                        "required": [
                            "batches",
                            "mean_size",
                            "key_read_saved_fraction",
                        ],
                    },
                    "cost": {
                        "type": "object",
                        "required": [
                            "device_seconds_per_request",
                            "giga_ops_per_request",
                            "dram_gb_per_request",
                        ],
                    },
                    "tenants": {"type": "array", "minItems": 1},
                },
            },
        },
    },
}


def scenario_fingerprint(scenario: Scenario, seed: int) -> str:
    """SHA-256 over the run identity (scenario, fleets, tenants, seed)."""
    identity = {
        "scenario": scenario.name,
        "seed": seed,
        "duration_s": scenario.duration_s,
        "config": scenario.config,
        "tenants": [tenant.name for tenant in scenario.tenants],
        "fleets": [
            [fleet.name, fleet.design.name, fleet.devices]
            for fleet in scenario.fleets
        ],
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def tenant_row(result: TenantResult) -> Dict[str, Any]:
    """One tenant's JSON entry inside a fleet row."""
    row: Dict[str, Any] = {
        "tenant": result.tenant,
        "offered": result.offered,
        "completed": result.completed,
        "bootstraps": result.bootstraps,
        "latency": (
            result.latency.as_row() if result.latency is not None else None
        ),
        "giga_ops": result.cost.giga_ops(),
        "dram_gb": result.cost.gigabytes(),
        "sla": {
            "p99_target_ms": result.sla_p99_ms,
            "met": result.sla_met,
        },
    }
    return row


def fleet_row(result: SimResult) -> Dict[str, Any]:
    """One fleet's JSON entry in the report."""
    completed = max(result.completed, 1)
    return {
        "fleet": result.fleet,
        "design": result.design,
        "devices": result.devices,
        "scheduler": result.scheduler,
        "cache_policy": result.cache_policy,
        "makespan_s": result.makespan_s,
        "requests": {
            "offered": result.offered,
            "completed": result.completed,
            "bootstraps": result.bootstraps,
        },
        "throughput_rps": result.throughput_rps,
        "utilisation": result.utilisation,
        "batching": {
            "batches": result.batches,
            "mean_size": result.mean_batch_size,
            "key_read_saved_fraction": result.key_read_saved_fraction,
        },
        "cost": {
            "device_seconds_per_request": (
                result.busy_device_seconds / completed
            ),
            "giga_ops_per_request": result.total_cost.giga_ops() / completed,
            "dram_gb_per_request": result.total_cost.gigabytes() / completed,
        },
        "tenants": [tenant_row(tenant) for tenant in result.tenants],
    }


def assemble_serve_report(
    scenario: Scenario, seed: int, rows: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """The ``repro.serve/v1`` report from prebuilt fleet rows.

    The sweep path (``serve.scenario`` evaluator) produces rows in
    worker processes; this assembles the identical report the serial
    path builds, so ``--jobs N`` output is byte-for-byte reproducible.
    """
    from repro.obs.events import provenance as build_provenance

    fingerprint = scenario_fingerprint(scenario, seed)
    report = {
        "schema": SCHEMA_ID,
        "provenance": build_provenance(config_fingerprint=fingerprint),
        "scenario": scenario.name,
        "seed": seed,
        "duration_s": scenario.duration_s,
        "config": scenario.config,
        "fingerprint": fingerprint,
        "fleets": [
            {
                key: row[key]
                for key in sorted(row)
                if key not in ("scenario", "seed")
            }
            for row in rows
        ],
    }
    validate_serve_report(report)
    return report


def build_serve_report(
    scenario: Scenario, seed: int, results: Sequence[SimResult]
) -> Dict[str, Any]:
    """Assemble the ``repro.serve/v1`` report for a finished scenario."""
    return assemble_serve_report(
        scenario, seed, [fleet_row(result) for result in results]
    )


def write_serve_report(report: Dict[str, Any], path: str) -> None:
    """Write a validated report with the repo's canonical JSON layout."""
    validate_serve_report(report)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_serve_report(path: str) -> Optional[Dict[str, Any]]:
    """Load and validate a report; ``None`` when the file does not exist."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except FileNotFoundError:
        return None
    validate_serve_report(report)
    return report


# ----------------------------------------------------------------------
# Dependency-free structural validation (mirrors SERVE_REPORT_SCHEMA)
# ----------------------------------------------------------------------
def validate_serve_report(report: Any) -> None:
    """Structural validation; raises ValueError on the first mismatch."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid serve report: {message}")

    def require_int(value: Any, label: str, minimum: int = 0) -> None:
        if (
            not isinstance(value, int)
            or isinstance(value, bool)
            or value < minimum
        ):
            fail(f"{label} is not an integer >= {minimum}")

    def require_number(value: Any, label: str) -> None:
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or value < 0
        ):
            fail(f"{label} is not a non-negative number")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if report.get("schema") not in ACCEPTED_SCHEMA_IDS:
        fail(
            f"schema id {report.get('schema')!r} not in "
            f"{ACCEPTED_SCHEMA_IDS!r}"
        )
    if report["schema"] == SCHEMA_ID:
        from repro.obs.events import validate_provenance

        validate_provenance(report.get("provenance"), fail)
    for key in (
        "scenario",
        "seed",
        "duration_s",
        "config",
        "fingerprint",
        "fleets",
    ):
        if key not in report:
            fail(f"missing required key {key!r}")
    for key in ("scenario", "config", "fingerprint"):
        if not isinstance(report[key], str):
            fail(f"{key} is not a string")
    require_int(report["seed"], "seed")
    require_number(report["duration_s"], "duration_s")
    if report["duration_s"] <= 0:
        fail("duration_s is not positive")
    fingerprint = report["fingerprint"]
    if len(fingerprint) != 64 or any(
        c not in "0123456789abcdef" for c in fingerprint
    ):
        fail("fingerprint is not a 64-hex-digit SHA-256")
    fleets = report["fleets"]
    if not isinstance(fleets, list) or not fleets:
        fail("fleets is not a non-empty array")
    for index, entry in enumerate(fleets):
        where = f"fleets[{index}]"
        if not isinstance(entry, dict):
            fail(f"{where} is not an object")
        for key in (
            "fleet",
            "design",
            "devices",
            "scheduler",
            "cache_policy",
            "makespan_s",
            "requests",
            "throughput_rps",
            "utilisation",
            "batching",
            "cost",
            "tenants",
        ):
            if key not in entry:
                fail(f"{where} missing {key!r}")
        for key in ("fleet", "design", "scheduler", "cache_policy"):
            if not isinstance(entry[key], str):
                fail(f"{where}.{key} is not a string")
        require_int(entry["devices"], f"{where}.devices", minimum=1)
        require_number(entry["makespan_s"], f"{where}.makespan_s")
        require_number(entry["throughput_rps"], f"{where}.throughput_rps")
        require_number(entry["utilisation"], f"{where}.utilisation")
        if entry["utilisation"] > 1:
            fail(f"{where}.utilisation exceeds 1")
        requests = entry["requests"]
        if not isinstance(requests, dict):
            fail(f"{where}.requests is not an object")
        for key in ("offered", "completed", "bootstraps"):
            require_int(requests.get(key), f"{where}.requests.{key}")
        batching = entry["batching"]
        if not isinstance(batching, dict):
            fail(f"{where}.batching is not an object")
        require_int(batching.get("batches"), f"{where}.batching.batches")
        require_number(
            batching.get("mean_size"), f"{where}.batching.mean_size"
        )
        require_number(
            batching.get("key_read_saved_fraction"),
            f"{where}.batching.key_read_saved_fraction",
        )
        if batching["key_read_saved_fraction"] > 1:
            fail(f"{where}.batching.key_read_saved_fraction exceeds 1")
        cost = entry["cost"]
        if not isinstance(cost, dict):
            fail(f"{where}.cost is not an object")
        for key in (
            "device_seconds_per_request",
            "giga_ops_per_request",
            "dram_gb_per_request",
        ):
            require_number(cost.get(key), f"{where}.cost.{key}")
        tenants = entry["tenants"]
        if not isinstance(tenants, list) or not tenants:
            fail(f"{where}.tenants is not a non-empty array")
        for position, tenant in enumerate(tenants):
            spot = f"{where}.tenants[{position}]"
            if not isinstance(tenant, dict):
                fail(f"{spot} is not an object")
            for key in ("tenant", "offered", "completed", "bootstraps"):
                if key not in tenant:
                    fail(f"{spot} missing {key!r}")
            if not isinstance(tenant["tenant"], str):
                fail(f"{spot}.tenant is not a string")
            for key in ("offered", "completed", "bootstraps"):
                require_int(tenant[key], f"{spot}.{key}")
            latency = tenant.get("latency")
            if latency is not None:
                if not isinstance(latency, dict):
                    fail(f"{spot}.latency is not an object or null")
                for key in ("count", "mean_ms", "p50_ms", "p99_ms"):
                    if key not in latency:
                        fail(f"{spot}.latency missing {key!r}")
            sla = tenant.get("sla")
            if not isinstance(sla, dict):
                fail(f"{spot}.sla is not an object")
            met = sla.get("met")
            if met is not None and not isinstance(met, bool):
                fail(f"{spot}.sla.met is not a boolean or null")
