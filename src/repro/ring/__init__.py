"""RNS polynomial-ring layer: bases, ring elements, and basis-change ops.

This layer implements, with exact integer arithmetic, the machinery the
performance model (:mod:`repro.perf`) only *counts*: residue-number-system
polynomials over ``Z_q[x]/(x^N + 1)``, the fast basis conversion ``NewLimb``
(Eq. 1 of the paper), and the ``ModUp`` / ``ModDown`` / ``Rescale`` /
``PModUp`` algorithms (Algorithms 1, 2 and 5).
"""

from repro.ring.basis import RnsBasis
from repro.ring.polynomial import Representation, RnsPolynomial
from repro.ring.conversion import (
    mod_down,
    mod_up,
    new_limb,
    p_mod_up,
    rescale,
)

__all__ = [
    "RnsBasis",
    "Representation",
    "RnsPolynomial",
    "new_limb",
    "mod_up",
    "mod_down",
    "rescale",
    "p_mod_up",
]
