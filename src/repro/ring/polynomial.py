"""RNS ring elements with limb-wise and slot-wise views.

An :class:`RnsPolynomial` stores one element of ``R_Q = Z_Q[x]/(x^N + 1)`` as
``l`` limbs (one residue vector per limb modulus), each either in coefficient
or evaluation ("NTT") representation.  This mirrors exactly the data layout
whose movement the performance model accounts for: a *limb-wise* access
touches one whole row, a *slot-wise* access (basis conversion) touches one
column across all rows.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Sequence

from repro.numth.crt import crt_reconstruct
from repro.numth.modular import centered_mod
from repro.ring.basis import RnsBasis


class Representation(enum.Enum):
    """Which domain the limb vectors live in."""

    COEFF = "coeff"
    EVAL = "eval"


def _galois_exponent_table(degree: int) -> List[int]:
    """Exponent ``e_k`` such that forward-NTT output slot ``k`` is ``f(psi^e_k)``.

    Our iterative Cooley-Tukey transform (bit-reversal first, natural-order
    output) computes ``X[k] = sum_j a_j psi^j omega^{jk} = f(psi^{2k+1})``,
    so slot ``k`` evaluates the polynomial at ``psi^{2k+1}``.
    """
    return [(2 * k + 1) % (2 * degree) for k in range(degree)]


class RnsPolynomial:
    """One ring element in RNS form.

    Attributes:
        basis: the :class:`RnsBasis` the limbs live over.
        limbs: ``len(basis)`` rows of ``basis.degree`` residues each.
        representation: whether rows hold coefficients or NTT evaluations.
    """

    __slots__ = ("basis", "limbs", "representation")

    def __init__(
        self,
        basis: RnsBasis,
        limbs: Sequence[Sequence[int]],
        representation: Representation,
    ):
        if len(limbs) != len(basis):
            raise ValueError(
                f"expected {len(basis)} limbs, got {len(limbs)}"
            )
        for row, q in zip(limbs, basis):
            if len(row) != basis.degree:
                raise ValueError(
                    f"limb length {len(row)} does not match degree {basis.degree}"
                )
        self.basis = basis
        self.limbs: List[List[int]] = [
            [c % q for c in row] for row, q in zip(limbs, basis)
        ]
        self.representation = representation

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(
        cls,
        basis: RnsBasis,
        rows: List[List[int]],
        representation: Representation,
    ) -> "RnsPolynomial":
        """Trusted constructor for rows that are already canonical.

        Internal call sites (NTT outputs, ``_zip_with`` results, kernel
        rows) always produce residues in ``[0, q)`` with the right
        shape, so the public constructor's per-coefficient ``% q``
        normalisation pass would be pure overhead.  The wrapped object
        takes ownership of ``rows``.
        """
        poly = cls.__new__(cls)
        poly.basis = basis
        poly.limbs = rows
        poly.representation = representation
        return poly

    @classmethod
    def zero(
        cls, basis: RnsBasis, representation: Representation = Representation.EVAL
    ) -> "RnsPolynomial":
        rows = [[0] * basis.degree for _ in basis]
        return cls._wrap(basis, rows, representation)

    @classmethod
    def from_int_coeffs(
        cls, coeffs: Sequence[int], basis: RnsBasis
    ) -> "RnsPolynomial":
        """Build from integer coefficients (possibly negative), coeff form."""
        if len(coeffs) != basis.degree:
            raise ValueError(
                f"expected {basis.degree} coefficients, got {len(coeffs)}"
            )
        rows = [[c % q for c in coeffs] for q in basis]
        return cls._wrap(basis, rows, Representation.COEFF)

    def clone(self) -> "RnsPolynomial":
        return RnsPolynomial._wrap(
            self.basis, [row[:] for row in self.limbs], self.representation
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_limbs(self) -> int:
        return len(self.limbs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RnsPolynomial)
            and self.basis == other.basis
            and self.representation == other.representation
            and self.limbs == other.limbs
        )

    def __repr__(self) -> str:
        return (
            f"RnsPolynomial(limbs={self.num_limbs}, degree={self.basis.degree}, "
            f"form={self.representation.value})"
        )

    def to_int_coeffs(self, centered: bool = True) -> List[int]:
        """CRT-reconstruct the integer coefficient vector (coeff form only)."""
        poly = self.to_coeff()
        moduli = list(poly.basis.moduli)
        total = poly.basis.modulus
        out = []
        for j in range(poly.basis.degree):
            value = crt_reconstruct([row[j] for row in poly.limbs], moduli)
            out.append(centered_mod(value, total) if centered else value)
        return out

    # ------------------------------------------------------------------
    # Representation changes
    # ------------------------------------------------------------------
    def to_eval(self) -> "RnsPolynomial":
        """Return this element in evaluation form (l limb-wise NTTs).

        Runs the batched int64 kernel when the basis supports it
        (:meth:`RnsBasis.fast_kernel`), the pure-Python oracle
        otherwise; both produce bit-identical rows.
        """
        if self.representation is Representation.EVAL:
            return self
        kernel = self.basis.fast_kernel()
        if kernel is not None:
            rows = kernel.forward_rows(self.limbs)
        else:
            rows = [
                self.basis.ntt(i).forward(row)
                for i, row in enumerate(self.limbs)
            ]
        return RnsPolynomial._wrap(self.basis, rows, Representation.EVAL)

    def to_coeff(self) -> "RnsPolynomial":
        """Return this element in coefficient form (l limb-wise iNTTs).

        Same kernel/oracle dispatch as :meth:`to_eval`.
        """
        if self.representation is Representation.COEFF:
            return self
        kernel = self.basis.fast_kernel()
        if kernel is not None:
            rows = kernel.inverse_rows(self.limbs)
        else:
            rows = [
                self.basis.ntt(i).inverse(row)
                for i, row in enumerate(self.limbs)
            ]
        return RnsPolynomial._wrap(self.basis, rows, Representation.COEFF)

    # ------------------------------------------------------------------
    # Arithmetic (limb-wise)
    # ------------------------------------------------------------------
    def _zip_with(
        self, other: "RnsPolynomial", op: Callable[[int, int, int], int]
    ) -> "RnsPolynomial":
        if self.basis != other.basis:
            raise ValueError("operands live over different bases")
        if self.representation is not other.representation:
            raise ValueError(
                f"representation mismatch: {self.representation} vs "
                f"{other.representation}"
            )
        rows = [
            [op(a, b, q) for a, b in zip(ra, rb)]
            for ra, rb, q in zip(self.limbs, other.limbs, self.basis)
        ]
        return RnsPolynomial._wrap(self.basis, rows, self.representation)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._zip_with(other, lambda a, b, q: (a + b) % q)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._zip_with(other, lambda a, b, q: (a - b) % q)

    def __neg__(self) -> "RnsPolynomial":
        rows = [[(-a) % q for a in row] for row, q in zip(self.limbs, self.basis)]
        return RnsPolynomial._wrap(self.basis, rows, self.representation)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Ring multiplication; both operands must be in evaluation form."""
        if self.representation is not Representation.EVAL:
            raise ValueError("ring multiplication requires evaluation form")
        return self._zip_with(other, lambda a, b, q: a * b % q)

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        """Multiply by an integer scalar (valid in either representation)."""
        rows = [
            [a * (scalar % q) % q for a in row]
            for row, q in zip(self.limbs, self.basis)
        ]
        return RnsPolynomial._wrap(self.basis, rows, self.representation)

    def limb_scalar_mul(self, scalars: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (per-limb constants)."""
        if len(scalars) != self.num_limbs:
            raise ValueError(
                f"expected {self.num_limbs} scalars, got {len(scalars)}"
            )
        rows = [
            [a * (s % q) % q for a in row]
            for row, s, q in zip(self.limbs, scalars, self.basis)
        ]
        return RnsPolynomial._wrap(self.basis, rows, self.representation)

    # ------------------------------------------------------------------
    # Galois automorphisms
    # ------------------------------------------------------------------
    def automorph(self, t: int) -> "RnsPolynomial":
        """Apply the Galois automorphism ``f(x) -> f(x^t)`` for odd ``t``.

        In coefficient form this permutes coefficients with sign flips
        (``x^j -> ± x^{jt mod N}``); in evaluation form it is a pure
        permutation of the evaluation points — which is why the paper's
        ``Automorph`` sub-operation costs zero modular operations.
        """
        two_n = 2 * self.basis.degree
        t = t % two_n
        if t % 2 == 0:
            raise ValueError(f"automorphism index must be odd, got {t}")
        if self.representation is Representation.COEFF:
            return self._automorph_coeff(t)
        return self._automorph_eval(t)

    def _automorph_coeff(self, t: int) -> "RnsPolynomial":
        n = self.basis.degree
        two_n = 2 * n
        rows = []
        for row, q in zip(self.limbs, self.basis):
            out = [0] * n
            for j, a in enumerate(row):
                e = j * t % two_n
                if e < n:
                    out[e] = (out[e] + a) % q
                else:
                    out[e - n] = (out[e - n] - a) % q
            rows.append(out)
        return RnsPolynomial._wrap(self.basis, rows, Representation.COEFF)

    def _automorph_eval(self, t: int) -> "RnsPolynomial":
        n = self.basis.degree
        two_n = 2 * n
        exps = _galois_exponent_table(n)
        index_of_exp = {e: k for k, e in enumerate(exps)}
        # Slot k of the output evaluates f at psi^{e_k * t}.
        source = [index_of_exp[exps[k] * t % two_n] for k in range(n)]
        rows = [[row[s] for s in source] for row in self.limbs]
        return RnsPolynomial._wrap(self.basis, rows, Representation.EVAL)
