"""RNS basis-change algorithms: NewLimb, ModUp, ModDown, Rescale, PModUp.

These are exact-arithmetic implementations of Equations (1) and Algorithms
1, 2 and 5 of the MAD paper.  ``new_limb`` is the *approximate* fast basis
conversion standard in full-RNS CKKS (Cheon et al., SAC 2018): its output is
``x + u*Q (mod p)`` for some small ``0 <= u < l``; the excess ``u*Q`` is
absorbed into ciphertext noise exactly as in production FHE libraries.
"""

from __future__ import annotations

from typing import List, Sequence

from repro import kernels
from repro.numth.modular import mod_inverse
from repro.ring.basis import RnsBasis
from repro.ring.polynomial import Representation, RnsPolynomial


def new_limb(
    coeff_rows: Sequence[Sequence[int]],
    source_basis: RnsBasis,
    target_modulus: int,
) -> List[int]:
    """Fast basis conversion of a coefficient-form element to a new modulus.

    Implements Eq. (1):  ``[x]_p = sum_i [[x]_{q_i} * Q~_i]_{q_i} * Q*_i mod p``.

    This is the paper's *slot-wise* operation: each output coefficient needs
    the matching coefficient from every source limb.

    Args:
        coeff_rows: one residue row per source limb, in coefficient form.
        source_basis: the basis the rows live over.
        target_modulus: the modulus ``p`` of the limb to synthesise.

    Returns:
        The new limb's residue row modulo ``target_modulus``.
    """
    if len(coeff_rows) != len(source_basis):
        raise ValueError(
            f"got {len(coeff_rows)} rows for a {len(source_basis)}-limb basis"
        )
    degree = source_basis.degree
    q_hat_inv = source_basis.q_hat_inverses()
    q_star = source_basis.q_stars_mod(target_modulus)
    out = [0] * degree
    for row, q, hat_inv, star in zip(
        coeff_rows, source_basis, q_hat_inv, q_star
    ):
        for j in range(degree):
            out[j] += row[j] * hat_inv % q * star
    return [v % target_modulus for v in out]


def _new_limb_rows(
    coeff_rows: Sequence[Sequence[int]],
    source_basis: RnsBasis,
    targets: Sequence[int],
) -> List[List[int]]:
    """All of ``targets``' new limbs at once, kernel-dispatched.

    The vectorized path (:func:`repro.kernels.new_limbs_matrix`) needs
    every source *and* target modulus inside the int64 bound; otherwise
    each target limb falls back to the pure-Python :func:`new_limb`.
    Both produce identical canonical rows.
    """
    target_list = [int(t) for t in targets]
    if (
        kernels.enabled()
        and kernels.moduli_fit(source_basis.moduli)
        and kernels.moduli_fit(target_list)
    ):
        return kernels.new_limbs_matrix(
            coeff_rows,
            list(source_basis.moduli),
            source_basis.q_hat_inverses(),
            [source_basis.q_stars_mod(t) for t in target_list],
            target_list,
        )
    return [new_limb(coeff_rows, source_basis, t) for t in target_list]


def mod_up(poly: RnsPolynomial, extension: Sequence[int]) -> RnsPolynomial:
    """Extend the RNS basis of ``poly`` by ``extension`` moduli (Algorithm 1).

    Input and output are in evaluation representation; the original limbs
    pass through untouched (the "no need to NTT the input limbs" note of
    Algorithm 1) and each new limb costs one slot-wise conversion plus one
    limb-wise NTT.
    """
    if poly.representation is not Representation.EVAL:
        raise ValueError("mod_up expects evaluation representation")
    if not extension:
        raise ValueError("extension basis must be non-empty")
    coeff = poly.to_coeff()
    new_rows = _new_limb_rows(coeff.limbs, poly.basis, extension)
    kernel = poly.basis.fast_kernel_for(extension)
    if kernel is not None:
        new_rows = kernel.forward_rows(new_rows)
    else:
        new_rows = [
            poly.basis.ntt_for_modulus(p).forward(row)
            for p, row in zip(extension, new_rows)
        ]
    merged = RnsBasis(poly.basis.degree, poly.basis.moduli + tuple(extension))
    return RnsPolynomial._wrap(
        merged, list(poly.limbs) + new_rows, Representation.EVAL
    )


def mod_down(poly: RnsPolynomial, drop: int) -> RnsPolynomial:
    """Drop the last ``drop`` limbs while dividing by their product (Alg. 2).

    For input ``[x]_{B∪B'}`` with ``P = prod(B')``, returns ``[P^{-1} x]_B``
    up to the small rounding error inherent to approximate basis conversion.
    Input and output are in evaluation representation.
    """
    if poly.representation is not Representation.EVAL:
        raise ValueError("mod_down expects evaluation representation")
    if not 1 <= drop < poly.num_limbs:
        raise ValueError(
            f"cannot drop {drop} of {poly.num_limbs} limbs"
        )
    keep = poly.num_limbs - drop
    target_basis = poly.basis.prefix(keep)
    dropped_basis = RnsBasis(poly.basis.degree, poly.basis.moduli[keep:])
    p_product = dropped_basis.modulus

    # Line 1 (optimised): only the dropped limbs need coefficient form.
    dropped_kernel = poly.basis.fast_kernel_for(dropped_basis.moduli)
    if dropped_kernel is not None:
        dropped_coeff: List[List[int]] = dropped_kernel.inverse_rows(
            poly.limbs[keep:]
        )
    else:
        dropped_coeff = [
            poly.basis.ntt_for_modulus(q).inverse(row)
            for row, q in zip(poly.limbs[keep:], dropped_basis)
        ]

    # Line 3: slot-wise conversion of the dropped part into every kept limb.
    hats = _new_limb_rows(dropped_coeff, dropped_basis, target_basis.moduli)
    target_kernel = target_basis.fast_kernel()
    if target_kernel is not None:
        hat_evals: List[List[int]] = target_kernel.forward_rows(hats)
    else:
        hat_evals = [
            target_basis.ntt(i).forward(hat) for i, hat in enumerate(hats)
        ]

    # Line 4: (x - x_hat) * P^{-1} mod q, pointwise in evaluation form.
    p_invs = [mod_inverse(p_product % q, q) for q in target_basis]
    if kernels.enabled() and kernels.moduli_fit(target_basis.moduli):
        rows = kernels.sub_scale_mod(
            poly.limbs[:keep], hat_evals, p_invs, list(target_basis.moduli)
        )
    else:
        rows = [
            [(a - h) * p_inv % q for a, h in zip(row, hat_eval)]
            for row, hat_eval, p_inv, q in zip(
                poly.limbs, hat_evals, p_invs, target_basis
            )
        ]
    return RnsPolynomial._wrap(target_basis, rows, Representation.EVAL)


def rescale(poly: RnsPolynomial) -> RnsPolynomial:
    """Divide by the last limb modulus and drop it (specialised ModDown).

    This is the CKKS ``Rescale``: shrinking the scaling factor from
    ``Delta^2`` back to ``~Delta`` after a multiplication.
    """
    if poly.num_limbs < 2:
        raise ValueError("cannot rescale a single-limb element")
    return mod_down(poly, 1)


def p_mod_up(poly: RnsPolynomial, extension: Sequence[int]) -> RnsPolynomial:
    """Lift ``x in R_Q`` to ``P*x in R_PQ`` without basis conversion (Alg. 5).

    Multiplies each existing limb by ``P mod q_i`` and appends all-zero limbs
    for the extension moduli (since ``P*x = 0 mod p`` for each ``p | P``).
    Purely limb-wise — this is what makes "linear functions in the raised
    basis" cheap and enables the ModDown merge/hoisting optimizations.
    """
    if not extension:
        raise ValueError("extension basis must be non-empty")
    p_product = 1
    for p in extension:
        p_product *= p
    scaled = poly.scalar_mul(p_product)
    zero_rows = [[0] * poly.basis.degree for _ in extension]
    merged = RnsBasis(poly.basis.degree, poly.basis.moduli + tuple(extension))
    return RnsPolynomial._wrap(
        merged, list(scaled.limbs) + zero_rows, poly.representation
    )
