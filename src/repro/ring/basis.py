"""RNS bases: ordered sets of NTT-friendly prime limb moduli."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import kernels
from repro.kernels.ntt import BatchNttKernel
from repro.numth import NttContext, find_ntt_primes
from repro.numth.modular import mod_inverse

# NTT plans are expensive to build; share them process-wide per (n, q).
_NTT_CACHE: Dict[Tuple[int, int], NttContext] = {}

# Batched int64 kernels, keyed by (degree, moduli tuple).  The cache is
# keyed independently of RnsBasis identity so derived bases (prefixes,
# extensions, the dropped tail of a ModDown) reuse plans too.
_KERNEL_CACHE: Dict[Tuple[int, Tuple[int, ...]], BatchNttKernel] = {}


def _ntt_for(degree: int, modulus: int) -> NttContext:
    key = (degree, modulus)
    ctx = _NTT_CACHE.get(key)
    if ctx is None:
        ctx = NttContext(degree, modulus)
        _NTT_CACHE[key] = ctx
    return ctx


def _kernel_for(degree: int, moduli: Tuple[int, ...]) -> BatchNttKernel:
    key = (degree, moduli)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        contexts = [_ntt_for(degree, q) for q in moduli]
        kernel = BatchNttKernel(degree, moduli, contexts)
        _KERNEL_CACHE[key] = kernel
    return kernel


class RnsBasis:
    """An ordered RNS basis ``{q_1, ..., q_l}`` for ring degree ``N``.

    A basis is immutable; deriving related bases (dropping the last limb for
    a rescale, extending by special primes for a ModUp) returns new objects.
    """

    def __init__(self, degree: int, moduli: Sequence[int]):
        if degree < 2 or degree & (degree - 1):
            raise ValueError(f"degree must be a power of two, got {degree}")
        if not moduli:
            raise ValueError("a basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("basis moduli must be distinct")
        for q in moduli:
            if (q - 1) % (2 * degree) != 0:
                raise ValueError(
                    f"modulus {q} is not NTT-friendly for degree {degree}"
                )
        self.degree = degree
        self.moduli: Tuple[int, ...] = tuple(moduli)

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        degree: int,
        limb_bits: int,
        count: int,
        exclude: Iterable[int] = (),
    ) -> "RnsBasis":
        """Generate a fresh basis of ``count`` primes of ``limb_bits`` bits."""
        return cls(degree, find_ntt_primes(limb_bits, degree, count, list(exclude)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RnsBasis)
            and self.degree == other.degree
            and self.moduli == other.moduli
        )

    def __hash__(self) -> int:
        return hash((self.degree, self.moduli))

    def __repr__(self) -> str:
        bits = [q.bit_length() for q in self.moduli]
        return f"RnsBasis(degree={self.degree}, limbs={len(self)}, bits={bits})"

    # ------------------------------------------------------------------
    @property
    def modulus(self) -> int:
        """The full modulus ``Q``: product of all limb moduli."""
        product = 1
        for q in self.moduli:
            product *= q
        return product

    def ntt(self, index: int) -> NttContext:
        """The NTT plan for limb ``index``."""
        return _ntt_for(self.degree, self.moduli[index])

    def ntt_for_modulus(self, modulus: int) -> NttContext:
        """The NTT plan for an arbitrary compatible modulus."""
        return _ntt_for(self.degree, modulus)

    def fast_kernel(self) -> Optional[BatchNttKernel]:
        """The batched int64 NTT kernel for this basis, if applicable.

        Returns ``None`` when the fast path is switched off
        (:func:`repro.kernels.enabled`) or any limb modulus exceeds the
        int64 bound — callers then run the pure-Python oracle, which is
        bit-exact equal by the kernels' differential contract.
        """
        if not kernels.enabled() or not kernels.moduli_fit(self.moduli):
            return None
        return _kernel_for(self.degree, self.moduli)

    def fast_kernel_for(
        self, moduli: Sequence[int]
    ) -> Optional[BatchNttKernel]:
        """A batched kernel for an arbitrary compatible moduli tuple.

        Used by basis conversion for limb sets that are not this basis
        (a ModUp extension, a ModDown dropped tail).  Same gating as
        :meth:`fast_kernel`.
        """
        mods = tuple(int(q) for q in moduli)
        if not mods or not kernels.enabled() or not kernels.moduli_fit(mods):
            return None
        return _kernel_for(self.degree, mods)

    # ------------------------------------------------------------------
    # Derived bases
    # ------------------------------------------------------------------
    def prefix(self, count: int) -> "RnsBasis":
        """The sub-basis of the first ``count`` limbs."""
        if not 1 <= count <= len(self):
            raise ValueError(f"prefix length {count} outside [1, {len(self)}]")
        return RnsBasis(self.degree, self.moduli[:count])

    def drop_last(self, count: int = 1) -> "RnsBasis":
        """Drop the last ``count`` limbs (the shape of a rescale)."""
        if not 1 <= count < len(self):
            raise ValueError(
                f"cannot drop {count} of {len(self)} limbs (at least one must remain)"
            )
        return RnsBasis(self.degree, self.moduli[:-count])

    def extended(self, extra: Sequence[int]) -> "RnsBasis":
        """The basis ``B ∪ B'`` with ``extra`` appended (the shape of a ModUp)."""
        return RnsBasis(self.degree, self.moduli + tuple(extra))

    # ------------------------------------------------------------------
    # Fast-basis-conversion precomputation (Eq. 1 of the paper)
    # ------------------------------------------------------------------
    def q_hat_inverses(self) -> List[int]:
        """``(Q/q_i)^{-1} mod q_i`` for each limb — the ``Q~_i`` of Eq. 1."""
        total = self.modulus
        return [
            mod_inverse(total // q % q, q) for q in self.moduli
        ]

    def q_stars_mod(self, target: int) -> List[int]:
        """``(Q/q_i) mod target`` for each limb — the ``Q*_i`` of Eq. 1."""
        total = self.modulus
        return [total // q % target for q in self.moduli]
