"""Differential validation: simulated DRAM traffic vs the analytical model.

For one ``(CkksParams, MADConfig, cache size)`` triple, every primitive's
schedule is replayed through :class:`~repro.memsim.simulator
.MemorySimulator` and the per-stream DRAM bytes are compared against the
analytical totals of :class:`~repro.perf.primitives.PrimitiveCosts` — the
same inputs the paper's Fig. 2 ladder is computed from.  The analytical
side is evaluated with ``cache=None`` (no auto-disabling of unsupported
optimizations), so the comparison asks the sharp question: *does this
optimization's claimed traffic actually materialize at this capacity?*

Outcomes per primitive:

* **exact / within tolerance** — the analytical formula is reproduced by
  an actual replacement policy at this capacity.
* **``fit_broken``** (simulated > analytical) — the optimization's
  working set does not fit; the analytical fit threshold is broken.
  Divergences the model predicts (see :data:`EXPECTED_FIT_BREAKS`) must
  *actually* diverge — a stale expectation fails the gate too, so known
  breaks are asserted and documented, never silently tolerated.

The report is emitted under schema ``repro.memsim/v1.1``
(:data:`MEMSIM_REPORT_SCHEMA`; v1.1 adds the required ``provenance``
block, v1 reports stay readable) and :func:`validate_memsim_report`
performs the structural checks without the ``jsonschema`` dependency,
mirroring :mod:`repro.obs.export`.

Cache sizes follow :class:`repro.perf.cache.CacheModel`: **decimal**
megabytes (``MB = 10**6``) floor-divided by ``params.limb_bytes`` — see
the byte-convention note in ``perf/cache.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.memsim.schedules import ScheduleBuilder
from repro.memsim.simulator import MemorySimulator, SimResult
from repro.memsim.policies import POLICIES, make_policy
from repro.obs import state as obs
from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams
from repro.perf.cache import mb_to_bytes
from repro.perf.events import MemTraffic
from repro.perf.optimizations import CACHING_LADDER, MADConfig
from repro.sweep.spec import SweepAxis, SweepSpec

SCHEMA_ID = "repro.memsim/v1.1"

#: Schema ids accepted by :func:`validate_memsim_report`; new reports are
#: always written with :data:`SCHEMA_ID`.
ACCEPTED_SCHEMA_IDS = ("repro.memsim/v1", SCHEMA_ID)

#: Streams compared, matching :class:`repro.perf.events.MemTraffic`.
STREAM_FIELDS = ("ct_read", "ct_write", "key_read", "pt_read")

#: Default per-stream relative-error gate.
DEFAULT_TOLERANCE = 0.05

#: Primitives validated per ladder rung (top-level limb count).
LADDER_PRIMITIVES = (
    "decomp",
    "mod_up",
    "ksk_inner_product",
    "mod_down",
    "key_switch",
    "mult",
    "rotate",
    "pt_mat_vec_mult",
    "bootstrap",
)

#: The Fig. 2 replication matrix: (rung label, cache size in decimal MB).
#: Each rung runs at the capacity the paper's ladder names for it; the
#: final rung additionally runs at a capacity where the O(beta) x
#: limb-reorder composition genuinely fits (see EXPECTED_FIT_BREAKS).
LADDER_RUNS: Tuple[Tuple[str, float], ...] = (
    ("Baseline", 2.0),
    ("1-limb Cache", 2.0),
    ("beta-limb Cache", 8.0),
    ("alpha-limb Cache", 32.0),
    ("Limb Re-order", 32.0),
    ("Limb Re-order", 192.0),
)

#: Documented analytical fit-threshold breaks for BASELINE_JUNG.
#:
#: The O(beta) x limb-reorder composition inside PtMatVecMult keeps every
#: baby rotation's special-limb accumulators on chip simultaneously:
#: ``2 * num_special_limbs * (baby - 1)`` limbs (= 2*12*7 = 168 limbs,
#: ~176 MB at 1 MiB/limb) — while the paper's ladder evaluates the rung
#: at 32 MB (30 limbs).  The per-rotation claims (output writes elided,
#: ModDown input resident) therefore cannot hold simultaneously with the
#: one-time digit read at 32 MB: simulated ct_read exceeds analytical by
#: >150% with thousands of pin failures.  Bootstrap inherits the break
#: through its CoeffToSlot/SlotToCoeff units.  At 192 MB the composition
#: fits and both are bit-exact again.
EXPECTED_FIT_BREAKS: Dict[Tuple[str, float, str], str] = {
    (
        "Limb Re-order",
        32.0,
        "pt_mat_vec_mult",
    ): (
        "O(beta) x limb-reorder needs 2*k*(baby-1) = 168 resident limbs "
        "(~176 MB); 32 MB holds 30"
    ),
    (
        "Limb Re-order",
        32.0,
        "bootstrap",
    ): (
        "inherited from pt_mat_vec_mult: CoeffToSlot/SlotToCoeff units "
        "exceed 32 MB under the O(beta) x limb-reorder composition"
    ),
}

_PARAM_SETS: Dict[str, CkksParams] = {
    "baseline": BASELINE_JUNG,
    "optimal": MAD_OPTIMAL,
}

_CONFIGS = {
    "none": MADConfig.none,
    "caching": MADConfig.caching_only,
    "all": MADConfig.all,
}


#: JSON-Schema (draft-07) for the memsim report; CI validates emitted
#: reports with ``jsonschema`` where available and
#: :func:`validate_memsim_report` performs the same checks without it.
MEMSIM_REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "repro.memsim differential validation report",
    "type": "object",
    "required": [
        "schema",
        "params",
        "policy",
        "tolerance",
        "block_bytes",
        "runs",
        "passed",
    ],
    "properties": {
        "schema": {"enum": list(ACCEPTED_SCHEMA_IDS)},
        "provenance": {"type": "object"},
        "params": {"type": "string"},
        "policy": {"enum": sorted(POLICIES)},
        "tolerance": {"type": "number", "minimum": 0},
        "block_bytes": {"type": "integer", "minimum": 1},
        "passed": {"type": "boolean"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "label",
                    "cache_mb",
                    "capacity_limbs",
                    "primitives",
                    "passed",
                ],
                "properties": {
                    "label": {"type": "string"},
                    "cache_mb": {"type": "number", "minimum": 0},
                    "capacity_limbs": {"type": "integer", "minimum": 0},
                    "passed": {"type": "boolean"},
                    "primitives": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "primitive",
                                "streams",
                                "max_abs_rel_error",
                                "pin_failures",
                                "fit_broken",
                                "expected_fit_break",
                                "passed",
                            ],
                            "properties": {
                                "primitive": {"type": "string"},
                                "max_abs_rel_error": {"type": "number"},
                                "pin_failures": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "fit_broken": {"type": "boolean"},
                                "expected_fit_break": {"type": "boolean"},
                                "reason": {"type": ["string", "null"]},
                                "passed": {"type": "boolean"},
                                "streams": {
                                    "type": "object",
                                    "required": list(STREAM_FIELDS),
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


# ----------------------------------------------------------------------
# Core comparison
# ----------------------------------------------------------------------
def compare_traffic(
    analytical: MemTraffic, result: SimResult, tolerance: float
) -> Dict[str, Any]:
    """Per-stream comparison of one replay against its analytical claim."""
    streams: Dict[str, Dict[str, Any]] = {}
    max_abs = 0.0
    fit_broken = False
    for field in STREAM_FIELDS:
        a = getattr(analytical, field)
        s = getattr(result.traffic, field)
        if a:
            rel = (s - a) / a
        else:
            rel = 0.0 if s == 0 else float("inf")
        max_abs = max(max_abs, abs(rel))
        if rel > tolerance:
            # Simulated exceeds analytical: the fit threshold the formula
            # assumed does not hold at this capacity.
            fit_broken = True
        streams[field] = {
            "analytical": a,
            "simulated": s,
            "rel_error": rel if rel != float("inf") else -1.0,
        }
    return {
        "streams": streams,
        "max_abs_rel_error": max_abs if max_abs != float("inf") else -1.0,
        "pin_failures": result.pin_failures,
        "fit_broken": fit_broken,
        "within_tolerance": max_abs <= tolerance,
    }


def _primitive_traffic(
    builder: ScheduleBuilder,
    name: str,
    capacity_bytes: int,
    policy_name: str,
) -> Tuple[MemTraffic, MemTraffic, int]:
    """(analytical, simulated, pin_failures) for one primitive."""
    params = builder.params
    limbs = params.max_limbs
    if name == "bootstrap":
        analytical = MemTraffic()
        simulated = MemTraffic()
        pin_failures = 0
        for unit in builder.bootstrap_units():
            result = MemorySimulator(
                capacity_bytes, make_policy(policy_name)
            ).replay(unit.trace)
            analytical = analytical + unit.analytical.traffic.scaled(
                unit.scale
            )
            simulated = simulated + result.traffic.scaled(unit.scale)
            pin_failures += result.pin_failures * unit.scale
        return analytical, simulated, pin_failures
    if name == "pt_mat_vec_mult":
        schedule = builder.pt_mat_vec_mult(limbs, builder.dft_diagonals())
    elif name == "mod_raise":
        schedule = builder.mod_raise(2, limbs)
    else:
        schedule = getattr(builder, name)(limbs)
    result = MemorySimulator(
        capacity_bytes, make_policy(policy_name)
    ).replay(schedule.trace)
    return schedule.analytical.traffic, result.traffic, result.pin_failures


def validate_primitive(
    builder: ScheduleBuilder,
    name: str,
    cache_mb: float,
    policy_name: str = "pin",
    tolerance: float = DEFAULT_TOLERANCE,
    expected_break_reason: Optional[str] = None,
) -> Dict[str, Any]:
    """Validate one primitive at one capacity; returns a report entry.

    An entry passes when it is within tolerance and no break was
    expected, or when an expected break actually materialized (stale
    expectations fail — a fixed fit threshold must be promoted back to a
    plain pass).
    """
    capacity_bytes = mb_to_bytes(cache_mb)
    analytical, simulated, pin_failures = _primitive_traffic(
        builder, name, capacity_bytes, policy_name
    )
    result = SimResult(
        traffic=simulated,
        stats=_stats_for(pin_failures),
        capacity_blocks=capacity_bytes // builder.params.limb_bytes,
        block_bytes=builder.params.limb_bytes,
        policy=policy_name,
    )
    comparison = compare_traffic(analytical, result, tolerance)
    expected = expected_break_reason is not None
    if expected:
        passed = comparison["fit_broken"]
    else:
        passed = comparison["within_tolerance"]
    entry = {
        "primitive": name,
        "streams": comparison["streams"],
        "max_abs_rel_error": comparison["max_abs_rel_error"],
        "pin_failures": pin_failures,
        "fit_broken": comparison["fit_broken"],
        "expected_fit_break": expected,
        "reason": expected_break_reason,
        "passed": passed,
    }
    obs.count("memsim.validate.primitives")
    if not passed:
        obs.count("memsim.validate.failures")
    return entry


def _stats_for(pin_failures: int):
    from repro.memsim.accounting import SimStats

    return SimStats(pin_failures=pin_failures)


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
def ladder_sweep_spec(
    params_key: str = "baseline",
    policy_name: str = "pin",
    tolerance: float = DEFAULT_TOLERANCE,
    runs: Optional[Sequence[Tuple[str, MADConfig, float]]] = None,
    primitives: Optional[Sequence[str]] = None,
) -> SweepSpec:
    """The Fig. 2 ladder as a declarative sweep: rung × primitive.

    The ``rung`` axis carries ``(label, config, cache_mb)`` triples (the
    ladder pairs each config with its paper capacity, so the pairs are a
    single axis, not a cross product); the ``primitive`` axis lists the
    validated primitives in canonical order.
    """
    params = _PARAM_SETS[params_key]
    selected = tuple(primitives) if primitives else LADDER_PRIMITIVES
    selected = tuple(
        name
        for name in selected
        if name != "bootstrap" or params.supports_bootstrapping()
    )
    if runs is None:
        by_label = dict(CACHING_LADDER)
        runs = [
            (label, by_label[label], cache_mb)
            for label, cache_mb in LADDER_RUNS
        ]
    expected = EXPECTED_FIT_BREAKS if params_key == "baseline" else {}
    rungs = tuple(
        (label, config, float(cache_mb)) for label, config, cache_mb in runs
    )
    return SweepSpec(
        name="memsim-ladder",
        evaluator="memsim.primitive",
        axes=(SweepAxis("rung", rungs), SweepAxis("primitive", selected)),
        context={
            "params_key": params_key,
            "policy": policy_name,
            "tolerance": tolerance,
            "expected": dict(expected),
        },
    )


def run_validation(
    params_key: str = "baseline",
    policy_name: str = "pin",
    tolerance: float = DEFAULT_TOLERANCE,
    runs: Optional[Sequence[Tuple[str, MADConfig, float]]] = None,
    primitives: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> Dict[str, Any]:
    """Run the differential validation matrix and assemble the report.

    Without ``runs``, the Fig. 2 caching ladder is validated at the
    paper's cache sizes (:data:`LADDER_RUNS`); known fit-threshold breaks
    from :data:`EXPECTED_FIT_BREAKS` are asserted (baseline params only —
    other parameter sets report divergences as plain failures).  The
    rung × primitive matrix dispatches through :mod:`repro.sweep`;
    ``jobs>1`` fans cells out over worker processes with bit-identical
    report output (per-primitive obs counters are recorded only at
    ``jobs=1``, where validation runs in-process).
    """
    from repro.sweep.engine import run_sweep

    params = _PARAM_SETS[params_key]
    spec = ladder_sweep_spec(params_key, policy_name, tolerance, runs, primitives)
    rungs = spec.axes[0].values
    selected = spec.axes[1].values
    with obs.span("memsim:validate", params=params_key, policy=policy_name):
        outcome = run_sweep(spec, jobs=jobs)

    report_runs: List[Dict[str, Any]] = []
    per_rung = len(selected)
    for position, (label, config, cache_mb) in enumerate(rungs):
        entries = outcome.values[position * per_rung : (position + 1) * per_rung]
        report_runs.append(
            {
                "label": label,
                "config": _config_dict(config),
                "cache_mb": cache_mb,
                "capacity_limbs": mb_to_bytes(cache_mb) // params.limb_bytes,
                "primitives": entries,
                "passed": all(e["passed"] for e in entries),
            }
        )
    from repro.obs.events import provenance as build_provenance

    return {
        "schema": SCHEMA_ID,
        "provenance": build_provenance(
            config_fingerprint=spec.fingerprint()
        ),
        "params": params_key,
        "policy": policy_name,
        "tolerance": tolerance,
        "block_bytes": params.limb_bytes,
        "runs": report_runs,
        "passed": all(r["passed"] for r in report_runs),
    }


def _config_dict(config: MADConfig) -> Dict[str, bool]:
    from dataclasses import asdict

    return {k: bool(v) for k, v in asdict(config).items()}


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a memsim report."""
    lines = [
        f"memsim differential validation — params={report['params']} "
        f"policy={report['policy']} tol={report['tolerance']:.0%}",
        "",
    ]
    header = (
        f"{'Rung':18} {'Cache':>8} {'Primitive':18} {'max |rel|':>10} "
        f"{'pins!':>6}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for run in report["runs"]:
        for entry in run["primitives"]:
            if entry["passed"] and not entry["fit_broken"]:
                status = "ok"
            elif entry["passed"]:
                status = "fit break (expected)"
            elif entry["fit_broken"]:
                status = "FIT BREAK"
            else:
                status = "FAIL"
            lines.append(
                f"{run['label']:18} {run['cache_mb']:6.0f}MB "
                f"{entry['primitive']:18} "
                f"{entry['max_abs_rel_error']:10.4f} "
                f"{entry['pin_failures']:6d}  {status}"
            )
    lines.append("-" * len(header))
    lines.append(f"overall: {'PASS' if report['passed'] else 'FAIL'}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Dependency-free structural validation (mirrors MEMSIM_REPORT_SCHEMA)
# ----------------------------------------------------------------------
def validate_memsim_report(report: Any) -> None:
    """Structural validation; raises ValueError on the first mismatch."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid memsim report: {message}")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if report.get("schema") not in ACCEPTED_SCHEMA_IDS:
        fail(
            f"schema id {report.get('schema')!r} not in "
            f"{ACCEPTED_SCHEMA_IDS!r}"
        )
    if report["schema"] == SCHEMA_ID:
        from repro.obs.events import validate_provenance

        validate_provenance(report.get("provenance"), fail)
    for key in (
        "params",
        "policy",
        "tolerance",
        "block_bytes",
        "runs",
        "passed",
    ):
        if key not in report:
            fail(f"missing required key {key!r}")
    if not isinstance(report["params"], str):
        fail("params is not a string")
    if report["policy"] not in POLICIES:
        fail(f"unknown policy {report['policy']!r}")
    tol = report["tolerance"]
    if not isinstance(tol, (int, float)) or isinstance(tol, bool) or tol < 0:
        fail("tolerance is not a non-negative number")
    bb = report["block_bytes"]
    if not isinstance(bb, int) or isinstance(bb, bool) or bb < 1:
        fail("block_bytes is not a positive integer")
    if not isinstance(report["passed"], bool):
        fail("passed is not a boolean")
    if not isinstance(report["runs"], list):
        fail("runs is not an array")

    for index, run in enumerate(report["runs"]):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            fail(f"{where} is not an object")
        for key in ("label", "cache_mb", "capacity_limbs", "primitives", "passed"):
            if key not in run:
                fail(f"{where} missing {key!r}")
        if not isinstance(run["label"], str):
            fail(f"{where}.label is not a string")
        cm = run["cache_mb"]
        if not isinstance(cm, (int, float)) or isinstance(cm, bool) or cm < 0:
            fail(f"{where}.cache_mb is not a non-negative number")
        cl = run["capacity_limbs"]
        if not isinstance(cl, int) or isinstance(cl, bool) or cl < 0:
            fail(f"{where}.capacity_limbs is not a non-negative integer")
        if not isinstance(run["passed"], bool):
            fail(f"{where}.passed is not a boolean")
        if not isinstance(run["primitives"], list):
            fail(f"{where}.primitives is not an array")
        for j, entry in enumerate(run["primitives"]):
            here = f"{where}.primitives[{j}]"
            if not isinstance(entry, dict):
                fail(f"{here} is not an object")
            for key in (
                "primitive",
                "streams",
                "max_abs_rel_error",
                "pin_failures",
                "fit_broken",
                "expected_fit_break",
                "passed",
            ):
                if key not in entry:
                    fail(f"{here} missing {key!r}")
            if not isinstance(entry["primitive"], str):
                fail(f"{here}.primitive is not a string")
            mre = entry["max_abs_rel_error"]
            if not isinstance(mre, (int, float)) or isinstance(mre, bool):
                fail(f"{here}.max_abs_rel_error is not a number")
            pf = entry["pin_failures"]
            if not isinstance(pf, int) or isinstance(pf, bool) or pf < 0:
                fail(f"{here}.pin_failures is not a non-negative integer")
            for key in ("fit_broken", "expected_fit_break", "passed"):
                if not isinstance(entry[key], bool):
                    fail(f"{here}.{key} is not a boolean")
            streams = entry["streams"]
            if not isinstance(streams, dict):
                fail(f"{here}.streams is not an object")
            for field in STREAM_FIELDS:
                stream = streams.get(field)
                if not isinstance(stream, dict):
                    fail(f"{here}.streams.{field} is not an object")
                for key in ("analytical", "simulated"):
                    value = stream.get(key)
                    if (
                        not isinstance(value, int)
                        or isinstance(value, bool)
                        or value < 0
                    ):
                        fail(
                            f"{here}.streams.{field}.{key} is not a "
                            "non-negative integer"
                        )
                rel = stream.get("rel_error")
                if not isinstance(rel, (int, float)) or isinstance(rel, bool):
                    fail(f"{here}.streams.{field}.rel_error is not a number")
