"""repro.memsim — trace-driven memory-hierarchy simulation.

The package closes the loop on the analytical DRAM-traffic model: the
paper's per-pass formulas (:mod:`repro.perf`) *claim* what each MAD
optimization level moves to and from DRAM; this package *checks* those
claims by generating limb-granularity access traces for each primitive
(:mod:`repro.memsim.schedules`), replaying them through a simulated
on-chip memory with pluggable replacement policies
(:mod:`repro.memsim.simulator`, :mod:`repro.memsim.policies`) and
differentially comparing the simulated per-stream bytes against the
analytical totals (:mod:`repro.memsim.validate`).

Entry point: ``python -m repro memsim [--json]``.
"""

from repro.memsim.accounting import DramCounters, SimStats
from repro.memsim.policies import (
    POLICIES,
    BeladyPolicy,
    LRUPolicy,
    PinAwarePolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memsim.schedules import (
    PRIMITIVES,
    Schedule,
    ScheduleBuilder,
    ScheduleUnit,
)
from repro.memsim.simulator import MemorySimulator, SimResult
from repro.memsim.trace import (
    Access,
    Buffer,
    BulkAccess,
    FlushEvent,
    PinEvent,
    Trace,
    TraceRecorder,
)
from repro.memsim.validate import (
    DEFAULT_TOLERANCE,
    EXPECTED_FIT_BREAKS,
    LADDER_PRIMITIVES,
    LADDER_RUNS,
    MEMSIM_REPORT_SCHEMA,
    SCHEMA_ID,
    compare_traffic,
    render_report,
    run_validation,
    validate_memsim_report,
    validate_primitive,
)

__all__ = [
    "Access",
    "BeladyPolicy",
    "Buffer",
    "BulkAccess",
    "DEFAULT_TOLERANCE",
    "DramCounters",
    "EXPECTED_FIT_BREAKS",
    "FlushEvent",
    "LADDER_PRIMITIVES",
    "LADDER_RUNS",
    "LRUPolicy",
    "MEMSIM_REPORT_SCHEMA",
    "MemorySimulator",
    "POLICIES",
    "PRIMITIVES",
    "PinAwarePolicy",
    "PinEvent",
    "ReplacementPolicy",
    "SCHEMA_ID",
    "Schedule",
    "ScheduleBuilder",
    "ScheduleUnit",
    "SimResult",
    "SimStats",
    "Trace",
    "TraceRecorder",
    "compare_traffic",
    "make_policy",
    "render_report",
    "run_validation",
    "validate_memsim_report",
    "validate_primitive",
]
