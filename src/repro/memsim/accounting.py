"""DRAM-traffic accounting for the memory simulator.

This module is the **only** place in :mod:`repro.memsim` where raw byte
counters are accumulated — the ``TraceDiscipline`` lint rule (and the
``LedgerDiscipline`` allowance for this file) confine ``*_bytes``
arithmetic here, mirroring how :mod:`repro.perf.events` is the sole
accounting core of the analytical model.  Everything else in the package
consumes the finished :class:`repro.perf.events.MemTraffic` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.events import MemTraffic

__all__ = ["DramCounters", "SimStats"]


@dataclass
class SimStats:
    """Cache-behaviour tallies of one replay (event counts, not bytes)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    pin_failures: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class DramCounters:
    """Per-stream DRAM byte counters filled during trace replay."""

    def __init__(self) -> None:
        self.ct_read_bytes = 0
        self.ct_write_bytes = 0
        self.key_read_bytes = 0
        self.pt_read_bytes = 0

    def add_read(self, stream: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if stream == "ct":
            self.ct_read_bytes += nbytes
        elif stream == "key":
            self.key_read_bytes += nbytes
        elif stream == "pt":
            self.pt_read_bytes += nbytes
        else:
            raise ValueError(f"unknown stream {stream!r}")

    def add_write(self, stream: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        if stream != "ct":
            # The model has no key/pt write streams; a schedule emitting
            # one is a bug we want loud, not silently misfiled.
            raise ValueError(f"writes are ciphertext-stream only, got {stream!r}")
        self.ct_write_bytes += nbytes

    def snapshot(self) -> MemTraffic:
        """The counters as the analytical model's traffic type."""
        return MemTraffic(
            ct_read=self.ct_read_bytes,
            ct_write=self.ct_write_bytes,
            key_read=self.key_read_bytes,
            pt_read=self.pt_read_bytes,
        )
