"""Pluggable replacement policies for the simulated on-chip memory.

Three policies bound the design space:

* :class:`LRUPolicy` — the realistic default; a stack algorithm, so its
  miss count is monotone non-increasing in capacity (no Belady anomaly).
* :class:`BeladyPolicy` — the offline optimum (MIN): evict the resident
  block whose next read lies farthest in the future, computed from trace
  lookahead.  Lower-bounds what any online policy could achieve.
* :class:`PinAwarePolicy` — LRU plus advisory pins: the schedule pins the
  working set a MAD threshold assumes resident (the current digit, the
  ``beta`` digit slice) and the policy refuses to evict it while any
  unpinned victim exists.  A *forced* eviction of a pinned block is
  counted in :attr:`~ReplacementPolicy.pin_failures` — the smoking gun
  that an analytical fit-threshold does not hold at this capacity.

All policies are deterministic: ties are broken by block id, never by
iteration order of an unordered container or by ambient state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Set

__all__ = [
    "POLICIES",
    "BeladyPolicy",
    "LRUPolicy",
    "PinAwarePolicy",
    "ReplacementPolicy",
    "make_policy",
]

#: Sentinel next-use index for "never read again".
NEVER = float("inf")


class ReplacementPolicy:
    """Interface the simulator drives; subclasses own the resident set."""

    name: str = "base"
    #: True when the simulator must precompute next-use indices (Belady).
    needs_future: bool = False

    def __init__(self) -> None:
        self.capacity = 0
        self.pin_failures = 0

    def reset(self, capacity: int) -> None:
        """Start a fresh replay with room for ``capacity`` blocks."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.pin_failures = 0

    def contains(self, block: int) -> bool:
        raise NotImplementedError

    def touch(self, block: int, next_use: float) -> None:
        """Record a hit on a resident block."""
        raise NotImplementedError

    def insert(self, block: int, next_use: float) -> Optional[int]:
        """Make ``block`` resident; return the evicted block, if any."""
        raise NotImplementedError

    def discard(self, block: int) -> None:
        """Drop ``block`` if resident (flush hint — not an eviction)."""
        raise NotImplementedError

    def resident(self) -> int:
        raise NotImplementedError

    # Pins are advisory; only the pin-aware policy overrides these.
    def pin(self, blocks: Iterable[int]) -> None:
        pass

    def unpin(self, blocks: Iterable[int]) -> None:
        pass


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used over all resident blocks."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def reset(self, capacity: int) -> None:
        super().reset(capacity)
        self._order = OrderedDict()

    def contains(self, block: int) -> bool:
        return block in self._order

    def touch(self, block: int, next_use: float) -> None:
        self._order.move_to_end(block)

    def insert(self, block: int, next_use: float) -> Optional[int]:
        if self.capacity == 0:
            return None
        self._order[block] = None
        self._order.move_to_end(block)
        if len(self._order) > self.capacity:
            victim, _ = self._order.popitem(last=False)
            return victim
        return None

    def discard(self, block: int) -> None:
        self._order.pop(block, None)

    def resident(self) -> int:
        return len(self._order)


class BeladyPolicy(ReplacementPolicy):
    """Offline-optimal (MIN): evict the farthest-next-read block."""

    name = "belady"
    needs_future = True

    def __init__(self) -> None:
        super().__init__()
        self._next_use: Dict[int, float] = {}

    def reset(self, capacity: int) -> None:
        super().reset(capacity)
        self._next_use = {}

    def contains(self, block: int) -> bool:
        return block in self._next_use

    def touch(self, block: int, next_use: float) -> None:
        self._next_use[block] = next_use

    def insert(self, block: int, next_use: float) -> Optional[int]:
        if self.capacity == 0:
            return None
        self._next_use[block] = next_use
        if len(self._next_use) > self.capacity:
            # Farthest next read; ties broken toward the larger block id
            # so eviction order is deterministic.
            victim = max(
                self._next_use, key=lambda b: (self._next_use[b], b)
            )
            del self._next_use[victim]
            return victim
        return None

    def discard(self, block: int) -> None:
        self._next_use.pop(block, None)

    def resident(self) -> int:
        return len(self._next_use)


class PinAwarePolicy(ReplacementPolicy):
    """LRU that refuses to evict pinned blocks while any other victim exists."""

    name = "pin"

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[int, None]" = OrderedDict()
        self._pinned: Set[int] = set()

    def reset(self, capacity: int) -> None:
        super().reset(capacity)
        self._order = OrderedDict()
        self._pinned = set()

    def contains(self, block: int) -> bool:
        return block in self._order

    def touch(self, block: int, next_use: float) -> None:
        self._order.move_to_end(block)

    def insert(self, block: int, next_use: float) -> Optional[int]:
        if self.capacity == 0:
            return None
        self._order[block] = None
        self._order.move_to_end(block)
        if len(self._order) <= self.capacity:
            return None
        for candidate in self._order:
            if candidate not in self._pinned:
                del self._order[candidate]
                return candidate
        # Every resident block is pinned: the pinned working set exceeds
        # capacity, i.e. the analytical fit assumption is broken here.
        self.pin_failures += 1
        victim, _ = self._order.popitem(last=False)
        return victim

    def discard(self, block: int) -> None:
        self._order.pop(block, None)

    def resident(self) -> int:
        return len(self._order)

    def pin(self, blocks: Iterable[int]) -> None:
        self._pinned.update(blocks)

    def unpin(self, blocks: Iterable[int]) -> None:
        self._pinned.difference_update(blocks)


POLICIES = {
    LRUPolicy.name: LRUPolicy,
    BeladyPolicy.name: BeladyPolicy,
    PinAwarePolicy.name: PinAwarePolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """A fresh policy instance by name (``lru`` / ``belady`` / ``pin``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {', '.join(sorted(POLICIES))}"
        ) from None
