"""Trace replay through a simulated on-chip memory.

Cache semantics (chosen to mirror the analytical model's counting
conventions — see DESIGN.md §7):

* **Fully associative**, block = one limb (``trace.block_bytes``), with
  ``capacity_blocks = capacity_bytes // block_bytes`` — the *same* floor
  division as :meth:`repro.perf.cache.CacheModel.capacity_limbs`, so the
  simulator and the analytical thresholds agree on what "32 MB" holds.
* **Reads allocate.**  A read miss fetches the block from DRAM (counted
  on its stream) and inserts it.
* **Writes are write-through and do not allocate** unless the schedule
  marked the block ``resident``.  Every write pass the analytical model
  counts therefore costs exactly its bytes in simulation too; pass
  intermediates written without residency come back from DRAM when the
  next pass reads them — precisely how the per-pass formulas count.
* **Key and plaintext streams bypass the cache** (``BulkAccess``): the
  paper's caching optimizations never touch key reads, so the simulator
  accounts them without occupying capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memsim.accounting import DramCounters, SimStats
from repro.memsim.policies import NEVER, ReplacementPolicy, make_policy
from repro.memsim.trace import (
    READ,
    SCRATCH,
    Access,
    BulkAccess,
    FlushEvent,
    PinEvent,
    Trace,
)
from repro.obs import state as obs
from repro.perf.events import MemTraffic

__all__ = ["MemorySimulator", "SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of replaying one trace: DRAM bytes plus cache behaviour."""

    traffic: MemTraffic
    stats: SimStats
    capacity_blocks: int
    block_bytes: int
    policy: str

    @property
    def pin_failures(self) -> int:
        return self.stats.pin_failures


def _next_read_indices(trace: Trace) -> List[float]:
    """For each event index, the index of the next read of its block.

    Only block-granular reads count as uses (a write-through write gains
    nothing from residency).  Events that are not block reads get
    :data:`~repro.memsim.policies.NEVER` placeholders so indices align.
    """
    next_use: List[float] = [NEVER] * len(trace.events)
    last_read: Dict[int, int] = {}
    for index in range(len(trace.events) - 1, -1, -1):
        event = trace.events[index]
        if isinstance(event, Access):
            next_use[index] = last_read.get(event.block, NEVER)
            if event.kind == READ:
                last_read[event.block] = index
    return next_use


class MemorySimulator:
    """Replays traces through one policy at one capacity."""

    def __init__(
        self,
        capacity_bytes: int,
        policy: Optional[ReplacementPolicy] = None,
    ):
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity must be non-negative, got {capacity_bytes}"
            )
        # Geometry, not a cost total: set once, never accumulated.
        self.capacity_bytes = capacity_bytes  # lint: disable=LedgerDiscipline
        self.policy = policy if policy is not None else make_policy("lru")

    def capacity_blocks(self, block_bytes: int) -> int:
        """Whole blocks the memory holds (CacheModel.capacity_limbs rule)."""
        return self.capacity_bytes // block_bytes

    # ------------------------------------------------------------------
    def replay(self, trace: Trace) -> SimResult:
        """Replay ``trace`` on a cold cache and return the DRAM traffic."""
        policy = self.policy
        capacity = self.capacity_blocks(trace.block_bytes)
        policy.reset(capacity)

        future: Optional[List[float]] = None
        if policy.needs_future:
            future = _next_read_indices(trace)

        counters = DramCounters()
        stats = SimStats()
        block_bytes = trace.block_bytes

        with obs.span(
            "memsim:replay",
            trace=trace.label,
            events=len(trace.events),
            policy=policy.name,
            capacity_blocks=capacity,
        ):
            for index, event in enumerate(trace.events):
                if isinstance(event, Access):
                    stats.accesses += 1
                    next_use = future[index] if future is not None else NEVER
                    if event.kind == READ:
                        if policy.contains(event.block):
                            stats.hits += 1
                            policy.touch(event.block, next_use)
                        else:
                            stats.misses += 1
                            counters.add_read(event.stream, block_bytes)
                            if event.allocate and (
                                policy.insert(event.block, next_use)
                                is not None
                            ):
                                stats.evictions += 1
                    elif event.kind == SCRATCH:
                        # On-chip accumulator: allocates, no DRAM traffic.
                        if policy.contains(event.block):
                            policy.touch(event.block, next_use)
                        elif (
                            policy.insert(event.block, next_use) is not None
                        ):
                            stats.evictions += 1
                    else:  # WRITE: write-through, allocate only if resident
                        counters.add_write(event.stream, block_bytes)
                        if policy.contains(event.block):
                            policy.touch(event.block, next_use)
                        elif event.resident:
                            if policy.insert(event.block, next_use) is not None:
                                stats.evictions += 1
                elif isinstance(event, BulkAccess):
                    if event.kind == READ:
                        counters.add_read(event.stream, event.nbytes)
                    else:
                        counters.add_write(event.stream, event.nbytes)
                elif isinstance(event, PinEvent):
                    if event.pin:
                        policy.pin(event.blocks)
                    else:
                        policy.unpin(event.blocks)
                elif isinstance(event, FlushEvent):
                    for block in event.blocks:
                        policy.discard(block)
                else:  # pragma: no cover - the event union is closed
                    raise TypeError(f"unknown trace event {event!r}")

            stats.pin_failures = policy.pin_failures
            traffic = counters.snapshot()
            obs.count("memsim.replay.accesses", stats.accesses)
            obs.count("memsim.replay.hits", stats.hits)
            obs.count("memsim.replay.misses", stats.misses)
            if obs.metrics_enabled():
                obs.gauge("memsim.replay.hit_rate", stats.hit_rate)

        return SimResult(
            traffic=traffic,
            stats=stats,
            capacity_blocks=capacity,
            block_bytes=trace.block_bytes,
            policy=policy.name,
        )
