"""Limb-granularity memory-access traces and the recorder that emits them.

The unit of simulation is one **limb of one ring element** —
``params.limb_bytes`` bytes, the same block the analytical model counts in
:mod:`repro.perf.primitives`.  A trace is a flat event sequence of three
event kinds:

* :class:`Access` — one block-granular read, write, or scratch write of a
  ``ct``-stream limb.  Reads allocate in the simulated cache unless
  marked ``allocate=False`` (a non-temporal streaming pass the schedule
  knows has no reuse); writes are write-through and only allocate when
  the schedule marks the block ``resident`` (compute-in-cache outputs
  whose residency the analytical thresholds assume); scratch writes
  allocate **without** any DRAM traffic (on-chip accumulators that the
  analytical model never counts — if they are evicted and re-read, the
  refill shows up as extra simulated DRAM reads, which is exactly the
  fit-threshold break the validator reports).
* :class:`BulkAccess` — an uncacheable streaming transfer (switching-key
  and plaintext reads).  The analytical model never lets caching touch
  key reads, so the simulator accounts them without cache interaction.
* :class:`PinEvent` — advisory pin/unpin of a block set (the working set
  a MAD optimization assumes resident).  Only the pin-aware policy
  honors pins; LRU and Belady ignore them.
* :class:`FlushEvent` — a last-use hint: the blocks are dead, drop them
  from the cache without traffic (write-through means nothing is dirty).
  Schedules flush data whose next consumer is *counted* as a DRAM read
  by the analytical model, so residue hits never mask real traffic.

**Recorder discipline** (enforced by the ``TraceDiscipline`` lint rule):
schedules never construct events directly — every event flows through a
:class:`TraceRecorder`, which is also where block identity is allocated
(:meth:`TraceRecorder.alloc`).  That keeps block-id allocation collision
free and gives one choke point for the obs metrics around trace
generation.

Determinism: traces are pure functions of their inputs — the recorder
holds no ambient state (no clocks, no RNG), so generating the same
schedule twice yields bit-identical event sequences.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Tuple, Union

from repro.obs import state as obs

__all__ = [
    "CT",
    "KEY",
    "PT",
    "READ",
    "STREAMS",
    "WRITE",
    "SCRATCH",
    "Access",
    "Buffer",
    "BulkAccess",
    "FlushEvent",
    "PinEvent",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
]

#: Access kinds.
READ = "r"
WRITE = "w"
SCRATCH = "s"

#: Traffic streams, matching :class:`repro.perf.events.MemTraffic` fields.
CT = "ct"
KEY = "key"
PT = "pt"
STREAMS = (CT, KEY, PT)


class Access(NamedTuple):
    """One block-granular access (``nbytes`` = the trace's block size)."""

    kind: str  # READ | WRITE | SCRATCH
    stream: str  # CT (block accesses are ciphertext working data)
    block: int
    resident: bool = False  # writes: allocate (compute-in-cache output)
    allocate: bool = True  # reads: insert on miss (False = streaming pass)


class BulkAccess(NamedTuple):
    """An uncacheable streaming transfer of ``nbytes`` bytes."""

    kind: str  # READ | WRITE
    stream: str  # KEY | PT | CT
    nbytes: int


class PinEvent(NamedTuple):
    """Pin (or unpin) a block set for pin-aware replacement policies."""

    blocks: Tuple[int, ...]
    pin: bool


class FlushEvent(NamedTuple):
    """Drop dead blocks from the cache (no traffic; nothing is dirty)."""

    blocks: Tuple[int, ...]


TraceEvent = Union[Access, BulkAccess, PinEvent, FlushEvent]


class Buffer:
    """A contiguous range of block ids standing for one logical buffer.

    ``buf[i]`` is the block id of limb ``i``; buffers are allocated by
    :meth:`TraceRecorder.alloc` so ids never collide within a trace.
    """

    __slots__ = ("label", "start", "limbs")

    def __init__(self, label: str, start: int, limbs: int):
        if limbs < 0:
            raise ValueError(f"buffer {label!r} needs limbs >= 0, got {limbs}")
        self.label = label
        self.start = start
        self.limbs = limbs

    def __len__(self) -> int:
        return self.limbs

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self.limbs:
            raise IndexError(
                f"limb {index} outside buffer {self.label!r} [0, {self.limbs})"
            )
        return self.start + index

    def blocks(self) -> range:
        return range(self.start, self.start + self.limbs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.label!r}, start={self.start}, limbs={self.limbs})"


class Trace:
    """An immutable-by-convention event sequence plus its block geometry."""

    def __init__(
        self,
        events: List[TraceEvent],
        block_bytes: int,
        label: str = "",
        buffers: Union[Dict[str, int], None] = None,
    ):
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.events = events
        # Geometry, not a cost total: set once, never accumulated.
        self.block_bytes = block_bytes  # lint: disable=LedgerDiscipline
        self.label = label
        #: buffer label -> limb count, for debugging/reporting only.
        self.buffers = dict(buffers or {})

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def accesses(self) -> Iterator[Access]:
        """Only the block-granular (cacheable) events."""
        return (e for e in self.events if isinstance(e, Access))

    def logical_bytes(self) -> int:
        """Bytes the trace touches before any caching (hit-rate 0 bound)."""
        total = 0
        for event in self.events:
            if isinstance(event, Access):
                total += self.block_bytes
            elif isinstance(event, BulkAccess):
                total += event.nbytes
        return total


class TraceRecorder:
    """The one sanctioned emitter of trace events (see module docstring)."""

    def __init__(self, block_bytes: int, label: str = ""):
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        # Geometry, not a cost total: set once, never accumulated.
        self.block_bytes = block_bytes  # lint: disable=LedgerDiscipline
        self.label = label
        self._events: List[TraceEvent] = []
        self._next_block = 0
        self._buffers: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Block identity
    # ------------------------------------------------------------------
    def alloc(self, label: str, limbs: int) -> Buffer:
        """Allocate a fresh buffer of ``limbs`` blocks."""
        if label in self._buffers:
            # Disambiguate repeated sub-op buffers deterministically.
            occurrence = 2
            while f"{label}#{occurrence}" in self._buffers:
                occurrence += 1
            label = f"{label}#{occurrence}"
        buffer = Buffer(label, self._next_block, limbs)
        self._next_block += limbs
        self._buffers[label] = limbs
        return buffer

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def read(self, block: int, allocate: bool = True) -> None:
        """Block-granular ciphertext-stream read.

        ``allocate=False`` marks a non-temporal streaming read: a miss is
        counted but the block is not inserted.  Schedules use it for pass
        inputs the analytical model always counts from DRAM, so large
        caches cannot retain them and silently undercut the formulas.
        """
        self._events.append(Access(READ, CT, block, False, allocate))

    def write(self, block: int, resident: bool = False) -> None:
        """Write-through ciphertext-stream write.

        ``resident=True`` marks a compute-in-cache output that stays (and
        is pinned by schedules when a MAD threshold assumes residency).
        """
        self._events.append(Access(WRITE, CT, block, resident))

    def scratch(self, block: int) -> None:
        """On-chip-only write: allocates in cache, costs no DRAM traffic.

        Models accumulators the analytical model never counts (reorder's
        key-switch rows).  If capacity forces an eviction, the later
        re-read misses to DRAM — surfacing the broken fit assumption.
        """
        self._events.append(Access(SCRATCH, CT, block, True))

    def read_buffer(self, buffer: Buffer, allocate: bool = True) -> None:
        """Read every limb of ``buffer`` in ascending order (one pass)."""
        for block in buffer.blocks():
            self.read(block, allocate)

    def write_buffer(self, buffer: Buffer, resident: bool = False) -> None:
        """Write every limb of ``buffer`` in ascending order (one pass)."""
        for block in buffer.blocks():
            self.write(block, resident)

    def flush(self, *buffers: Buffer) -> None:
        """Hint that the buffers are dead: drop their blocks, no traffic."""
        blocks = tuple(b for buf in buffers for b in buf.blocks())
        if blocks:
            self._events.append(FlushEvent(blocks))

    def flush_blocks(self, blocks: Tuple[int, ...]) -> None:
        """Flush an explicit block tuple (for non-contiguous dead sets)."""
        if blocks:
            self._events.append(FlushEvent(blocks))

    def read_stream(self, stream: str, limbs: int) -> None:
        """Uncacheable streaming read of ``limbs`` limb-sized chunks."""
        if stream not in STREAMS:
            raise ValueError(f"unknown stream {stream!r}; choose from {STREAMS}")
        if limbs > 0:
            self._events.append(
                BulkAccess(READ, stream, limbs * self.block_bytes)
            )

    def pin(self, *buffers: Buffer) -> None:
        self.pin_blocks(tuple(b for buf in buffers for b in buf.blocks()))

    def unpin(self, *buffers: Buffer) -> None:
        self.unpin_blocks(tuple(b for buf in buffers for b in buf.blocks()))

    def pin_blocks(self, blocks: Tuple[int, ...]) -> None:
        """Pin an explicit block tuple (non-contiguous working sets)."""
        if blocks:
            self._events.append(PinEvent(tuple(blocks), True))

    def unpin_blocks(self, blocks: Tuple[int, ...]) -> None:
        if blocks:
            self._events.append(PinEvent(tuple(blocks), False))

    # ------------------------------------------------------------------
    def finish(self) -> Trace:
        """Seal the recorder into a :class:`Trace` (recorder stays usable)."""
        obs.count("memsim.trace.events", len(self._events))
        obs.count("memsim.trace.buffers", len(self._buffers))
        return Trace(
            list(self._events),
            self.block_bytes,
            label=self.label,
            buffers=self._buffers,
        )
