"""Limb-granularity schedule generators mirroring the analytical model.

Each public method of :class:`ScheduleBuilder` emits the memory-access
trace of one primitive under one :class:`~repro.perf.optimizations.MADConfig`,
branch-for-branch against the pass structure that
:class:`~repro.perf.primitives.PrimitiveCosts` counts.  The invariant the
whole package rests on:

    **Replaying a schedule on a cache that satisfies the analytical fit
    thresholds reproduces the analytical DRAM traffic exactly; replaying
    it on a smaller cache shows *more* traffic — the broken threshold.**

Three emission conventions make that hold:

* *Streaming passes* — reads the analytical model always counts from
  DRAM are emitted as non-allocating reads (``allocate=False``), so even
  an oversized cache cannot retain them and silently undercut a formula.
* *Residency-exploiting loops* — where a formula assumes a working set
  is resident (the ``alpha``-limb digit during basis conversion, the
  ``beta`` digit limbs across rotations, reorder's special-limb
  accumulators), the schedule re-reads that working set with allocating
  reads and pins it.  At fit-threshold capacity the re-reads hit; below
  it they miss, and simulated exceeds analytical.
* *Flush at death* — data whose next consumer is analytically counted
  as a DRAM read (raised digits between ModUp and KSKInnerProd) is
  flushed once dead, so cache residue never masks counted traffic.

When ``beta(l)`` exceeds the number of actual digits (``l % alpha == 0``
makes ``ceil((l+1)/alpha) == ceil(l/alpha) + 1``), the analytical inner
product still charges ``beta * raised`` digit reads.  Schedules emit a
*phantom* raised digit — a fresh, never-written buffer whose reads always
miss — so simulated and analytical agree on that conservatism too.

Schedules are deterministic pure functions of ``(params, config)``: no
clocks, no RNG, block ids assigned sequentially by the recorder.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.memsim.trace import KEY, PT, Buffer, Trace, TraceRecorder
from repro.obs import state as obs
from repro.params import CkksParams
from repro.perf.bootstrap import EvalModProfile
from repro.perf.events import CostReport
from repro.perf.matvec import bsgs_split, pt_mat_vec_mult_cost
from repro.perf.optimizations import MADConfig
from repro.perf.primitives import PrimitiveCosts

__all__ = [
    "PRIMITIVES",
    "Schedule",
    "ScheduleBuilder",
    "ScheduleUnit",
]


class Schedule(NamedTuple):
    """One primitive's trace paired with its analytical cost."""

    label: str
    trace: Trace
    analytical: CostReport


class ScheduleUnit(NamedTuple):
    """One bootstrap sub-operation: trace + analytical cost + multiplicity.

    Bootstrap is validated per-unit on a cold cache and the traffic is
    scaled by ``scale`` — matching how the analytical ledger scales each
    level's CostReport instead of re-deriving it ``scale`` times.
    """

    label: str
    phase: str
    trace: Trace
    analytical: CostReport
    scale: int


#: Raised-digit representation: block id per raised-basis position
#: (positions ``0..l-1`` are the q-limbs, ``l..l+k-1`` the special limbs).
RaisedDigit = List[int]


class ScheduleBuilder:
    """Generates traces for one ``(params, config)`` pair.

    The analytical side is always computed with ``cache=None`` — no
    auto-disabling of unsupported flags — so that replaying a schedule on
    an undersized cache *disagrees* with the analytical claim instead of
    both sides quietly degrading together.
    """

    def __init__(self, params: CkksParams, config: MADConfig):
        self.params = params
        self.config = config
        self.costs = PrimitiveCosts(params, config, cache=None)

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    @property
    def _alpha(self) -> int:
        return self.params.alpha

    @property
    def _k(self) -> int:
        return self.params.num_special_limbs

    def _raised(self, limbs: int) -> int:
        return self.params.raised_limbs(limbs)

    def _beta(self, limbs: int) -> int:
        return self.params.beta(limbs)

    def _digit_slices(self, limbs: int) -> List[Tuple[int, int]]:
        """``(start, size)`` of each digit's q-limb slice."""
        slices = []
        start = 0
        while start < limbs:
            size = min(self._alpha, limbs - start)
            slices.append((start, size))
            start += size
        return slices

    def _recorder(self, label: str) -> TraceRecorder:
        return TraceRecorder(self.params.limb_bytes, label)

    def _key_limbs(self, limbs: int) -> int:
        key = 2 * self._beta(limbs) * self._raised(limbs)
        if self.config.key_compression:
            key //= 2
        return key

    # ------------------------------------------------------------------
    # Sub-operation emitters (shared recorder, return block geometry)
    # ------------------------------------------------------------------
    def _emit_decomp_pass(self, rec: TraceRecorder, src: Buffer) -> Buffer:
        """Plain Decomp: one streaming pass, read ``l`` / write ``l``."""
        digits = rec.alloc("decomp.digits", len(src))
        for i in range(len(src)):
            rec.read(src[i], allocate=False)
            rec.write(digits[i])
        return digits

    def _emit_mod_up(
        self,
        rec: TraceRecorder,
        limbs: int,
        slice_start: int,
        digit_blocks: Sequence[int],
        fused_intt: bool,
        digit_resident: bool,
    ) -> RaisedDigit:
        """Raise one digit to the full PQ basis; returns the raised map.

        ``fused_intt`` mirrors the analytical flag (the producer already
        delivered the digit in coefficient form); ``digit_resident`` says
        the producer additionally left the digit blocks in cache (the
        fused O(1)+O(alpha) Decomp interleave).
        """
        d = len(digit_blocks)
        raised = self._raised(limbs)
        new_count = raised - d

        if self.config.cache_alpha:
            # O(alpha): the digit stays resident; each new limb is
            # converted, NTT'd and written without slot-wise round trips.
            # When the producer did not leave the digit resident, the
            # first conversion's reads miss exactly ``d`` times — the
            # analytical non-fused read count; fused producers made them
            # resident, so those reads all hit (the 0-read claim).
            new = rec.alloc("modup.new", new_count)
            rec.pin_blocks(tuple(digit_blocks))
            for j in range(new_count):
                for b in digit_blocks:
                    rec.read(b)
                rec.write(new[j])
            rec.unpin_blocks(tuple(digit_blocks))
            # The raised digit's next consumer (KSKInnerProd) is counted
            # as DRAM reads by the model — drop the residue.
            rec.flush_blocks(tuple(digit_blocks))
            new_blocks = [new[j] for j in range(new_count)]
        elif fused_intt:
            # Slot-wise NewLimb pass + limb-wise NTT pass.
            conv = rec.alloc("modup.conv", new_count)
            for b in digit_blocks:
                rec.read(b, allocate=False)
            for j in range(new_count):
                rec.write(conv[j])
            new = rec.alloc("modup.new", new_count)
            for j in range(new_count):
                rec.read(conv[j], allocate=False)
                rec.write(new[j])
            new_blocks = [new[j] for j in range(new_count)]
        else:
            # Three passes: iNTT, slot-wise NewLimb, NTT.
            intt = rec.alloc("modup.intt", d)
            for i, b in enumerate(digit_blocks):
                rec.read(b, allocate=False)
                rec.write(intt[i])
            conv = rec.alloc("modup.conv", new_count)
            for i in range(d):
                rec.read(intt[i], allocate=False)
            for j in range(new_count):
                rec.write(conv[j])
            new = rec.alloc("modup.new", new_count)
            for j in range(new_count):
                rec.read(conv[j], allocate=False)
                rec.write(new[j])
            new_blocks = [new[j] for j in range(new_count)]

        # Assemble the position-ordered raised map: the digit's own slice
        # keeps its blocks, every other position comes from the new limbs.
        raised_map: RaisedDigit = []
        new_iter = iter(new_blocks)
        for position in range(raised):
            if slice_start <= position < slice_start + d:
                raised_map.append(digit_blocks[position - slice_start])
            else:
                raised_map.append(next(new_iter))
        return raised_map

    def _emit_prefix(
        self, rec: TraceRecorder, src: Buffer, limbs: int
    ) -> List[RaisedDigit]:
        """Decomp + per-digit ModUp of one polynomial (KeySwitch prefix).

        Returns one raised map per digit, padded with phantom digits up
        to ``beta(limbs)``.
        """
        slices = self._digit_slices(limbs)
        raised_digits: List[RaisedDigit] = []
        if self.config.cache_alpha and self.config.cache_o1:
            # Fused Decomp + ModUp, one digit at a time: the digit is
            # produced resident and consumed in cache before moving on.
            for start, size in slices:
                digit = rec.alloc("decomp.digit", size)
                for i in range(size):
                    rec.read(src[start + i], allocate=False)
                    rec.write(digit[i], resident=True)
                raised_digits.append(
                    self._emit_mod_up(
                        rec,
                        limbs,
                        start,
                        [digit[i] for i in range(size)],
                        fused_intt=True,
                        digit_resident=True,
                    )
                )
        else:
            digits = self._emit_decomp_pass(rec, src)
            for start, size in slices:
                raised_digits.append(
                    self._emit_mod_up(
                        rec,
                        limbs,
                        start,
                        [digits[start + i] for i in range(size)],
                        fused_intt=self.config.cache_o1,
                        digit_resident=False,
                    )
                )
        for _ in range(self._beta(limbs) - len(raised_digits)):
            phantom = rec.alloc("modup.phantom", self._raised(limbs))
            raised_digits.append(list(phantom.blocks()))
        return raised_digits

    def _emit_ksk(
        self,
        rec: TraceRecorder,
        limbs: int,
        raised_digits: List[RaisedDigit],
        count_digit_reads: bool,
        count_output_writes: bool,
    ) -> Optional[Tuple[Buffer, Buffer]]:
        """Inner product with the switching key (both output rows).

        Returns the accumulated rows when they are written to DRAM, or
        ``None`` when the caller fuses them into a reorder ModDown.
        """
        rec.read_stream(KEY, self._key_limbs(limbs))
        if count_digit_reads:
            for digit in raised_digits:
                for block in digit:
                    rec.read(block, allocate=False)
        if count_output_writes:
            raised = self._raised(limbs)
            acc0 = rec.alloc("ksk.acc0", raised)
            acc1 = rec.alloc("ksk.acc1", raised)
            rec.write_buffer(acc0)
            rec.write_buffer(acc1)
            return acc0, acc1
        return None

    def _emit_mod_down_poly(
        self,
        rec: TraceRecorder,
        dropped: Sequence[int],
        body: Sequence[int],
        out: Optional[Buffer],
        input_resident: bool,
    ) -> None:
        """ModDown of one polynomial (Algorithm 2).

        ``out=None`` suppresses the final combine-pass writes (the O(1)
        fusion of Rotate streams the c0 row into the recombination).
        """
        if self.config.cache_alpha:
            # In-cache conversion: the dropped limbs are read once (or
            # arrive resident), then re-read per output limb from cache.
            rec.pin_blocks(tuple(dropped))
            for i, body_block in enumerate(body):
                for b in dropped:
                    rec.read(b)
                if input_resident:
                    rec.read(body_block)
                else:
                    rec.read(body_block, allocate=False)
                if out is not None:
                    rec.write(out[i])
            rec.unpin_blocks(tuple(dropped))
            rec.flush_blocks(tuple(dropped))
        else:
            # Slot-wise passes: iNTT the dropped limbs, NewLimb, then
            # NTT + combine with the body limb.  ``input_resident`` is
            # ignored, matching the analytical branch.
            k = len(dropped)
            intt = rec.alloc("moddown.intt", k)
            for i, b in enumerate(dropped):
                rec.read(b, allocate=False)
                rec.write(intt[i])
            conv = rec.alloc("moddown.conv", len(body))
            for i in range(k):
                rec.read(intt[i], allocate=False)
            for j in range(len(body)):
                rec.write(conv[j])
            for i, body_block in enumerate(body):
                rec.read(conv[i], allocate=False)
                rec.read(body_block, allocate=False)
                if out is not None:
                    rec.write(out[i])

    @staticmethod
    def _split_raised(
        acc: Buffer, body_limbs: int
    ) -> Tuple[List[int], List[int]]:
        """Partition a raised-basis row into (dropped, body) block lists."""
        blocks = list(acc.blocks())
        return blocks[body_limbs:], blocks[:body_limbs]

    def _emit_ksk_md_reorder(
        self,
        rec: TraceRecorder,
        limbs: int,
        raised_digits: List[RaisedDigit],
        body_limbs: int,
        out0: Optional[Buffer],
        out1: Buffer,
        combine_src: Optional[Buffer] = None,
        final: Optional[Buffer] = None,
    ) -> None:
        """Limb re-ordered KSKInnerProd + ModDown, fused (both rows).

        The to-be-dropped (special) limbs are accumulated first into
        pinned on-chip scratch; each body limb's row is then produced,
        converted against the resident specials and written out in one
        flow — no DRAM round trip for the inner-product rows, which is
        exactly what ``count_output_writes=False`` + ``input_resident``
        claim.  ``body_limbs < limbs`` models the ModDown-merge variant
        (the extra dropped q-limb joins the specials).
        """
        raised = self._raised(limbs)
        dropped_count = raised - body_limbs
        rec.read_stream(KEY, self._key_limbs(limbs))
        spec0 = rec.alloc("reorder.spec0", dropped_count)
        spec1 = rec.alloc("reorder.spec1", dropped_count)
        for idx, position in enumerate(range(body_limbs, raised)):
            for digit in raised_digits:
                rec.read(digit[position], allocate=False)
            rec.scratch(spec0[idx])
            rec.scratch(spec1[idx])
        rec.pin(spec0, spec1)
        rows0 = rec.alloc("reorder.row0", body_limbs)
        rows1 = rec.alloc("reorder.row1", body_limbs)
        for i in range(body_limbs):
            for digit in raised_digits:
                rec.read(digit[i], allocate=False)
            rec.scratch(rows0[i])
            rec.scratch(rows1[i])
            for b in spec0.blocks():
                rec.read(b)
            rec.read(rows0[i])
            if out0 is not None:
                rec.write(out0[i])
            elif final is not None and combine_src is not None:
                # Rotate's O(1) fusion: the c0 row streams straight into
                # the recombination add.
                rec.read(combine_src[i], allocate=False)
                rec.write(final[i])
            for b in spec1.blocks():
                rec.read(b)
            rec.read(rows1[i])
            rec.write(out1[i])
            rec.flush_blocks((rows0[i], rows1[i]))
        rec.unpin(spec0, spec1)
        rec.flush(spec0, spec1)

    # ------------------------------------------------------------------
    # Primitive emitters (shared recorder; composable)
    # ------------------------------------------------------------------
    def _emit_key_switch(
        self, rec: TraceRecorder, src: Buffer, limbs: int
    ) -> Tuple[Buffer, Buffer]:
        """Full KeySwitch of one polynomial; returns the two output polys."""
        raised_digits = self._emit_prefix(rec, src, limbs)
        out0 = rec.alloc("ks.out0", limbs)
        out1 = rec.alloc("ks.out1", limbs)
        if self.config.limb_reorder:
            self._emit_ksk_md_reorder(
                rec, limbs, raised_digits, limbs, out0, out1
            )
        else:
            acc = self._emit_ksk(
                rec,
                limbs,
                raised_digits,
                count_digit_reads=True,
                count_output_writes=True,
            )
            assert acc is not None
            for acc_poly, out in zip(acc, (out0, out1)):
                dropped, body = self._split_raised(acc_poly, limbs)
                self._emit_mod_down_poly(
                    rec, dropped, body, out, input_resident=False
                )
        return out0, out1

    def _emit_rotate(self, rec: TraceRecorder, limbs: int) -> None:
        """Rotate = Automorph + KeySwitch of c1 + recombine (Fig. 1)."""
        c0 = rec.alloc("ct.c0", limbs)
        c1 = rec.alloc("ct.c1", limbs)
        c0a = rec.alloc("rot.c0a", limbs)
        o1 = self.config.cache_o1
        slices = self._digit_slices(limbs)
        raised_digits: List[RaisedDigit] = []

        if o1:
            # Fused automorph+decomp+iNTT single pass per limb.
            for i in range(limbs):
                rec.read(c0[i], allocate=False)
                rec.write(c0a[i])
            if self.config.cache_alpha:
                for start, size in slices:
                    digit = rec.alloc("rot.digit", size)
                    for i in range(size):
                        rec.read(c1[start + i], allocate=False)
                        rec.write(digit[i], resident=True)
                    raised_digits.append(
                        self._emit_mod_up(
                            rec,
                            limbs,
                            start,
                            [digit[i] for i in range(size)],
                            fused_intt=True,
                            digit_resident=True,
                        )
                    )
            else:
                digits = rec.alloc("rot.digits", limbs)
                for i in range(limbs):
                    rec.read(c1[i], allocate=False)
                    rec.write(digits[i])
                for start, size in slices:
                    raised_digits.append(
                        self._emit_mod_up(
                            rec,
                            limbs,
                            start,
                            [digits[start + i] for i in range(size)],
                            fused_intt=True,
                            digit_resident=False,
                        )
                    )
        else:
            # Separate automorph, decomp and iNTT passes (Fig. 1(a)).
            c1a = rec.alloc("rot.c1a", limbs)
            for i in range(limbs):
                rec.read(c0[i], allocate=False)
                rec.write(c0a[i])
                rec.read(c1[i], allocate=False)
                rec.write(c1a[i])
            digits = rec.alloc("rot.digits", limbs)
            for i in range(limbs):
                rec.read(c1a[i], allocate=False)
                rec.write(digits[i])
            coeff = rec.alloc("rot.coeff", limbs)
            resident = self.config.cache_alpha
            for i in range(limbs):
                rec.read(digits[i], allocate=False)
                rec.write(coeff[i], resident=resident)
            for start, size in slices:
                raised_digits.append(
                    self._emit_mod_up(
                        rec,
                        limbs,
                        start,
                        [coeff[start + i] for i in range(size)],
                        fused_intt=True,
                        digit_resident=resident,
                    )
                )
        for _ in range(self._beta(limbs) - len(raised_digits)):
            phantom = rec.alloc("modup.phantom", self._raised(limbs))
            raised_digits.append(list(phantom.blocks()))

        res0 = rec.alloc("rot.res0", limbs)
        res1 = rec.alloc("rot.res1", limbs)
        if self.config.limb_reorder:
            if o1:
                self._emit_ksk_md_reorder(
                    rec,
                    limbs,
                    raised_digits,
                    limbs,
                    out0=None,
                    out1=res1,
                    combine_src=c0a,
                    final=res0,
                )
            else:
                md0 = rec.alloc("rot.md0", limbs)
                self._emit_ksk_md_reorder(
                    rec, limbs, raised_digits, limbs, out0=md0, out1=res1
                )
                for i in range(limbs):
                    rec.read(c0a[i], allocate=False)
                    rec.read(md0[i], allocate=False)
                    rec.write(res0[i])
        else:
            acc = self._emit_ksk(
                rec,
                limbs,
                raised_digits,
                count_digit_reads=True,
                count_output_writes=True,
            )
            assert acc is not None
            dropped0, body0 = self._split_raised(acc[0], limbs)
            dropped1, body1 = self._split_raised(acc[1], limbs)
            if o1:
                # c0-part ModDown output streams into the combine: its
                # write disappears; combine reads only c0a.
                self._emit_mod_down_poly(
                    rec, dropped0, body0, out=None, input_resident=False
                )
                for i in range(limbs):
                    rec.read(c0a[i], allocate=False)
                    rec.write(res0[i])
            else:
                md0 = rec.alloc("rot.md0", limbs)
                self._emit_mod_down_poly(
                    rec, dropped0, body0, md0, input_resident=False
                )
            self._emit_mod_down_poly(
                rec, dropped1, body1, res1, input_resident=False
            )
            if not o1:
                for i in range(limbs):
                    rec.read(c0a[i], allocate=False)
                    rec.read(md0[i], allocate=False)
                    rec.write(res0[i])

    def _emit_mult(self, rec: TraceRecorder, limbs: int) -> None:
        """Mult: tensor product, relinearise (KeySwitch of d2), rescale."""
        a0 = rec.alloc("ct.a0", limbs)
        a1 = rec.alloc("ct.a1", limbs)
        b0 = rec.alloc("ct.b0", limbs)
        b1 = rec.alloc("ct.b1", limbs)
        d0 = rec.alloc("mult.d0", limbs)
        d1 = rec.alloc("mult.d1", limbs)
        d2 = rec.alloc("mult.d2", limbs)
        if self.config.cache_o1:
            # Single fused pass over resident limbs: 4 reads, 3 writes.
            for i in range(limbs):
                rec.read(a0[i], allocate=False)
                rec.read(a1[i], allocate=False)
                rec.read(b0[i], allocate=False)
                rec.read(b1[i], allocate=False)
                rec.write(d0[i])
                rec.write(d1[i])
                rec.write(d2[i])
        else:
            # One pass per output polynomial: 8 reads, 3 writes total.
            for i in range(limbs):
                rec.read(a0[i], allocate=False)
                rec.read(b0[i], allocate=False)
                rec.write(d0[i])
            for i in range(limbs):
                rec.read(a0[i], allocate=False)
                rec.read(b1[i], allocate=False)
                rec.read(a1[i], allocate=False)
                rec.read(b0[i], allocate=False)
                rec.write(d1[i])
            for i in range(limbs):
                rec.read(a1[i], allocate=False)
                rec.read(b1[i], allocate=False)
                rec.write(d2[i])

        if self.config.mod_down_merge:
            # Fig. 4(c): stay in the raised basis, lift the tensor terms,
            # one merged ModDown dividing by P * q_l.
            raised_digits = self._emit_prefix(rec, d2, limbs)
            out0 = rec.alloc("mult.out0", limbs - 1)
            out1 = rec.alloc("mult.out1", limbs - 1)
            if self.config.limb_reorder:
                # PModUp lift of the tensor rows (read 2l, no writes).
                for i in range(limbs):
                    rec.read(d0[i], allocate=False)
                    rec.read(d1[i], allocate=False)
                self._emit_ksk_md_reorder(
                    rec, limbs, raised_digits, limbs - 1, out0, out1
                )
            else:
                acc = self._emit_ksk(
                    rec,
                    limbs,
                    raised_digits,
                    count_digit_reads=True,
                    count_output_writes=True,
                )
                assert acc is not None
                for i in range(limbs):
                    rec.read(d0[i], allocate=False)
                    rec.read(d1[i], allocate=False)
                for acc_poly, out in zip(acc, (out0, out1)):
                    dropped, body = self._split_raised(acc_poly, limbs - 1)
                    self._emit_mod_down_poly(
                        rec, dropped, body, out, input_resident=False
                    )
        else:
            u0, u1 = self._emit_key_switch(rec, d2, limbs)
            out0 = rec.alloc("mult.out0", limbs - 1)
            out1 = rec.alloc("mult.out1", limbs - 1)
            if self.config.cache_o1:
                # Combine + rescale fused on the resident ModDown output:
                # only the tensor rows are re-read.
                for i in range(limbs):
                    rec.read(d0[i], allocate=False)
                    rec.read(d1[i], allocate=False)
                for i in range(limbs - 1):
                    rec.write(out0[i])
                    rec.write(out1[i])
            else:
                v0 = rec.alloc("mult.v0", limbs)
                v1 = rec.alloc("mult.v1", limbs)
                for i in range(limbs):
                    rec.read(d0[i], allocate=False)
                    rec.read(u0[i], allocate=False)
                    rec.write(v0[i])
                    rec.read(d1[i], allocate=False)
                    rec.read(u1[i], allocate=False)
                    rec.write(v1[i])
                self._emit_rescale(rec, (v0, v1), limbs)

    def _emit_rescale(
        self, rec: TraceRecorder, polys: Sequence[Buffer], limbs: int
    ) -> None:
        """Rescale: per polynomial read ``l``, write ``l - 1``."""
        for poly in polys:
            out = rec.alloc("rescale.out", limbs - 1)
            for i in range(limbs):
                rec.read(poly[i], allocate=False)
            for i in range(limbs - 1):
                rec.write(out[i])

    def _emit_matvec(
        self, rec: TraceRecorder, limbs: int, diagonals: int
    ) -> None:
        """PtMatVecMult with BSGS rotations (mirrors perf.matvec)."""
        config = self.config
        raised = self._raised(limbs)
        baby, giant = bsgs_split(
            diagonals, larger_baby=config.mod_down_hoist
        )
        num_rotations = (baby - 1) + (giant - 1)
        c0 = rec.alloc("ct.c0", limbs)
        c1 = rec.alloc("ct.c1", limbs)
        raised_digits = self._emit_prefix(rec, c1, limbs)

        if config.mod_down_hoist:
            self._emit_matvec_hoisted(
                rec, limbs, diagonals, num_rotations, raised_digits
            )
            return

        # --- classic path: hoisted ModUp, per-rotation ModDown ---------
        baby_out: List[Tuple[Buffer, Buffer]] = []
        if config.cache_beta and baby > 1 and config.limb_reorder:
            baby_out = self._emit_baby_beta_reorder(
                rec, limbs, baby, raised_digits
            )
        elif config.cache_beta and baby > 1:
            # O(beta): limb-position-major inner products — each raised
            # digit limb is read once (the first rotation's miss) and
            # reused by the remaining baby rotations before it dies.
            accs = [
                (
                    rec.alloc("baby.acc0", raised),
                    rec.alloc("baby.acc1", raised),
                )
                for _ in range(baby - 1)
            ]
            for _ in range(baby - 1):
                rec.read_stream(KEY, self._key_limbs(limbs))
            for position in range(raised):
                position_blocks = tuple(
                    digit[position] for digit in raised_digits
                )
                for r in range(baby - 1):
                    for block in position_blocks:
                        rec.read(block)
                    rec.write(accs[r][0][position])
                    rec.write(accs[r][1][position])
                rec.flush_blocks(position_blocks)
            for r in range(baby - 1):
                baby_out.append(
                    self._emit_baby_mod_down(rec, limbs, accs[r])
                )
        elif config.cache_beta:
            # Degenerate BSGS (baby == 1): the analytical model still
            # charges the one-time digit read; emit it as one pass.
            for digit in raised_digits:
                for block in digit:
                    rec.read(block, allocate=False)
        else:
            for _ in range(baby - 1):
                if config.limb_reorder:
                    out0 = rec.alloc("baby.out0", limbs)
                    out1 = rec.alloc("baby.out1", limbs)
                    self._emit_ksk_md_reorder(
                        rec, limbs, raised_digits, limbs, out0, out1
                    )
                    baby_out.append((out0, out1))
                else:
                    acc = self._emit_ksk(
                        rec,
                        limbs,
                        raised_digits,
                        count_digit_reads=True,
                        count_output_writes=True,
                    )
                    assert acc is not None
                    baby_out.append(
                        self._emit_baby_mod_down(rec, limbs, acc)
                    )

        # Plaintext products against each (pre-rotated) diagonal.
        rotated = baby_out + [(c0, c1)]
        for d in range(diagonals):
            rec.read_stream(PT, limbs)
            rot0, rot1 = rotated[d % len(rotated)]
            for i in range(limbs):
                rec.read(rot0[i], allocate=False)
                rec.read(rot1[i], allocate=False)
        # Giant-step rotations of the accumulated partial sums.
        for _ in range(giant - 1):
            self._emit_rotate(rec, limbs)
        # Write the accumulated output once, then the mandatory Rescale.
        out0 = rec.alloc("matvec.out0", limbs)
        out1 = rec.alloc("matvec.out1", limbs)
        rec.write_buffer(out0)
        rec.write_buffer(out1)
        self._emit_rescale(rec, (out0, out1), limbs)

    def _emit_baby_mod_down(
        self,
        rec: TraceRecorder,
        limbs: int,
        acc: Tuple[Buffer, Buffer],
    ) -> Tuple[Buffer, Buffer]:
        """ModDown pair of one baby rotation's DRAM-resident rows."""
        out0 = rec.alloc("baby.out0", limbs)
        out1 = rec.alloc("baby.out1", limbs)
        for acc_poly, out in zip(acc, (out0, out1)):
            dropped, body = self._split_raised(acc_poly, limbs)
            self._emit_mod_down_poly(
                rec, dropped, body, out, input_resident=False
            )
        return out0, out1

    def _emit_baby_beta_reorder(
        self,
        rec: TraceRecorder,
        limbs: int,
        baby: int,
        raised_digits: List[RaisedDigit],
    ) -> List[Tuple[Buffer, Buffer]]:
        """O(beta) + limb re-ordering composed over the baby rotations.

        Every rotation's key-switch rows stay on chip (reorder claims
        ``count_output_writes=False`` and ``input_resident=True``) while
        the digit limbs are read once for *all* rotations (beta claims
        the one-time read).  Honouring both at once needs the special
        limbs of **every** baby rotation resident simultaneously —
        ``2 * num_special_limbs * (baby - 1)`` limbs, far beyond the
        paper's alpha-limb threshold.  At realistic capacities the pins
        fail and the re-reads miss: the composition's fit threshold is
        broken, which is exactly what the validator reports.
        """
        raised = self._raised(limbs)
        for _ in range(baby - 1):
            rec.read_stream(KEY, self._key_limbs(limbs))
        acc0s = [rec.alloc("baby.acc0", raised) for _ in range(baby - 1)]
        acc1s = [rec.alloc("baby.acc1", raised) for _ in range(baby - 1)]
        outs = [
            (
                rec.alloc("baby.out0", limbs),
                rec.alloc("baby.out1", limbs),
            )
            for _ in range(baby - 1)
        ]
        spec_blocks = tuple(
            acc[i]
            for acc in acc0s + acc1s
            for i in range(limbs, raised)
        )
        # Special (to-be-dropped) positions first: their accumulated sums
        # must be resident before any body limb can be converted.
        for position in range(limbs, raised):
            position_blocks = tuple(d[position] for d in raised_digits)
            for r in range(baby - 1):
                for block in position_blocks:
                    rec.read(block)
                rec.scratch(acc0s[r][position])
                rec.scratch(acc1s[r][position])
            rec.flush_blocks(position_blocks)
        rec.pin_blocks(spec_blocks)
        # Body positions: produce each rotation's row limb, convert it
        # against that rotation's resident specials, write the output.
        for position in range(limbs):
            position_blocks = tuple(d[position] for d in raised_digits)
            for r in range(baby - 1):
                for block in position_blocks:
                    rec.read(block)
                rec.scratch(acc0s[r][position])
                for i in range(limbs, raised):
                    rec.read(acc0s[r][i])
                rec.read(acc0s[r][position])
                rec.write(outs[r][0][position])
                rec.scratch(acc1s[r][position])
                for i in range(limbs, raised):
                    rec.read(acc1s[r][i])
                rec.read(acc1s[r][position])
                rec.write(outs[r][1][position])
                rec.flush_blocks(
                    (acc0s[r][position], acc1s[r][position])
                )
            rec.flush_blocks(position_blocks)
        rec.unpin_blocks(spec_blocks)
        rec.flush_blocks(spec_blocks)
        return outs

    def _emit_matvec_hoisted(
        self,
        rec: TraceRecorder,
        limbs: int,
        diagonals: int,
        num_rotations: int,
        raised_digits: List[RaisedDigit],
    ) -> None:
        """Fig. 5(c): every rotation is an inner product, one ModDown."""
        config = self.config
        raised = self._raised(limbs)
        # Degenerate single-diagonal case: no rotations at all, but the
        # O(beta) one-time digit read is still charged analytically.
        rounds = num_rotations or (1 if config.cache_beta else 0)
        for _ in range(num_rotations):
            rec.read_stream(KEY, self._key_limbs(limbs))
        sum0 = rec.alloc("hoist.sum0", raised)
        sum1 = rec.alloc("hoist.sum1", raised)
        diag_rows = [
            rec.alloc("hoist.c0rot", limbs) for _ in range(diagonals)
        ]
        # Special (to-be-dropped) limb positions first, so their
        # accumulated sums are resident when the body conversion runs.
        for position in range(limbs, raised):
            position_blocks = tuple(
                digit[position] for digit in raised_digits
            )
            if config.cache_beta:
                for _ in range(rounds):
                    for block in position_blocks:
                        rec.read(block)
                rec.flush_blocks(position_blocks)
            else:
                for _ in range(rounds):
                    for block in position_blocks:
                        rec.read(block, allocate=False)
            rec.scratch(sum0[position])
            rec.scratch(sum1[position])
        rec.pin_blocks(tuple(sum0[i] for i in range(limbs, raised)))
        rec.pin_blocks(tuple(sum1[i] for i in range(limbs, raised)))
        md0 = rec.alloc("hoist.md0", limbs)
        md1 = rec.alloc("hoist.md1", limbs)
        spec0 = [sum0[i] for i in range(limbs, raised)]
        spec1 = [sum1[i] for i in range(limbs, raised)]
        for position in range(limbs):
            position_blocks = tuple(
                digit[position] for digit in raised_digits
            )
            if config.cache_beta:
                for _ in range(rounds):
                    for block in position_blocks:
                        rec.read(block)
                rec.flush_blocks(position_blocks)
            else:
                for _ in range(rounds):
                    for block in position_blocks:
                        rec.read(block, allocate=False)
            rec.scratch(sum0[position])
            rec.scratch(sum1[position])
            # Per-diagonal plaintext product + accumulation at this limb.
            for d in range(diagonals):
                rec.read_stream(PT, 1)
                rec.read(diag_rows[d][position], allocate=False)
            # The single deferred ModDown, fused per body limb.
            for b in spec0:
                rec.read(b)
            rec.read(sum0[position])
            rec.write(md0[position])
            for b in spec1:
                rec.read(b)
            rec.read(sum1[position])
            rec.write(md1[position])
            rec.flush_blocks((sum0[position], sum1[position]))
        rec.unpin_blocks(tuple(spec0))
        rec.unpin_blocks(tuple(spec1))
        rec.flush_blocks(tuple(spec0))
        rec.flush_blocks(tuple(spec1))
        # One output write pass, then the mandatory Rescale.
        out0 = rec.alloc("matvec.out0", limbs)
        out1 = rec.alloc("matvec.out1", limbs)
        rec.write_buffer(out0)
        rec.write_buffer(out1)
        self._emit_rescale(rec, (out0, out1), limbs)

    # ------------------------------------------------------------------
    # Public schedules (fresh recorder each, paired with analytical cost)
    # ------------------------------------------------------------------
    def _finish(
        self, rec: TraceRecorder, label: str, analytical: CostReport
    ) -> Schedule:
        with obs.span("memsim:schedule", primitive=label):
            trace = rec.finish()
        return Schedule(label, trace, analytical)

    def decomp(self, limbs: int) -> Schedule:
        rec = self._recorder("decomp")
        src = rec.alloc("ct.c1", limbs)
        self._emit_decomp_pass(rec, src)
        return self._finish(rec, "decomp", self.costs.decomp(limbs))

    def mod_up(self, limbs: int) -> Schedule:
        rec = self._recorder("mod_up")
        d = min(self._alpha, limbs)
        digit = rec.alloc("decomp.digit", d)
        self._emit_mod_up(
            rec,
            limbs,
            0,
            [digit[i] for i in range(d)],
            fused_intt=False,
            digit_resident=False,
        )
        return self._finish(
            rec, "mod_up", self.costs.mod_up(limbs, d, fused_intt=False)
        )

    def ksk_inner_product(self, limbs: int) -> Schedule:
        rec = self._recorder("ksk_inner_product")
        raised = self._raised(limbs)
        digits = [
            list(rec.alloc("modup.raised", raised).blocks())
            for _ in range(self._beta(limbs))
        ]
        self._emit_ksk(
            rec,
            limbs,
            digits,
            count_digit_reads=True,
            count_output_writes=True,
        )
        return self._finish(
            rec, "ksk_inner_product", self.costs.ksk_inner_product(limbs)
        )

    def mod_down(self, limbs: int) -> Schedule:
        rec = self._recorder("mod_down")
        acc = rec.alloc("ksk.acc0", self._raised(limbs))
        out = rec.alloc("md.out", limbs)
        dropped, body = self._split_raised(acc, limbs)
        self._emit_mod_down_poly(
            rec, dropped, body, out, input_resident=False
        )
        return self._finish(
            rec, "mod_down", self.costs.mod_down(limbs, polys=1)
        )

    def key_switch(self, limbs: int) -> Schedule:
        rec = self._recorder("key_switch")
        src = rec.alloc("ct.c1", limbs)
        self._emit_key_switch(rec, src, limbs)
        return self._finish(rec, "key_switch", self.costs.key_switch(limbs))

    def mult(self, limbs: int) -> Schedule:
        rec = self._recorder("mult")
        self._emit_mult(rec, limbs)
        return self._finish(rec, "mult", self.costs.mult(limbs))

    def rotate(self, limbs: int) -> Schedule:
        rec = self._recorder("rotate")
        self._emit_rotate(rec, limbs)
        return self._finish(rec, "rotate", self.costs.rotate(limbs))

    def rescale(self, limbs: int) -> Schedule:
        rec = self._recorder("rescale")
        v0 = rec.alloc("ct.c0", limbs)
        v1 = rec.alloc("ct.c1", limbs)
        self._emit_rescale(rec, (v0, v1), limbs)
        return self._finish(
            rec, "rescale", self.costs.rescale(limbs, polys=2)
        )

    def pt_mult(self, limbs: int) -> Schedule:
        rec = self._recorder("pt_mult")
        c0 = rec.alloc("ct.c0", limbs)
        c1 = rec.alloc("ct.c1", limbs)
        rec.read_stream(PT, limbs)
        if self.config.cache_o1:
            out0 = rec.alloc("ptmult.out0", limbs - 1)
            out1 = rec.alloc("ptmult.out1", limbs - 1)
            for poly, out in ((c0, out0), (c1, out1)):
                for i in range(limbs):
                    rec.read(poly[i], allocate=False)
                for i in range(limbs - 1):
                    rec.write(out[i])
        else:
            v0 = rec.alloc("ptmult.v0", limbs)
            v1 = rec.alloc("ptmult.v1", limbs)
            for poly, out in ((c0, v0), (c1, v1)):
                for i in range(limbs):
                    rec.read(poly[i], allocate=False)
                    rec.write(out[i])
            self._emit_rescale(rec, (v0, v1), limbs)
        return self._finish(rec, "pt_mult", self.costs.pt_mult(limbs))

    def add(self, limbs: int) -> Schedule:
        rec = self._recorder("add")
        a0 = rec.alloc("ct.a0", limbs)
        a1 = rec.alloc("ct.a1", limbs)
        b0 = rec.alloc("ct.b0", limbs)
        b1 = rec.alloc("ct.b1", limbs)
        out0 = rec.alloc("add.out0", limbs)
        out1 = rec.alloc("add.out1", limbs)
        for i in range(limbs):
            rec.read(a0[i], allocate=False)
            rec.read(b0[i], allocate=False)
            rec.write(out0[i])
            rec.read(a1[i], allocate=False)
            rec.read(b1[i], allocate=False)
            rec.write(out1[i])
        return self._finish(rec, "add", self.costs.add(limbs))

    def pt_add(self, limbs: int) -> Schedule:
        rec = self._recorder("pt_add")
        c0 = rec.alloc("ct.c0", limbs)
        out = rec.alloc("ptadd.out", limbs)
        rec.read_stream(PT, limbs)
        for i in range(limbs):
            rec.read(c0[i], allocate=False)
            rec.write(out[i])
        return self._finish(rec, "pt_add", self.costs.pt_add(limbs))

    def automorph(self, limbs: int) -> Schedule:
        rec = self._recorder("automorph")
        c0 = rec.alloc("ct.c0", limbs)
        c1 = rec.alloc("ct.c1", limbs)
        out0 = rec.alloc("auto.out0", limbs)
        out1 = rec.alloc("auto.out1", limbs)
        for poly, out in ((c0, out0), (c1, out1)):
            for i in range(limbs):
                rec.read(poly[i], allocate=False)
                rec.write(out[i])
        return self._finish(rec, "automorph", self.costs.automorph(limbs))

    def mod_raise(self, limbs_from: int, limbs_to: int) -> Schedule:
        rec = self._recorder("mod_raise")
        for _ in range(2):
            src = rec.alloc("ct.low", limbs_from)
            out = rec.alloc("ct.raised", limbs_to)
            for i in range(limbs_from):
                rec.read(src[i], allocate=False)
            rec.write_buffer(out)
        return self._finish(
            rec, "mod_raise", self.costs.mod_raise(limbs_from, limbs_to)
        )

    def pt_mat_vec_mult(self, limbs: int, diagonals: int) -> Schedule:
        rec = self._recorder("pt_mat_vec_mult")
        self._emit_matvec(rec, limbs, diagonals)
        return self._finish(
            rec,
            "pt_mat_vec_mult",
            pt_mat_vec_mult_cost(self.costs, limbs, diagonals),
        )

    # ------------------------------------------------------------------
    # Composed bootstrap phase
    # ------------------------------------------------------------------
    def dft_diagonals(self) -> int:
        """Diagonals per DFT stage matrix (mirrors BootstrapModel)."""
        slots = self.params.slots
        return max(2, math.ceil(slots ** (1.0 / self.params.fft_iter)))

    def bootstrap_units(self) -> List[ScheduleUnit]:
        """One ScheduleUnit per ledger entry of BootstrapModel.ledger().

        The scaled analytical costs sum bit-exactly to the ledger total;
        each unit is replayed cold and its simulated traffic scaled the
        same way, matching the per-operation independence of the
        analytical model.
        """
        params = self.params
        if not params.supports_bootstrapping():
            raise ValueError(
                f"{params.describe()} cannot bootstrap (level budget)"
            )
        profile = EvalModProfile()
        diagonals = self.dft_diagonals()
        level = params.max_limbs
        units: List[ScheduleUnit] = []

        with obs.span("memsim:bootstrap_units"):
            sched = self.mod_raise(2, level)
            units.append(
                ScheduleUnit(
                    "mod_raise", "ModRaise", sched.trace, sched.analytical, 1
                )
            )
            for _ in range(params.fft_iter):
                sched = self.pt_mat_vec_mult(level, diagonals)
                units.append(
                    ScheduleUnit(
                        "pt_mat_vec_mult",
                        "CoeffToSlot",
                        sched.trace,
                        sched.analytical,
                        1,
                    )
                )
                level -= 1
            for depth in range(params.eval_mod_depth):
                mults = profile.mults_per_level + (
                    profile.basis_setup_mults if depth == 0 else 0
                )
                sched = self.mult(level)
                units.append(
                    ScheduleUnit(
                        "mult", "EvalMod", sched.trace, sched.analytical, mults
                    )
                )
                sched = self.pt_mult(level)
                units.append(
                    ScheduleUnit(
                        "pt_mult",
                        "EvalMod",
                        sched.trace,
                        sched.analytical,
                        profile.pt_mults_per_level,
                    )
                )
                sched = self.add(level)
                units.append(
                    ScheduleUnit(
                        "add",
                        "EvalMod",
                        sched.trace,
                        sched.analytical,
                        profile.adds_per_level,
                    )
                )
                level -= 1
            for _ in range(params.fft_iter):
                sched = self.pt_mat_vec_mult(level, diagonals)
                units.append(
                    ScheduleUnit(
                        "pt_mat_vec_mult",
                        "SlotToCoeff",
                        sched.trace,
                        sched.analytical,
                        1,
                    )
                )
                level -= 1
        assert level == params.bootstrap_output_limbs
        obs.count("memsim.bootstrap.units", len(units))
        return units


#: Primitive name -> builder method name, for the CLI and the validator.
PRIMITIVES = {
    "decomp": "decomp",
    "mod_up": "mod_up",
    "ksk_inner_product": "ksk_inner_product",
    "mod_down": "mod_down",
    "key_switch": "key_switch",
    "mult": "mult",
    "rotate": "rotate",
    "rescale": "rescale",
    "pt_mult": "pt_mult",
    "add": "add",
    "pt_add": "pt_add",
    "automorph": "automorph",
}
