"""CKKS parameter definitions, security constraints, and paper presets."""

from repro.params.ckks import CkksParams
from repro.params.security import (
    SECURITY_128_MAX_LOG_QP,
    max_log_qp_for_128_bit_security,
    satisfies_128_bit_security,
)
from repro.params.presets import (
    BASELINE_JUNG,
    MAD_OPTIMAL,
    toy_params,
)

__all__ = [
    "CkksParams",
    "SECURITY_128_MAX_LOG_QP",
    "max_log_qp_for_128_bit_security",
    "satisfies_128_bit_security",
    "BASELINE_JUNG",
    "MAD_OPTIMAL",
    "toy_params",
]
