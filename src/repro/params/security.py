"""Ring-LWE security constraints on CKKS parameter selection.

The Homomorphic Encryption Standard (Albrecht et al., 2018) tabulates, for
each ring degree ``N``, the largest total modulus ``log2(PQ)`` for which the
underlying Ring-LWE instance retains 128-bit classical security.  The table
below lists the standard values up to ``N = 2^15`` and the customary
doubling extrapolation used by the FHE-accelerator literature (CraterLake,
ARK, BTS and the MAD paper all use ``N = 2^16``/``2^17`` parameter sets
justified this way).
"""

from __future__ import annotations

# log2(N) -> max log2(PQ) bits at 128-bit classical security.
SECURITY_128_MAX_LOG_QP = {
    10: 27,
    11: 54,
    12: 109,
    13: 218,
    14: 438,
    15: 881,
    16: 1772,  # extrapolated (2x per degree doubling)
    17: 3544,  # extrapolated
}


def max_log_qp_for_128_bit_security(log_n: int) -> int:
    """Return the maximum total modulus size (bits) for 128-bit security.

    Raises :class:`ValueError` for ring degrees outside the tabulated range.
    """
    try:
        return SECURITY_128_MAX_LOG_QP[log_n]
    except KeyError:
        raise ValueError(
            f"no 128-bit security bound tabulated for log_n={log_n}; "
            f"known degrees: {sorted(SECURITY_128_MAX_LOG_QP)}"
        ) from None


def satisfies_128_bit_security(log_n: int, log_qp: int) -> bool:
    """Check whether a total modulus of ``log_qp`` bits is 128-bit secure."""
    return log_qp <= max_log_qp_for_128_bit_security(log_n)
