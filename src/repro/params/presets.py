"""Parameter presets used throughout the paper's evaluation.

``BASELINE_JUNG`` is the GPU bootstrapping parameter set of Jung et al.
(TCHES 2021) that the paper uses as its baseline, and ``MAD_OPTIMAL`` is the
memory-aware optimum found by the SimFHE parameter search (both from
Table 5 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.params.ckks import CkksParams

#: Baseline bootstrapping parameters (Jung et al. [20]); Table 5 row 1.
#: n = 2^16 slots means N = 2^17; 54-bit limbs; L = 35; dnum = 3; fftIter = 3.
BASELINE_JUNG = CkksParams(
    log_n=17,
    log_q=54,
    max_limbs=35,
    dnum=3,
    fft_iter=3,
)

#: Our memory-aware optimal parameters for a 32 MB on-chip memory;
#: Table 5 row 2: 50-bit limbs, L = 40, dnum = 2, fftIter = 6.
MAD_OPTIMAL = CkksParams(
    log_n=17,
    log_q=50,
    max_limbs=40,
    dnum=2,
    fft_iter=6,
)


def toy_params(
    log_n: int = 4,
    log_q: int = 40,
    max_limbs: int = 6,
    dnum: int = 3,
    fft_iter: int = 1,
    eval_mod_depth: int = 2,
    log_special: Optional[int] = None,
) -> CkksParams:
    """Small parameter set for the functional CKKS layer and unit tests.

    These parameters are *not* secure — they exist so the exact-arithmetic
    scheme runs in milliseconds while exercising the same algorithms the
    performance model counts.

    ``log_special`` sizes the special (``P``) primes; the default reuses
    ``log_q``, which makes ``P`` barely as large as the biggest key-switch
    digit.  Deep circuits at big rings should pass ``log_q + 1`` so the
    digit/overflow noise is shaved off by ModDown (see DESIGN.md §12).
    """
    return CkksParams(
        log_n=log_n,
        log_q=log_q,
        max_limbs=max_limbs,
        dnum=dnum,
        fft_iter=fft_iter,
        eval_mod_depth=eval_mod_depth,
        log_special=log_special,
    )
