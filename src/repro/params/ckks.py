"""CKKS scheme parameters and the quantities derived from them.

Follows the notation of Table 1 of the MAD paper:

* ``N``     — ring degree (``2**log_n``); a ciphertext polynomial has ``N``
  coefficients.
* ``n``     — ``N/2`` plaintext slots.
* ``q``     — machine-word-sized limb modulus (``log_q`` bits).
* ``L``     — maximum number of limbs in a ciphertext.  Table 5 of the paper
  defines this as the limb count right after the initial ModRaise in
  bootstrapping.
* ``dnum``  — number of digits in the switching key.
* ``alpha`` — ``ceil((L+1)/dnum)`` limbs per key-switching digit; also the
  number of special (``P``) limbs appended by ModUp.
* ``beta``  — ``ceil((l+1)/alpha)`` digits for an ``l``-limb polynomial.
* ``fftIter`` — number of PtMatVecMult iterations in each of the CoeffToSlot
  and SlotToCoeff phases of bootstrapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.params.security import satisfies_128_bit_security

#: Bytes per machine word; limb coefficients occupy one word each.
WORD_BYTES = 8

#: Number of ciphertext limbs consumed by the EvalMod (approximate modular
#: reduction) phase of bootstrapping.  Nine levels reconciles both parameter
#: sets in Table 5 with the post-bootstrap moduli reported in Table 6:
#: baseline 35 - 2*3 - 9 = 20 limbs (log Q1 = 1080) and MAD-optimal
#: 40 - 2*6 - 9 = 19 limbs (log Q1 = 950).
DEFAULT_EVAL_MOD_DEPTH = 9


@dataclass(frozen=True)
class CkksParams:
    """An immutable CKKS parameter set.

    Args:
        log_n: log2 of the ring degree ``N``.
        log_q: bit-size of each ciphertext limb modulus.
        max_limbs: ``L``, the maximum number of limbs in a ciphertext.
        dnum: number of digits in the key-switching decomposition.
        fft_iter: PtMatVecMult iterations per homomorphic DFT phase.
        log_special: bit-size of the special (``P``) limb moduli; defaults to
            ``log_q``.
        eval_mod_depth: limbs consumed by the EvalMod bootstrap phase.
        bit_precision: plaintext bit precision delivered by bootstrapping,
            used by the Han-Ki throughput metric (Eq. 3 of the paper).
    """

    log_n: int
    log_q: int
    max_limbs: int
    dnum: int
    fft_iter: int = 3
    log_special: Optional[int] = None
    eval_mod_depth: int = DEFAULT_EVAL_MOD_DEPTH
    bit_precision: int = 19
    #: Bytes per machine word.  Most designs use 64-bit words; CraterLake's
    #: 28-bit limbs pack into 32-bit words, halving every limb's footprint.
    word_bytes: int = WORD_BYTES

    def __post_init__(self) -> None:
        if self.word_bytes not in (4, 8):
            raise ValueError(
                f"word_bytes must be 4 or 8, got {self.word_bytes}"
            )
        if self.log_q > 8 * self.word_bytes - 2:
            raise ValueError(
                f"log_q={self.log_q} does not fit a {self.word_bytes}-byte word"
            )
        if self.log_n < 2:
            raise ValueError(f"log_n must be >= 2, got {self.log_n}")
        if not 4 <= self.log_q <= 62:
            raise ValueError(
                f"log_q must fit a machine word (4..62 bits), got {self.log_q}"
            )
        if self.max_limbs < 1:
            raise ValueError(f"max_limbs must be >= 1, got {self.max_limbs}")
        if not 1 <= self.dnum <= self.max_limbs + 1:
            raise ValueError(
                f"dnum must be in [1, L+1] = [1, {self.max_limbs + 1}], "
                f"got {self.dnum}"
            )
        if self.fft_iter < 1:
            raise ValueError(f"fft_iter must be >= 1, got {self.fft_iter}")
        if self.eval_mod_depth < 0:
            raise ValueError(
                f"eval_mod_depth must be >= 0, got {self.eval_mod_depth}"
            )
        if self.log_special is not None and not 4 <= self.log_special <= 62:
            raise ValueError(
                f"log_special must fit a machine word, got {self.log_special}"
            )

    # ------------------------------------------------------------------
    # Ring geometry
    # ------------------------------------------------------------------
    @property
    def ring_degree(self) -> int:
        """``N``, the number of coefficients per polynomial."""
        return 1 << self.log_n

    @property
    def slots(self) -> int:
        """``n = N/2``, the number of plaintext elements per ciphertext."""
        return 1 << (self.log_n - 1)

    @property
    def limb_bytes(self) -> int:
        """Bytes occupied by one limb of one ring element."""
        return self.word_bytes * self.ring_degree

    # ------------------------------------------------------------------
    # Key-switching decomposition (Han-Ki hybrid)
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> int:
        """Limbs per key-switching digit, ``ceil((L+1)/dnum)``."""
        return math.ceil((self.max_limbs + 1) / self.dnum)

    @property
    def num_special_limbs(self) -> int:
        """Limbs of the raised modulus ``P`` (one special prime per digit limb)."""
        return self.alpha

    def beta(self, limbs: int) -> int:
        """Digits produced when decomposing a ``limbs``-limb polynomial."""
        self._check_limbs(limbs)
        return math.ceil((limbs + 1) / self.alpha)

    def raised_limbs(self, limbs: int) -> int:
        """Limb count in the raised basis ``PQ`` for a ``limbs``-limb input."""
        self._check_limbs(limbs)
        return limbs + self.num_special_limbs

    # ------------------------------------------------------------------
    # Modulus sizes and security
    # ------------------------------------------------------------------
    @property
    def special_bits(self) -> int:
        """Bit-size of each special limb modulus."""
        return self.log_special if self.log_special is not None else self.log_q

    @property
    def log_p(self) -> int:
        """Total bit-size of the raised-modulus factor ``P``."""
        return self.num_special_limbs * self.special_bits

    @property
    def log_q_max(self) -> int:
        """Total bit-size of the largest ciphertext modulus ``Q``."""
        return self.max_limbs * self.log_q

    @property
    def log_qp(self) -> int:
        """Total bit-size of ``PQ`` — the quantity the security bound caps."""
        return self.log_q_max + self.log_p

    def is_128_bit_secure(self) -> bool:
        """Check this parameter set against the 128-bit Ring-LWE bound."""
        return satisfies_128_bit_security(self.log_n, self.log_qp)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def ciphertext_bytes(self, limbs: Optional[int] = None) -> int:
        """Size of a ciphertext (two ring elements) with ``limbs`` limbs."""
        limbs = self.max_limbs if limbs is None else limbs
        self._check_limbs(limbs)
        return 2 * limbs * self.limb_bytes

    def plaintext_bytes(self, limbs: Optional[int] = None) -> int:
        """Size of an encoded plaintext (one ring element)."""
        limbs = self.max_limbs if limbs is None else limbs
        self._check_limbs(limbs)
        return limbs * self.limb_bytes

    def switching_key_bytes(self, compressed: bool = False) -> int:
        """Size of one switching key: a ``2 x dnum`` matrix over ``R_PQ``.

        With PRNG key compression (Section 3.2 of the paper) the first row is
        regenerated on the fly from a short seed, halving the size.
        """
        raised = self.max_limbs + self.num_special_limbs
        rows = 1 if compressed else 2
        return rows * self.dnum * raised * self.limb_bytes

    # ------------------------------------------------------------------
    # Bootstrapping level budget
    # ------------------------------------------------------------------
    @property
    def bootstrap_output_limbs(self) -> int:
        """Limbs remaining after bootstrapping consumes its level budget."""
        remaining = self.max_limbs - 2 * self.fft_iter - self.eval_mod_depth
        if remaining < 1:
            raise ValueError(
                f"parameter set cannot bootstrap: L={self.max_limbs} leaves "
                f"{remaining} limbs after 2*{self.fft_iter} DFT levels and "
                f"{self.eval_mod_depth} EvalMod levels"
            )
        return remaining

    @property
    def log_q1(self) -> int:
        """``log2`` of the ciphertext modulus right after bootstrapping."""
        return self.bootstrap_output_limbs * self.log_q

    def supports_bootstrapping(self) -> bool:
        """True when the level budget leaves at least one usable limb."""
        return self.max_limbs - 2 * self.fft_iter - self.eval_mod_depth >= 1

    # ------------------------------------------------------------------
    def _check_limbs(self, limbs: int) -> None:
        if not 1 <= limbs <= self.max_limbs + self.num_special_limbs:
            raise ValueError(
                f"limb count {limbs} outside [1, "
                f"{self.max_limbs + self.num_special_limbs}]"
            )

    def describe(self) -> str:
        """One-line human-readable summary of this parameter set."""
        return (
            f"CKKS(N=2^{self.log_n}, log q={self.log_q}, L={self.max_limbs}, "
            f"dnum={self.dnum}, alpha={self.alpha}, fftIter={self.fft_iter}, "
            f"log PQ={self.log_qp})"
        )
