"""SpanLabelStability: span labels are static cross-run alignment keys.

``repro.obs.diff`` aligns two run reports span by span on the
hierarchical *label path* (repeated siblings get ``#k`` occurrence
suffixes).  A label interpolating a loop variable —
``span(f"CoeffToSlot {i}")`` — makes every iteration a distinct path, so
the PR-2 diff/bench harness sees a wall of added/removed spans instead
of a cost delta.  Volatile values belong in span *attrs*:
``span("CoeffToSlot:iter", iter=i)``.

The rule flags dynamically-built labels (f-strings, ``%``-formatting,
``str.format``, constant+variable concatenation, starred arguments) as
the first positional argument of any ``*.span(...)`` / ``span(...)``
call.  Plain names are allowed: binding a label from a static table is
a legitimate pattern (``for name, cost in ops: span(name)``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.registry import register

__all__ = ["SpanLabelStability"]


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _label_problem(label: ast.AST) -> Optional[str]:
    if isinstance(label, ast.JoinedStr) and any(
        isinstance(value, ast.FormattedValue) for value in label.values
    ):
        return "f-string interpolation"
    if isinstance(label, ast.BinOp):
        if isinstance(label.op, ast.Mod) and (
            _is_str_constant(label.left) or isinstance(label.left, ast.JoinedStr)
        ):
            return "%-formatting"
        if isinstance(label.op, ast.Add) and (
            _is_str_constant(label.left) or _is_str_constant(label.right)
        ):
            return "string concatenation"
    if (
        isinstance(label, ast.Call)
        and isinstance(label.func, ast.Attribute)
        and label.func.attr == "format"
    ):
        return ".format() call"
    if isinstance(label, ast.Starred):
        return "starred argument"
    return None


@register
class SpanLabelStability(Rule):
    name = "SpanLabelStability"
    description = (
        "span labels must be static (no f-strings/%/.format/concatenation); "
        "volatile values go in span attrs — cross-run diff alignment keys "
        "on the label path"
    )
    node_types = (ast.Call,)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        assert isinstance(node, ast.Call)
        func = node.func
        is_span = (isinstance(func, ast.Attribute) and func.attr == "span") or (
            isinstance(func, ast.Name) and func.id == "span"
        )
        if not is_span or not node.args:
            return None
        label = node.args[0]
        problem = _label_problem(label)
        if problem is None:
            return None
        return [
            self.finding(
                ctx,
                label,
                f"{problem} in span label — labels are cross-run alignment "
                "keys; keep them static and move volatile values into span "
                "attrs (e.g. span(\"Phase:iter\", iter=i))",
            )
        ]
