"""UnitsHygiene: byte-valued and op-valued expressions never mix.

The model's two currencies — modular operations and DRAM bytes — share
the int type, so nothing at runtime stops ``total_bytes = cost.ops.total``
or ``ops + traffic_bytes``.  Such a slip re-denominates an axis of the
roofline (Fig. 3 plots ops/byte) without any test necessarily failing.

Unit inference is deliberately conservative and purely lexical:

* ``*bytes`` identifiers and the ``MemTraffic`` stream fields
  (``ct_read``/``ct_write``/``key_read``/``pt_read``/``traffic``) are
  byte-valued;
* ``*_ops`` identifiers and the ``OpCount`` fields
  (``mults``/``adds``/``ops``) are op-valued;
* ``+``/``-`` preserve units and require both sides to agree; ``*`` and
  ``/`` derive new units (scaling and arithmetic intensity are legal),
  so their results are unknown and never flagged.

Findings: adding/subtracting bytes with ops, assigning a definite
byte-valued expression to an ``*_ops`` name (or vice versa), and
``*_bytes``/``*_ops``-named functions returning the other unit — the
naming contract ``MemTraffic``/``OpCount`` accessors follow.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.registry import register

__all__ = ["UnitsHygiene"]

BYTES = "bytes"
OPS = "ops"
_MIXED = "mixed"

_BYTE_FIELDS = frozenset({"ct_read", "ct_write", "key_read", "pt_read", "traffic"})
_OP_FIELDS = frozenset({"mults", "adds", "ops"})


def _ident_unit(name: str) -> Optional[str]:
    name = name.lstrip("_")
    if name.endswith("bytes") or name in _BYTE_FIELDS:
        return BYTES
    if name.endswith("_ops") or name in _OP_FIELDS:
        return OPS
    return None


def _unit(expr: ast.AST) -> Optional[str]:
    """BYTES/OPS when the expression's unit is definite, else None/_MIXED."""
    if isinstance(expr, ast.Name):
        return _ident_unit(expr.id)
    if isinstance(expr, ast.Attribute):
        unit = _ident_unit(expr.attr)
        # `cost.traffic.total` — `total` carries no unit, the receiver does.
        return unit if unit is not None else _unit(expr.value)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            return _ident_unit(func.id)
        if isinstance(func, ast.Attribute):
            return _ident_unit(func.attr)
        return None
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            left, right = _unit(expr.left), _unit(expr.right)
            if _MIXED in (left, right):
                return _MIXED
            if left and right and left != right:
                return _MIXED
            return left or right
        return None  # *, /, //, %, ... derive new units
    if isinstance(expr, ast.UnaryOp):
        return _unit(expr.operand)
    if isinstance(expr, ast.IfExp):
        body, orelse = _unit(expr.body), _unit(expr.orelse)
        return body if body == orelse else None
    return None


def _definite(unit: Optional[str]) -> bool:
    return unit in (BYTES, OPS)


@register
class UnitsHygiene(Rule):
    name = "UnitsHygiene"
    description = (
        "byte-valued and op-valued expressions never cross-assigned or "
        "added; *_bytes/*_ops accessor names must match what they return"
    )
    node_types = (
        ast.Assign,
        ast.AnnAssign,
        ast.AugAssign,
        ast.BinOp,
        ast.FunctionDef,
    )

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.BinOp):
            return self._check_binop(node, ctx)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._check_assign(node, ctx)
        if isinstance(node, ast.FunctionDef):
            return self._check_function(node, ctx)
        return None

    # ------------------------------------------------------------------
    def _check_binop(
        self, node: ast.BinOp, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return None
        left, right = _unit(node.left), _unit(node.right)
        if {left, right} == {BYTES, OPS}:
            verb = "adds" if isinstance(node.op, ast.Add) else "subtracts"
            return [
                self.finding(
                    ctx,
                    node,
                    f"{verb} a byte-valued and an op-valued expression — the "
                    "model's two currencies never mix additively",
                )
            ]
        return None

    def _check_assign(
        self,
        node: "ast.Assign | ast.AnnAssign | ast.AugAssign",
        ctx: FileContext,
    ) -> Optional[List[Finding]]:
        if node.value is None:  # annotation without value
            return None
        value_unit = _unit(node.value)
        if not _definite(value_unit):
            return None
        if isinstance(node, ast.Assign):
            targets: List[ast.AST] = list(node.targets)
        else:
            targets = [node.target]
        findings: List[Finding] = []
        for target in targets:
            if isinstance(target, ast.Name):
                target_unit = _ident_unit(target.id)
                label = target.id
            elif isinstance(target, ast.Attribute):
                target_unit = _ident_unit(target.attr)
                label = target.attr
            else:
                continue
            if _definite(target_unit) and target_unit != value_unit:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"assigns a {value_unit}-valued expression to "
                        f"`{label}` — rename the target or fix the "
                        "expression; units must agree",
                    )
                )
        return findings

    def _check_function(
        self, node: ast.FunctionDef, ctx: FileContext
    ) -> Optional[List[Finding]]:
        name_unit = _ident_unit(node.name)
        if not _definite(name_unit):
            return None
        findings: List[Finding] = []
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value_unit = _unit(stmt.value)
                if _definite(value_unit) and value_unit != name_unit:
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"`{node.name}` is named as a {name_unit} accessor "
                            f"but returns a {value_unit}-valued expression",
                        )
                    )
        return findings
