"""TelemetryDiscipline: resource sampling and event emission stay confined.

The PR-6 telemetry layer makes two auditability promises:

* **Host resource APIs live in one file.**  ``obs/profiler.py`` is the
  single place in ``src/`` that reads ``resource.getrusage``,
  ``tracemalloc``, ``gc.get_stats`` / ``gc.get_count``,
  ``time.process_time`` or ``psutil``.  Resource samples carry platform
  quirks (``ru_maxrss`` units differ between Linux and macOS) and real
  overhead (a tracemalloc peak read costs microseconds); keeping every
  sampling site in one module means the overhead budget and the
  normalisation rules are reviewable in one place — and that
  :func:`repro.obs.telemetry.strip_volatile` knows every field it must
  strip before determinism comparisons.

* **Events are emitted only through the EventLog API.**  The
  ``repro.obs.events/v1`` stream is append-only, sequence-numbered and
  schema-validated by :class:`repro.obs.events.EventLog`.  Code that
  spells the schema id as a literal is either hand-writing envelope
  dicts (bypassing seq/ts/flush discipline — a torn or out-of-order
  line breaks ``repro top`` live tailing) or hand-validating streams
  the canonical validator already covers.  The id may appear only in
  ``obs/events.py``, where the format is defined.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.program.scopes import EVENTS_HOME, PROFILER_HOME
from repro.lint.registry import register

__all__ = ["TelemetryDiscipline"]


#: Event schema ids are flagged by prefix so a v2 bump stays covered.
EVENTS_SCHEMA_PREFIX = "repro.obs.events/"  # lint: disable=TelemetryDiscipline

#: Modules whose *any* attribute call is a resource-sampling site.
_SAMPLING_MODULES = frozenset({"resource", "tracemalloc", "psutil"})

#: ``module.attr`` pairs that sample when the module match alone is too
#: broad (``gc`` and ``time`` have plenty of legitimate other uses).
_SAMPLING_CALLS = frozenset(
    {
        ("gc", "get_stats"),
        ("gc", "get_count"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
    }
)


@register
class TelemetryDiscipline(Rule):
    name = "TelemetryDiscipline"
    description = (
        "host resource sampling (resource/tracemalloc/psutil, gc.get_stats, "
        "time.process_time) happens only in obs/profiler.py, and the "
        "repro.obs.events/* schema id appears as a literal only in "
        "obs/events.py (events flow through the EventLog API)"
    )
    node_types = (ast.Call, ast.Constant)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.Call):
            return self._visit_call(node, ctx)
        assert isinstance(node, ast.Constant)
        return self._visit_constant(node, ctx)

    def _visit_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if ctx.is_file(PROFILER_HOME):
            return None
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
        ):
            return None
        module, attr = func.value.id, func.attr
        if module in _SAMPLING_MODULES:
            culprit = f"{module}.{attr}"
        elif (module, attr) in _SAMPLING_CALLS:
            culprit = f"{module}.{attr}"
        else:
            return None
        return [
            self.finding(
                ctx,
                node,
                f"samples host resources via `{culprit}(...)` outside "
                "obs/profiler.py — route through repro.obs.profiler "
                "(rss_peak_bytes / process_cpu_seconds / ResourceMeter / "
                "profiled_span) so units, overhead and volatile-field "
                "stripping stay centralised",
            )
        ]

    def _visit_constant(
        self, node: ast.Constant, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if ctx.is_file(EVENTS_HOME):
            return None
        value = node.value
        if not isinstance(value, str) or not value.startswith(
            EVENTS_SCHEMA_PREFIX
        ):
            return None
        return [
            self.finding(
                ctx,
                node,
                f"spells the event schema id {value!r} outside "
                "obs/events.py — emit and read event streams through the "
                "EventLog API (EventLog/read_events/validate_events) so "
                "envelope, sequencing and flush discipline stay in one "
                "place",
            )
        ]
