"""SimClockDiscipline: the serving simulator runs on virtual time only.

The whole value of :mod:`repro.serve` is that a run is a pure function
of ``(scenario, fleet, seed)``: request timestamps, latency percentiles
and SLA verdicts come off a discrete-event heap, so the same seed gives
a byte-identical ``serve_report.json`` on any machine at any speed.
One ``time.time()`` (or ``perf_counter``, or ``datetime.now``) inside
the package quietly breaks that contract — a latency computed from the
host clock looks plausible in review and only diverges under load or
across machines, the worst kind of reproducibility bug.

The rule is deliberately blunt: *importing* ``time`` or ``datetime``
anywhere under ``serve/`` is a finding, whatever the import is used
for.  There is no legitimate wall-clock consumer in the package —
simulated timestamps come from the event heap, entropy comes from the
seeded streams in ``serve/arrivals.py``, and host-resource telemetry
belongs to ``obs/profiler.py`` (TelemetryDiscipline).  Code that needs
a real clock belongs outside the simulator, where the taint engine
(:class:`~repro.lint.program.taint.NondeterminismFlow`) tracks where
its values flow.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.program.scopes import SERVE_HOME
from repro.lint.registry import register

__all__ = ["SimClockDiscipline"]

#: Module roots whose import into serve/ is a wall-clock leak.
_CLOCK_MODULES = frozenset({"time", "datetime"})


def _root(name: str) -> str:
    return name.split(".", 1)[0]


@register
class SimClockDiscipline(Rule):
    name = "SimClockDiscipline"
    description = (
        "serve/ runs on the virtual event-heap clock only: importing "
        "time or datetime there leaks wall-clock into seed-deterministic "
        "serving reports"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        assert isinstance(node, (ast.Import, ast.ImportFrom))
        if not ctx.in_dir(SERVE_HOME):
            return None
        findings: List[Finding] = []
        if isinstance(node, ast.Import):
            offending = [
                alias.name
                for alias in node.names
                if _root(alias.name) in _CLOCK_MODULES
            ]
        else:
            module = node.module or ""
            offending = [module] if _root(module) in _CLOCK_MODULES else []
        for name in offending:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"imports wall-clock module `{name}` inside serve/ — "
                    "the serving simulator is virtual-time only; simulated "
                    "timestamps come off the event heap and host clocks "
                    "break seed determinism",
                )
            )
        return findings
