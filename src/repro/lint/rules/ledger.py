"""LedgerDiscipline: op/byte accounting flows through the ledger core.

MAD's headline numbers (−52 % DRAM traffic in Fig. 2, ×3 arithmetic
intensity in Fig. 3) are sums over ``CostReport`` objects.  A single
``dram_bytes += ...`` accumulated outside the cost model, or a mutation
of a shared ``CostReport``'s fields, silently skews every downstream
figure.  This rule confines raw cost-field arithmetic to the three
files that *are* the accounting core — ``perf/events.py`` (where the
fields and their operators are defined), ``perf/ledger.py`` and
``perf/cache.py`` — plus ``memsim/accounting.py``, the one file where
the trace-driven simulator is allowed to accumulate per-stream DRAM
byte counters (see :class:`~repro.lint.rules.tracing.TraceDiscipline`
for the memsim-side rules) — and requires everything else to build
fresh reports.

Two clauses:

* anywhere outside the core: assigning to (or augmenting) an attribute
  named like a cost field (``.ops``, ``.traffic``, ``.mults``,
  ``.adds``, per-stream byte fields, ``*_bytes``/``*_ops``) mutates
  shared cost state;
* inside ``perf/``, ``sweep/`` or ``serve/`` but outside the core:
  ``name += ...`` on a ``*_bytes``/``*_ops``-style local keeps a shadow
  total the ledger never sees (sweep evaluators aggregate cost reports
  across grid points and the serving simulator aggregates them across
  dispatched batches — exactly where a shadow accumulator would hide).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.program.scopes import ACCOUNTING_CORE_FILES
from repro.lint.registry import register

__all__ = ["LedgerDiscipline"]

#: Field names of OpCount / MemTraffic / CostReport.
COST_FIELDS = frozenset(
    {"mults", "adds", "ct_read", "ct_write", "key_read", "pt_read", "ops", "traffic"}
)
_SUFFIXES = ("_bytes", "_ops")



def _is_cost_identifier(name: str) -> bool:
    return name in COST_FIELDS or name.endswith(_SUFFIXES)


def _flatten_targets(node: ast.AST) -> Iterable[ast.AST]:
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _flatten_targets(element)
    else:
        yield node


@register
class LedgerDiscipline(Rule):
    name = "LedgerDiscipline"
    description = (
        "cost accounting flows through CostReport/CostLedger: no mutation of "
        "cost fields and no raw *_bytes/*_ops accumulation (perf/, sweep/ "
        "and serve/) outside perf/events.py, perf/ledger.py, perf/cache.py, "
        "memsim/accounting.py"
    )
    node_types = (ast.Assign, ast.AugAssign)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        assert isinstance(node, (ast.Assign, ast.AugAssign))
        if ctx.is_file(*ACCOUNTING_CORE_FILES):
            return None
        raw_targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        findings: List[Finding] = []
        for target in raw_targets:
            for leaf in _flatten_targets(target):
                if isinstance(leaf, ast.Attribute) and _is_cost_identifier(leaf.attr):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"mutates cost field `.{leaf.attr}` outside the "
                            "ledger core — cost primitives must return fresh "
                            "CostReports, never mutate shared ones",
                        )
                    )
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(leaf, ast.Name)
                    and _is_cost_identifier(leaf.id)
                    and (
                        ctx.in_dir("perf")
                        or ctx.in_dir("sweep")
                        or ctx.in_dir("serve")
                    )
                ):
                    where = next(
                        name
                        for name in ("perf", "sweep", "serve")
                        if ctx.in_dir(name)
                    )
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"raw accumulation into `{leaf.id}` in "
                            f"{where}/ "
                            "— route op/byte totals through CostLedger/"
                            "CostReport so figures stay trustworthy",
                        )
                    )
        return findings
