"""ExactArithPurity: the modular-arithmetic paths stay float-free.

``numth/`` and ``ring/`` implement exact RNS arithmetic — NTTs over
prime fields, CRT reconstruction, basis conversion.  The trace-parity
tests assert traced and untraced runs are *bit-identical*; one float
sneaking into these paths (a ``/`` instead of ``//`` or
``mod_inverse``, a ``math.log2``, a numpy float dtype) turns exact
integer results into approximations and breaks that guarantee silently
on large operands (floats lose integer precision past 2**53).

Flagged inside ``numth/`` and ``ring/`` only:

* true division ``/`` (including ``/=``);
* ``float``/``complex`` literals and the ``float()``/``complex()``
  builtins;
* ``math.*`` attributes outside the exact integer subset
  (``gcd``, ``isqrt``, ``lcm``, ``comb``, ``perm``, ``factorial``,
  ``prod``);
* any ``numpy`` import (its integer dtypes overflow silently and its
  default dtypes are floats).

``kernels/`` is held to the same float-free standard — its int64/uint64
residue arrays must stay bit-identical to the oracle — except for the
numpy-import check, which is waived there because vectorizing over numpy
is the package's entire purpose (overflow safety is carried by the
``q < 2**30`` headroom argument in its module docstrings and enforced by
the differential tests).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.program.scopes import EXACT_DIRS, KERNEL_DIRS
from repro.lint.registry import register

__all__ = ["ExactArithPurity"]

#: math functions that are exact on integers.
EXACT_MATH = frozenset(
    {"gcd", "isqrt", "lcm", "comb", "perm", "factorial", "prod"}
)
_FLOAT_BUILTINS = frozenset({"float", "complex"})


@register
class ExactArithPurity(Rule):
    name = "ExactArithPurity"
    description = (
        "numth/, ring/ and kernels/ are exact integer paths: no `/`, "
        "float/complex literals, float() builtins or non-exact math.*; "
        "numpy imports are additionally banned outside kernels/"
    )
    node_types = (
        ast.BinOp,
        ast.AugAssign,
        ast.Constant,
        ast.Call,
        ast.Attribute,
        ast.Import,
        ast.ImportFrom,
    )

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        in_kernels = ctx.in_dir(*KERNEL_DIRS)
        if not in_kernels and not ctx.in_dir(*EXACT_DIRS):
            return None
        if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
            node.op, ast.Div
        ):
            return [
                self.finding(
                    ctx,
                    node,
                    "true division `/` in an exact modular-arithmetic path — "
                    "use `//` or repro.numth.modular.mod_inverse",
                )
            ]
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (float, complex)
        ):
            return [
                self.finding(
                    ctx,
                    node,
                    f"{type(node.value).__name__} literal {node.value!r} in an "
                    "exact modular-arithmetic path — floats lose integer "
                    "precision past 2**53",
                )
            ]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _FLOAT_BUILTINS
        ):
            return [
                self.finding(
                    ctx,
                    node,
                    f"`{node.func.id}()` conversion in an exact "
                    "modular-arithmetic path",
                )
            ]
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "math"
            and node.attr not in EXACT_MATH
        ):
            return [
                self.finding(
                    ctx,
                    node,
                    f"`math.{node.attr}` is not exact on integers; only "
                    f"{', '.join(sorted(EXACT_MATH))} are allowed here",
                )
            ]
        if in_kernels:
            # The kernels package exists to vectorize over numpy; the
            # import checks below do not apply there.
            return None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "numpy":
                    return [
                        self.finding(
                            ctx,
                            node,
                            "numpy import in an exact modular-arithmetic path "
                            "— its dtypes are floats or silently-overflowing "
                            "fixed-width ints",
                        )
                    ]
        if isinstance(node, ast.ImportFrom) and (node.module or "").split(".")[
            0
        ] == "numpy":
            return [
                self.finding(
                    ctx,
                    node,
                    "numpy import in an exact modular-arithmetic path — its "
                    "dtypes are floats or silently-overflowing fixed-width "
                    "ints",
                )
            ]
        return None
