"""Domain rules enforcing the reproduction's accounting invariants.

Importing this package registers every rule with
:mod:`repro.lint.registry`:

* :class:`~repro.lint.rules.ledger.LedgerDiscipline` — cost-field
  arithmetic stays inside the ledger core (Fig. 2 / Fig. 3 trust).
* :class:`~repro.lint.rules.spans.SpanLabelStability` — span labels are
  static; volatile values go in span attrs (PR-2 diff alignment).
* :class:`~repro.lint.rules.exact.ExactArithPurity` — no floats in the
  exact modular-arithmetic paths (``numth/``, ``ring/``).
* :class:`~repro.lint.rules.units.UnitsHygiene` — byte- and op-valued
  expressions never cross-assigned or added.
* :class:`~repro.lint.rules.config.ConfigFlagCoverage` — every
  ``MADConfig`` flag is read by the performance model.
* :class:`~repro.lint.rules.tracing.TraceDiscipline` — memsim trace
  events are emitted only via ``TraceRecorder``, and simulated byte
  counters accumulate only in ``memsim/accounting.py``.
* :class:`~repro.lint.rules.telemetry.TelemetryDiscipline` — host
  resource sampling stays in ``obs/profiler.py`` and the
  ``repro.obs.events/*`` schema id appears only in ``obs/events.py``.
* :class:`~repro.lint.rules.simclock.SimClockDiscipline` — the serving
  simulator (``serve/``) never imports ``time``/``datetime``; simulated
  timestamps come off the virtual event-heap clock only.

Whole-program rules (run with ``repro lint --program``) register from
:mod:`repro.lint.program`:

* :class:`~repro.lint.program.taint.NondeterminismFlow` —
  interprocedural taint from nondeterminism sources (time, random,
  set/dict iteration order, filesystem order, completion order) into
  determinism sinks (report payloads, fingerprints, memo keys,
  baseline comparisons).
* :class:`~repro.lint.program.schema.SchemaLiteralConsistency` — every
  ``repro.*/v*`` schema literal agrees with its declaring constant,
  has both a producer and a validator, and matches committed baselines.
"""

from repro.lint.program.schema import SchemaLiteralConsistency
from repro.lint.program.taint import NondeterminismFlow
from repro.lint.rules.config import ConfigFlagCoverage
from repro.lint.rules.exact import ExactArithPurity
from repro.lint.rules.ledger import LedgerDiscipline
from repro.lint.rules.simclock import SimClockDiscipline
from repro.lint.rules.spans import SpanLabelStability
from repro.lint.rules.telemetry import TelemetryDiscipline
from repro.lint.rules.tracing import TraceDiscipline
from repro.lint.rules.units import UnitsHygiene

__all__ = [
    "ConfigFlagCoverage",
    "ExactArithPurity",
    "LedgerDiscipline",
    "NondeterminismFlow",
    "SchemaLiteralConsistency",
    "SimClockDiscipline",
    "SpanLabelStability",
    "TelemetryDiscipline",
    "TraceDiscipline",
    "UnitsHygiene",
]
