"""ConfigFlagCoverage: every ``MADConfig`` flag drives the model.

Each boolean on :class:`repro.perf.optimizations.MADConfig` claims to
reproduce one MAD technique (O(1)/O(beta)/O(alpha) caching, limb
re-ordering, ModDown merge/hoist, key compression).  A flag that no
cost formula in ``perf/`` ever reads is a reproduction bug: the ladder
figures would show an "optimization" that changes nothing.

This is the one cross-file rule: it collects ``MADConfig``'s dataclass
fields wherever the class is defined, collects every attribute name
read in ``perf/``, ``sweep/`` and ``serve/`` files *other than* the
defining module (whose ``__post_init__`` validation reads don't count
as model coverage; sweep evaluators dispatch on the same flags when
building ablation grids, and the serving simulator prices every
request under a config, so their reads count too), and at the end of
the run reports each flag with no read, anchored at the flag's
definition line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.registry import register

__all__ = ["ConfigFlagCoverage"]


@register
class ConfigFlagCoverage(Rule):
    name = "ConfigFlagCoverage"
    description = (
        "every MADConfig flag must be read somewhere in perf/, sweep/ or "
        "serve/ outside its defining module — dead optimization flags are "
        "reproduction bugs"
    )
    node_types = (ast.ClassDef, ast.Attribute)

    def __init__(self) -> None:
        #: flag name -> (path, line, col) of its definition.
        self._flags: Dict[str, Tuple[str, int, int]] = {}
        self._defining_path: Optional[str] = None
        #: perf-/sweep-file path -> attribute names read there.
        self._reads: Dict[str, Set[str]] = {}

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.ClassDef):
            if node.name != "MADConfig":
                return None
            self._defining_path = ctx.display_path
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    self._flags[stmt.target.id] = (
                        ctx.display_path,
                        stmt.lineno,
                        stmt.col_offset + 1,
                    )
            return None
        assert isinstance(node, ast.Attribute)
        if isinstance(node.ctx, ast.Load) and (
            ctx.in_dir("perf") or ctx.in_dir("sweep") or ctx.in_dir("serve")
        ):
            self._reads.setdefault(ctx.display_path, set()).add(node.attr)
        return None

    def finish_run(self) -> Iterable[Finding]:
        if not self._flags:
            return ()
        read: Set[str] = set()
        for path, attrs in self._reads.items():
            if path != self._defining_path:
                read |= attrs
        findings: List[Finding] = []
        for flag, (path, line, col) in sorted(self._flags.items()):
            if flag not in read:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"MADConfig flag `{flag}` is never read in "
                            "perf/, sweep/ or serve/ — a flag no cost "
                            "formula consults makes the optimization "
                            "ladder silently lie"
                        ),
                    )
                )
        return findings
