"""TraceDiscipline: memsim traces and counters stay behind their APIs.

The differential validation in :mod:`repro.memsim.validate` is only as
trustworthy as the traces it replays.  Two invariants keep it honest:

* **Events come from the recorder.**  ``TraceRecorder`` is the one
  sanctioned emitter of trace events: it owns block identity (buffer
  allocation), validates streams and bounds, and counts what it emits
  into the metrics registry.  A schedule generator that constructs
  ``Access``/``BulkAccess``/``PinEvent``/``FlushEvent`` objects by hand
  bypasses all of that — a typo'd stream name or out-of-range block id
  would silently skew the simulated DRAM totals the validator compares
  against the analytical model.  Direct construction is therefore
  allowed only in ``memsim/trace.py``, where the types are defined.

* **Byte counters live in the accounting module.**  Simulated per-stream
  DRAM bytes accumulate in exactly one place,
  ``memsim/accounting.py`` (:class:`~repro.memsim.accounting.DramCounters`),
  mirroring how :class:`~repro.lint.rules.ledger.LedgerDiscipline`
  confines analytical cost arithmetic to the ledger core.  Any
  ``*_bytes += ...`` elsewhere under ``memsim/`` is a shadow total the
  differential comparison never sees.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import FileContext, Finding, Rule
from repro.lint.program.scopes import (
    MEMSIM_ACCOUNTING_HOME,
    MEMSIM_TRACE_HOME,
)
from repro.lint.registry import register

__all__ = ["TraceDiscipline"]

#: Trace event types that must be emitted via TraceRecorder.
EVENT_TYPES = frozenset({"Access", "BulkAccess", "PinEvent", "FlushEvent"})



def _called_name(func: ast.AST) -> Optional[str]:
    """The terminal identifier of a call target (``Access``/``m.Access``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class TraceDiscipline(Rule):
    name = "TraceDiscipline"
    description = (
        "memsim trace events are emitted only via TraceRecorder (no direct "
        "Access/BulkAccess/PinEvent/FlushEvent construction outside "
        "memsim/trace.py) and *_bytes accumulation under memsim/ stays in "
        "memsim/accounting.py"
    )
    node_types = (ast.Call, ast.AugAssign)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Optional[Iterable[Finding]]:
        if isinstance(node, ast.Call):
            return self._visit_call(node, ctx)
        assert isinstance(node, ast.AugAssign)
        return self._visit_augassign(node, ctx)

    def _visit_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if ctx.is_file(MEMSIM_TRACE_HOME):
            return None
        name = _called_name(node.func)
        if name not in EVENT_TYPES:
            return None
        return [
            self.finding(
                ctx,
                node,
                f"constructs trace event `{name}(...)` directly — emit "
                "events through the TraceRecorder API (read/write/scratch/"
                "pin/flush) so block identity, stream names and bounds stay "
                "validated",
            )
        ]

    def _visit_augassign(
        self, node: ast.AugAssign, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if not ctx.in_dir("memsim") or ctx.is_file(MEMSIM_ACCOUNTING_HOME):
            return None
        target = node.target
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            return None
        if not name.endswith("_bytes"):
            return None
        return [
            self.finding(
                ctx,
                node,
                f"accumulates `{name}` outside memsim/accounting.py — "
                "simulated DRAM bytes must flow through DramCounters so the "
                "differential validator sees every byte",
            )
        ]
