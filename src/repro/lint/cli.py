"""CLI behind ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the argparse wiring there stays
one-line-per-command; exit codes follow linter convention: 0 clean,
1 findings, 2 usage errors (unknown rule, missing path).

``--program`` adds the whole-program pass (nondeterminism taint,
schema-literal consistency); ``--changed-only`` replays the previous
result from ``.lint_cache/`` when no file content changed;
``--format sarif`` emits SARIF 2.1.0 for code-scanning upload, and
``--out`` writes the chosen format to a file in addition to stdout
text output.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.core import LintResult, ProgramRule, run_lint
from repro.lint.registry import (
    all_program_rules,
    all_rules,
    get_program_rules,
    get_rules,
    rule_descriptions,
)
from repro.lint.reporters import render_json, render_sarif, render_text

__all__ = ["DEFAULT_PATHS", "lint_command"]

#: What ``python -m repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src/repro",)


def _render_rule_list() -> str:
    descriptions = rule_descriptions()
    width = max(len(name) for name in descriptions)
    return "\n".join(
        f"{name:{width}}  {description}"
        for name, description in descriptions.items()
    )


def _render(result: LintResult, fmt: str) -> str:
    if fmt == "json":
        return render_json(result)
    if fmt == "sarif":
        return render_sarif(result)
    return render_text(result)


def lint_command(args: argparse.Namespace) -> int:
    """Implementation of the ``lint`` subcommand (see repro.cli)."""
    if args.list_rules:
        print(_render_rule_list())
        return 0
    fmt = getattr(args, "format", None) or ("json" if args.json else "text")
    try:
        if args.rule:
            rules = get_rules(args.rule)
            program_rules: List[ProgramRule] = get_program_rules(args.rule)
            if program_rules and not args.program:
                raise ValueError(
                    "rule(s) "
                    + ", ".join(rule.name for rule in program_rules)
                    + " need the whole-program pass; pass --program"
                )
        else:
            rules = all_rules()
            program_rules = all_program_rules() if args.program else []
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if not args.program:
        program_rules = []
    cache: Optional[LintCache] = None
    if getattr(args, "changed_only", False):
        cache = LintCache(Path(DEFAULT_CACHE_DIR))
    paths = args.paths or list(DEFAULT_PATHS)
    try:
        result: LintResult = run_lint(
            paths, rules, program_rules=program_rules, cache=cache
        )
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    rendered = _render(result, fmt)
    out = getattr(args, "out", None)
    if out:
        Path(out).write_text(rendered + "\n", encoding="utf-8")
        summary = render_text(result)
        if result.from_cache:
            summary += " [cached]"
        print(summary)
    else:
        if fmt == "text" and result.from_cache:
            rendered += " [cached]"
        print(rendered)
    return 0 if result.clean else 1
