"""CLI behind ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the argparse wiring there stays
one-line-per-command; exit codes follow linter convention: 0 clean,
1 findings, 2 usage errors (unknown rule, missing path).
"""

from __future__ import annotations

import argparse

from repro.lint.core import LintResult, run_lint
from repro.lint.registry import all_rules, get_rules, rule_descriptions
from repro.lint.reporters import render_json, render_text

__all__ = ["DEFAULT_PATHS", "lint_command"]

#: What ``python -m repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src/repro",)


def _render_rule_list() -> str:
    descriptions = rule_descriptions()
    width = max(len(name) for name in descriptions)
    return "\n".join(
        f"{name:{width}}  {description}"
        for name, description in descriptions.items()
    )


def lint_command(args: argparse.Namespace) -> int:
    """Implementation of the ``lint`` subcommand (see repro.cli)."""
    if args.list_rules:
        print(_render_rule_list())
        return 0
    try:
        rules = get_rules(args.rule) if args.rule else all_rules()
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    paths = args.paths or list(DEFAULT_PATHS)
    try:
        result: LintResult = run_lint(paths, rules)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.clean else 1
