"""Suppression comments: opt a line or file out of named rules.

Three forms, all spelled in regular ``#`` comments:

* trailing, applies to its own line::

      dram_bytes += slack  # lint: disable=LedgerDiscipline

* standalone, applies to the next line (for statements whose line is
  already full)::

      # lint: disable=SpanLabelStability
      with obs.span(label):
          ...

* file-level, applies to every line of the file wherever it appears::

      # lint: disable-file=ExactArithPurity

Rule lists are comma-separated; the special name ``all`` suppresses
every rule.  Suppressions are matched against the *first* line of a
multi-line statement (the ``lineno`` the finding reports).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable-file|disable)\s*=\s*(?P<rules>[\w.\-]+(?:\s*,\s*[\w.\-]+)*)"
)


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """(row, col, text) for every comment; tolerant of tokenize errors."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a crude per-line scan; good enough for directives.
        out = []
        for row, line in enumerate(source.splitlines(), start=1):
            pos = line.find("#")
            if pos >= 0:
                out.append((row, pos, line[pos:]))
        return out
    return [
        (tok.start[0], tok.start[1], tok.string)
        for tok in tokens
        if tok.type == tokenize.COMMENT
    ]


class SuppressionIndex:
    """Which (rule, line) pairs a file has opted out of."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        lines = source.splitlines()
        for row, col, text in _comment_tokens(source):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = {
                name.strip() for name in match.group("rules").split(",") if name.strip()
            }
            if match.group("kind") == "disable-file":
                index._file_wide |= rules
                continue
            line = lines[row - 1] if 0 < row <= len(lines) else ""
            standalone = not line[:col].strip()
            target = row + 1 if standalone else row
            index._by_line.setdefault(target, set()).update(rules)
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self._file_wide or rule in self._file_wide:
            return True
        at_line = self._by_line.get(line)
        if at_line is None:
            return False
        return "all" in at_line or rule in at_line
