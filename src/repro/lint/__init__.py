"""Domain-aware static analysis for the MAD reproduction.

The analytical claims this repo reproduces (Fig. 2's DRAM-traffic
reduction, Fig. 3's arithmetic-intensity gains) are only as trustworthy
as a handful of repo-wide invariants: every op and byte flows through
``CostReport``/``CostLedger``, span labels stay stable so cost diffs
align across refactors, and the exact modular-arithmetic paths never
touch floats.  ``repro.lint`` enforces those invariants mechanically —
an AST visitor core (:mod:`repro.lint.core`), a pluggable rule registry
(:mod:`repro.lint.registry`), per-line/per-file suppressions
(:mod:`repro.lint.suppressions`), text/JSON reporters
(:mod:`repro.lint.reporters`) and the domain rules themselves
(:mod:`repro.lint.rules`).

On top of the per-file rules sits a whole-program pass
(:mod:`repro.lint.program`): a project symbol table and call graph feed
an interprocedural nondeterminism-taint engine and a schema-literal
consistency check.  Enable it with ``--program``; ``--changed-only``
replays the previous result from ``.lint_cache/`` when nothing
changed, and ``--format sarif`` emits SARIF 2.1.0 for code scanning.

Run it as ``python -m repro lint [--json] [--rule NAME] [paths]`` or
``make lint`` / ``make lint-fast``; CI gates every push on a clean
``--program`` report.

Typical programmatic use::

    from repro.lint import all_rules, run_lint, render_text

    result = run_lint(["src/repro"], all_rules())
    print(render_text(result))
    assert not result.findings
"""

from repro.lint.cache import LintCache
from repro.lint.core import (
    FileContext,
    Finding,
    LintResult,
    ProgramRule,
    Rule,
    run_lint,
)
from repro.lint.registry import (
    all_program_rules,
    all_rules,
    get_program_rules,
    get_rules,
    register,
    register_program,
    rule_descriptions,
    rule_names,
)
from repro.lint.reporters import (
    SCHEMA_VERSION,
    render_json,
    render_sarif,
    render_text,
    report_dict,
    validate_report,
)
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "SCHEMA_VERSION",
    "FileContext",
    "Finding",
    "LintCache",
    "LintResult",
    "ProgramRule",
    "Rule",
    "SuppressionIndex",
    "all_program_rules",
    "all_rules",
    "get_program_rules",
    "get_rules",
    "register",
    "register_program",
    "render_json",
    "render_sarif",
    "render_text",
    "report_dict",
    "rule_descriptions",
    "rule_names",
    "run_lint",
    "validate_report",
]
