"""AST visitor engine: files in, :class:`Finding` objects out.

Two passes share one parse of every file:

* the **per-file pass** — one :func:`ast.walk` per file dispatches
  nodes to every rule that registered interest in that node type
  (``Rule.node_types``), so adding a rule never adds a file-parse or
  tree-walk.  Rules are plain objects with per-file hooks
  (``start_file``/``visit``/``finish_file``) and one run-wide hook
  (``finish_run``) for cross-file invariants such as
  :class:`~repro.lint.rules.config.ConfigFlagCoverage`;
* the **program pass** — when program rules are supplied, the already-
  parsed trees are assembled into a
  :class:`~repro.lint.program.symbols.Program` (symbol table, import
  resolution, call graph) and each :class:`ProgramRule` checks the
  whole project at once (nondeterminism taint, schema-literal
  consistency).

Suppression comments (see :mod:`repro.lint.suppressions`) are applied
uniformly by the engine after all rules of both passes have reported,
so rules never need to know about them.  An optional
:class:`~repro.lint.cache.LintCache` short-circuits the entire run when
no file content changed (the cache key hashes every file's content
plus the rule selection).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.lint.suppressions import SuppressionIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.cache import LintCache
    from repro.lint.program.symbols import Program

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "ProgramRule",
    "Rule",
    "run_lint",
]

#: Pseudo-rule name attached to findings for unparseable files.
PARSE_ERROR_RULE = "SyntaxError"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class FileContext:
    """Per-file state handed to every rule hook."""

    def __init__(self, path: Path, display_path: str, tree: ast.AST, source: str):
        self.path = path
        self.display_path = display_path
        self.tree = tree
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.parts: Tuple[str, ...] = PurePosixPath(
            display_path.replace("\\", "/")
        ).parts
        self.suppressions = SuppressionIndex.from_source(source)

    def in_dir(self, *names: str) -> bool:
        """Is any of ``names`` a directory component of this file's path?"""
        return any(name in self.parts for name in names)

    def is_file(self, *tails: str) -> bool:
        """Does the path end with any of the given POSIX tails?"""
        posix = "/".join(self.parts)
        return any(posix.endswith(tail) for tail in tails)


class Rule:
    """Base class for lint rules; register subclasses with ``@register``.

    Subclasses set ``name`` (the identifier used in reports and
    suppression comments), ``description`` (shown by ``--list-rules``)
    and ``node_types`` (the AST node classes ``visit`` wants to see).
    A fresh instance is created per run, so rules may keep state on
    ``self`` and report it from ``finish_file``/``finish_run``.
    """

    name: str = ""
    description: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def start_file(self, ctx: FileContext) -> None:
        """Called before any node of a new file is visited."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Optional[Iterable[Finding]]:
        """Inspect one node; return findings (or None) for it."""
        return None

    def finish_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Called after the last node of a file; may report findings."""
        return ()

    def finish_run(self) -> Iterable[Finding]:
        """Called once after every file; for cross-file invariants."""
        return ()


class ProgramRule:
    """Base class for whole-program rules; register with ``@register_program``.

    A program rule sees the assembled
    :class:`~repro.lint.program.symbols.Program` — symbol table, module
    resolution, call graph — instead of one file at a time.  A fresh
    instance is created per run.  Findings are suppressible with the
    same ``# lint: disable=`` comments as per-file rules.
    """

    name: str = ""
    description: str = ""

    def check(self, program: "Program") -> Iterable[Finding]:
        """Inspect the whole program; return findings."""
        return ()


@dataclass
class LintResult:
    """Outcome of one lint run (post-suppression)."""

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    rules: List[str] = field(default_factory=list)
    suppressed: int = 0
    #: True when the whole result was replayed from the on-disk cache.
    from_cache: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self.findings:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return counts


def _iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence[ProgramRule]] = None,
    cache: Optional["LintCache"] = None,
    baseline_dirs: Optional[Sequence[Path]] = None,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths``.

    ``rules`` defaults to one fresh instance of every registered
    per-file rule.  ``program_rules`` (default: none) additionally runs
    the whole-program pass over the parsed trees.  ``cache`` replays
    the previous result when no file content (and no rule selection)
    changed.  Raises :class:`FileNotFoundError` for paths that do not
    exist.
    """
    if rules is None:
        from repro.lint.registry import all_rules

        rules = all_rules()
    rule_list = list(rules)
    program_list = list(program_rules) if program_rules else []

    sources: List[Tuple[Path, str, str]] = []
    for path in _iter_python_files(paths):
        sources.append(
            (path, _display_path(path), path.read_text(encoding="utf-8"))
        )

    cache_key: Optional[str] = None
    if cache is not None:
        cache_key = cache.run_key(
            rule_names=[rule.name for rule in rule_list]
            + [rule.name for rule in program_list],
            files=[(display, source) for _, display, source in sources],
        )
        cached = cache.load(cache_key)
        if cached is not None:
            return cached

    by_type: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rule_list:
        for node_type in rule.node_types:
            by_type.setdefault(node_type, []).append(rule)

    findings: List[Finding] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    linted: List[str] = []
    parsed: List[Tuple[str, ast.Module]] = []

    for path, display, source in sources:
        linted.append(display)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(path, display, tree, source)
        suppressions[display] = ctx.suppressions
        parsed.append((display, tree))
        for rule in rule_list:
            rule.start_file(ctx)
        for node in ast.walk(tree):
            for rule in by_type.get(type(node), ()):
                found = rule.visit(node, ctx)
                if found:
                    findings.extend(found)
        for rule in rule_list:
            findings.extend(rule.finish_file(ctx))

    for rule in rule_list:
        findings.extend(rule.finish_run())

    if program_list and parsed:
        from repro.lint.program.symbols import Program

        program = Program.build(parsed, baseline_dirs=baseline_dirs)
        for program_rule in program_list:
            findings.extend(program_rule.check(program))

    kept: List[Finding] = []
    suppressed = 0
    for item in findings:
        index = suppressions.get(item.path)
        if index is not None and index.is_suppressed(item.rule, item.line):
            suppressed += 1
        else:
            kept.append(item)
    kept.sort(key=Finding.sort_key)
    result = LintResult(
        findings=kept,
        files=linted,
        rules=[rule.name for rule in rule_list]
        + [rule.name for rule in program_list],
        suppressed=suppressed,
    )
    if cache is not None and cache_key is not None:
        cache.store(cache_key, result)
    return result
