"""Rule registry: name → rule class, populated by ``@register``.

Rule modules under :mod:`repro.lint.rules` register themselves at import
time; every lookup helper first ensures that package is imported, so
callers never see a half-populated registry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.lint.core import Rule

__all__ = ["all_rules", "get_rules", "register", "rule_descriptions", "rule_names"]

_RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    name = cls.name
    if not name or name == "Rule":
        raise ValueError(f"rule class {cls.__name__} must set a unique `name`")
    if name in _RULES:
        raise ValueError(f"duplicate rule name {name!r}")
    _RULES[name] = cls
    return cls


def _ensure_loaded() -> None:
    import repro.lint.rules  # noqa: F401  (imports register the rules)


def rule_names() -> List[str]:
    """Sorted names of every registered rule."""
    _ensure_loaded()
    return sorted(_RULES)


def rule_descriptions() -> Dict[str, str]:
    """Mapping of rule name → one-line description (for ``--list-rules``)."""
    _ensure_loaded()
    return {name: _RULES[name].description for name in sorted(_RULES)}


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, sorted by name."""
    _ensure_loaded()
    return [_RULES[name]() for name in sorted(_RULES)]


def get_rules(names: Sequence[str]) -> List[Rule]:
    """Instances for the named rules; raises ValueError on unknown names."""
    _ensure_loaded()
    unknown = sorted(set(names) - set(_RULES))
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(_RULES))}"
        )
    return [_RULES[name]() for name in names]
