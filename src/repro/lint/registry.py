"""Rule registry: name → rule class, populated by ``@register``.

Rule modules under :mod:`repro.lint.rules` register themselves at import
time; every lookup helper first ensures that package is imported, so
callers never see a half-populated registry.  Per-file rules
(:class:`~repro.lint.core.Rule`, ``@register``) and whole-program rules
(:class:`~repro.lint.core.ProgramRule`, ``@register_program``) live in
separate tables because the engine runs them in different passes, but
they share one name space: a name identifies exactly one rule of either
kind, and suppression comments do not care which pass produced a
finding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.lint.core import ProgramRule, Rule

__all__ = [
    "all_program_rules",
    "all_rules",
    "get_program_rules",
    "get_rules",
    "register",
    "register_program",
    "rule_descriptions",
    "rule_names",
]

_RULES: Dict[str, Type[Rule]] = {}
_PROGRAM_RULES: Dict[str, Type[ProgramRule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    name = cls.name
    if not name or name == "Rule":
        raise ValueError(f"rule class {cls.__name__} must set a unique `name`")
    if name in _RULES or name in _PROGRAM_RULES:
        raise ValueError(f"duplicate rule name {name!r}")
    _RULES[name] = cls
    return cls


def register_program(cls: Type[ProgramRule]) -> Type[ProgramRule]:
    """Class decorator adding a :class:`ProgramRule` to the registry."""
    name = cls.name
    if not name or name == "ProgramRule":
        raise ValueError(f"rule class {cls.__name__} must set a unique `name`")
    if name in _RULES or name in _PROGRAM_RULES:
        raise ValueError(f"duplicate rule name {name!r}")
    _PROGRAM_RULES[name] = cls
    return cls


def _ensure_loaded() -> None:
    import repro.lint.rules  # noqa: F401  (imports register the rules)


def rule_names() -> List[str]:
    """Sorted names of every registered rule (both passes)."""
    _ensure_loaded()
    return sorted([*_RULES, *_PROGRAM_RULES])


def rule_descriptions() -> Dict[str, str]:
    """Mapping of rule name → one-line description (for ``--list-rules``)."""
    _ensure_loaded()
    merged: Dict[str, Type[object]] = {**_RULES, **_PROGRAM_RULES}
    return {
        name: getattr(merged[name], "description", "") for name in sorted(merged)
    }


def all_rules() -> List[Rule]:
    """One fresh instance of every registered per-file rule, sorted by name."""
    _ensure_loaded()
    return [_RULES[name]() for name in sorted(_RULES)]


def all_program_rules() -> List[ProgramRule]:
    """One fresh instance of every registered program rule, sorted by name."""
    _ensure_loaded()
    return [_PROGRAM_RULES[name]() for name in sorted(_PROGRAM_RULES)]


def get_rules(names: Sequence[str]) -> List[Rule]:
    """Per-file instances for the named rules; program-rule names are
    skipped here (fetch those with :func:`get_program_rules`).  Raises
    ValueError on names that belong to neither table."""
    _ensure_loaded()
    unknown = sorted(set(names) - set(_RULES) - set(_PROGRAM_RULES))
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"known rules: {', '.join(rule_names())}"
        )
    return [_RULES[name]() for name in names if name in _RULES]


def get_program_rules(names: Sequence[str]) -> List[ProgramRule]:
    """Program-rule instances for the named rules (unknown names raise)."""
    _ensure_loaded()
    unknown = sorted(set(names) - set(_RULES) - set(_PROGRAM_RULES))
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"known rules: {', '.join(rule_names())}"
        )
    return [_PROGRAM_RULES[name]() for name in names if name in _PROGRAM_RULES]
