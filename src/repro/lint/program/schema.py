"""SchemaLiteralConsistency: every ``repro.*/v*`` id agrees project-wide.

The repo speaks several versioned report schemas (``repro.lint/v1``,
``repro.sweep/v1.1``, ``repro.obs.run_report/v1.1``, ...).  Each one
has a single *home*: the module that declares the current id in a
module-level ``*SCHEMA*``/``*VERSION*`` constant (plus, optionally, an
``ACCEPTED_*`` tuple of still-readable older ids).  Version drift —
a producer stamping ``v2`` while the validator still accepts ``v1`` —
ships reports nothing can read back, and is invisible to per-file
linting because producer and validator live in different modules.

On top of the program symbol table this rule checks:

* **drift** — every literal occurrence of a family's id, anywhere in
  the project, is one of the home's accepted versions;
* **undeclared families** — a schema id used with no declaring
  constant anywhere (so producer and validator cannot share a
  definition);
* **multiple homes** — one family declared in two modules;
* **validators with no producer / producers with no validator** —
  uses of the home constant (and raw literals) are classified by the
  enclosing function: ``validate*`` functions are validators,
  everything else produces;
* **committed baselines/fixtures** — every ``"schema"`` value in
  ``benchmarks/baselines/*.json`` must be accepted by its family's
  validator (families without a home in the scanned tree are skipped,
  so partial-tree runs cannot false-positive).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Finding, ProgramRule
from repro.lint.program.symbols import ModuleTable, Program
from repro.lint.registry import register_program

__all__ = ["SchemaLiteralConsistency", "SCHEMA_ID_PATTERN"]

#: Full-match pattern for versioned schema ids.
SCHEMA_ID_PATTERN = re.compile(
    r"repro\.[a-z0-9_]+(?:\.[a-z0-9_]+)*/v[0-9]+(?:\.[0-9]+)*"
)

#: Module-level constant names that declare a family's current id.
_DECLARING = ("SCHEMA", "VERSION")
#: Module-level constant names that extend the accepted set.
_ACCEPTING = ("ACCEPTED",)


def _family(schema_id: str) -> str:
    return schema_id.split("/", 1)[0]


@dataclass
class _Occurrence:
    value: str
    path: str
    line: int
    col: int
    function: Optional[str]  #: enclosing function qualname, if any


@dataclass
class _Family:
    name: str
    home_module: Optional[str] = None
    home_path: Optional[str] = None
    home_line: int = 1
    current: Set[str] = field(default_factory=set)
    accepted: Set[str] = field(default_factory=set)
    homes: List[str] = field(default_factory=list)
    validator_uses: List[_Occurrence] = field(default_factory=list)
    producer_uses: List[_Occurrence] = field(default_factory=list)


def _is_validator_name(name: Optional[str]) -> bool:
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1]
    return terminal.startswith("validate") or terminal.endswith("validator")


def _literals_in(expr: ast.expr) -> Iterable[ast.Constant]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if SCHEMA_ID_PATTERN.fullmatch(node.value):
                yield node


class _Collector:
    """Scan one program for schema declarations and uses."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.families: Dict[str, _Family] = {}

    def family(self, name: str) -> _Family:
        return self.families.setdefault(name, _Family(name=name))

    # ------------------------------------------------------------------
    def collect(self) -> None:
        for module_name in sorted(self.program.modules):
            module = self.program.modules[module_name]
            self._collect_declarations(module)
        for module_name in sorted(self.program.modules):
            module = self.program.modules[module_name]
            self._collect_uses(module)

    def _collect_declarations(self, module: ModuleTable) -> None:
        for const_name in sorted(module.constants):
            expr = module.constants[const_name]
            literals = list(_literals_in(expr))
            if not literals:
                continue
            upper = const_name.upper()
            declaring = any(tag in upper for tag in _DECLARING) and not any(
                tag in upper for tag in _ACCEPTING
            )
            accepting = any(tag in upper for tag in _ACCEPTING)
            for literal in literals:
                fam = self.family(_family(literal.value))
                if declaring:
                    fam.current.add(literal.value)
                    fam.accepted.add(literal.value)
                    if module.name not in fam.homes:
                        fam.homes.append(module.name)
                    if fam.home_module is None:
                        fam.home_module = module.name
                        fam.home_path = module.path
                        fam.home_line = literal.lineno
                elif accepting:
                    fam.accepted.add(literal.value)

    # ------------------------------------------------------------------
    def _collect_uses(self, module: ModuleTable) -> None:
        enclosing = _FunctionIndex(module)
        # Raw literal occurrences.
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and SCHEMA_ID_PATTERN.fullmatch(node.value)
            ):
                continue
            occurrence = _Occurrence(
                value=node.value,
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                function=enclosing.lookup(node.lineno),
            )
            self._classify(occurrence)
        # Name loads of home constants (local or imported).
        aliases = self._constant_aliases(module)
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in aliases
            ):
                value = aliases[node.id]
                occurrence = _Occurrence(
                    value=value,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    function=enclosing.lookup(node.lineno),
                )
                self._classify(occurrence, literal=False)

    def _classify(
        self, occurrence: _Occurrence, literal: bool = True
    ) -> None:
        fam = self.family(_family(occurrence.value))
        if occurrence.function is None:
            return  # declarations/constants handled above
        if _is_validator_name(occurrence.function):
            fam.validator_uses.append(occurrence)
        else:
            fam.producer_uses.append(occurrence)

    def _constant_aliases(self, module: ModuleTable) -> Dict[str, str]:
        """Local names that resolve to a declaring schema constant."""
        aliases: Dict[str, str] = {}
        for const_name in sorted(module.constants):
            upper = const_name.upper()
            if not any(tag in upper for tag in _DECLARING):
                continue
            literals = list(_literals_in(module.constants[const_name]))
            if len(literals) == 1:
                aliases[const_name] = literals[0].value
        for local in sorted(module.imports):
            target = module.imports[local]
            if target.symbol is None:
                continue
            upper = target.symbol.upper()
            if not any(tag in upper for tag in _DECLARING):
                continue
            source = self.program.module_named(target.module)
            if source is None or target.symbol not in source.constants:
                continue
            literals = list(_literals_in(source.constants[target.symbol]))
            if len(literals) == 1:
                aliases[local] = literals[0].value
        return aliases


class _FunctionIndex:
    """Line -> enclosing function qualname for one module."""

    def __init__(self, module: ModuleTable) -> None:
        self.ranges: List[Tuple[int, int, str]] = []
        for name in sorted(module.functions):
            info = module.functions[name]
            end = getattr(info.node, "end_lineno", info.lineno)
            self.ranges.append((info.lineno, end, info.qualname))
        for class_name in sorted(module.classes):
            for method in sorted(module.classes[class_name].methods):
                info = module.classes[class_name].methods[method]
                end = getattr(info.node, "end_lineno", info.lineno)
                self.ranges.append((info.lineno, end, info.qualname))

    def lookup(self, line: int) -> Optional[str]:
        best: Optional[Tuple[int, str]] = None
        for start, end, qualname in self.ranges:
            if start <= line <= end:
                if best is None or start > best[0]:
                    best = (start, qualname)
        return best[1] if best else None


@register_program
class SchemaLiteralConsistency(ProgramRule):
    name = "SchemaLiteralConsistency"
    description = (
        "every repro.*/v* schema id matches its declaring constant's "
        "accepted versions, has both a producer and a validator, and "
        "agrees with the committed baselines/fixtures"
    )

    def check(self, program: Program) -> Iterable[Finding]:
        collector = _Collector(program)
        collector.collect()
        findings: List[Finding] = []
        for name in sorted(collector.families):
            findings.extend(self._check_family(collector.families[name]))
        findings.extend(self._check_baselines(program, collector))
        return findings

    # ------------------------------------------------------------------
    def _check_family(self, fam: _Family) -> Iterable[Finding]:
        findings: List[Finding] = []
        uses = sorted(
            fam.validator_uses + fam.producer_uses,
            key=lambda o: (o.path, o.line, o.col),
        )
        if fam.home_module is None:
            if uses:
                first = uses[0]
                findings.append(
                    self._finding(
                        first.path,
                        first.line,
                        first.col,
                        f"schema id {first.value!r} has no declaring "
                        "module-level *SCHEMA*/*VERSION* constant anywhere "
                        "in the project — hoist it so producers and "
                        "validators share one definition",
                    )
                )
            return findings
        if len(fam.homes) > 1:
            findings.append(
                self._finding(
                    fam.home_path or "",
                    fam.home_line,
                    1,
                    f"schema family {fam.name!r} is declared in multiple "
                    f"modules ({', '.join(fam.homes)}) — one module must "
                    "own the version",
                )
            )
        for occurrence in uses:
            if occurrence.value not in fam.accepted:
                accepted = ", ".join(sorted(fam.accepted))
                findings.append(
                    self._finding(
                        occurrence.path,
                        occurrence.line,
                        occurrence.col,
                        f"schema id {occurrence.value!r} drifts from "
                        f"{fam.name}'s declared versions ({accepted}) — "
                        "bump the declaring constant and its validator "
                        "together, never a lone literal",
                    )
                )
        if fam.validator_uses and not fam.producer_uses:
            first = min(
                fam.validator_uses, key=lambda o: (o.path, o.line, o.col)
            )
            findings.append(
                self._finding(
                    first.path,
                    first.line,
                    first.col,
                    f"schema family {fam.name!r} has a validator but no "
                    "producer in the scanned tree — dead validators drift "
                    "silently from the payloads they claim to gate",
                )
            )
        if fam.producer_uses and not fam.validator_uses:
            findings.append(
                self._finding(
                    fam.home_path or "",
                    fam.home_line,
                    1,
                    f"schema family {fam.name!r} has producers but no "
                    "validate* function referencing it — emitted payloads "
                    "are ungated",
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _check_baselines(
        self, program: Program, collector: _Collector
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        for directory in sorted(program.baseline_dirs, key=str):
            for path in sorted(directory.rglob("*.json")):
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    continue
                for schema_id in sorted(_schema_values(payload)):
                    if not SCHEMA_ID_PATTERN.fullmatch(schema_id):
                        continue
                    fam = collector.families.get(_family(schema_id))
                    if fam is None or fam.home_module is None:
                        continue  # partial-tree run: cannot judge
                    if schema_id not in fam.accepted:
                        accepted = ", ".join(sorted(fam.accepted))
                        findings.append(
                            self._finding(
                                fam.home_path or "",
                                fam.home_line,
                                1,
                                f"committed baseline {path.as_posix()} "
                                f"carries {schema_id!r}, which "
                                f"{fam.name}'s validator no longer "
                                f"accepts ({accepted}) — regenerate the "
                                "baseline or widen ACCEPTED_SCHEMA_IDS",
                            )
                        )
        return findings

    def _finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.name, path=path, line=line, col=col, message=message
        )


def _schema_values(payload: object) -> Iterable[str]:
    if isinstance(payload, dict):
        for key, value in payload.items():
            if key == "schema" and isinstance(value, str):
                yield value
            else:
                yield from _schema_values(value)
    elif isinstance(payload, list):
        for item in payload:
            yield from _schema_values(item)
