"""The project map: every path-scoping constant the lint rules share.

Until PR 8 each rule module carried its own copy of "where is this
allowed" knowledge (``ALLOWED_FILES`` in the ledger rule,
``PROFILER_HOME`` in the telemetry rule, ...).  The whole-program layer
needs the same map — the taint engine's allowlisted volatile channels
*are* the telemetry rule's confinement targets — so the constants live
here, next to the symbol table, and both the per-file rules and the
program passes import them.  One edit updates every analysis.

Path tails are matched with :meth:`repro.lint.core.FileContext.is_file`
(POSIX suffix match) and directory names with
:meth:`~repro.lint.core.FileContext.in_dir`, so the constants work for
the shipped ``src/repro`` tree and for test fixtures copied under a
tmp dir alike.
"""

from __future__ import annotations

__all__ = [
    "ACCOUNTING_CORE_FILES",
    "ALLOWED_PAYLOAD_KEYS",
    "EVENTS_HOME",
    "EXACT_DIRS",
    "KERNEL_DIRS",
    "MEMSIM_ACCOUNTING_HOME",
    "MEMSIM_TRACE_HOME",
    "PROFILER_HOME",
    "SEEDED_STREAM_FILES",
    "SERVE_HOME",
    "VOLATILE_CHANNEL_FILES",
]

# ----------------------------------------------------------------------
# Accounting / arithmetic confinement (per-file rules)
# ----------------------------------------------------------------------

#: The accounting core where cost-field arithmetic is definitionally OK
#: (:class:`~repro.lint.rules.ledger.LedgerDiscipline`).
ACCOUNTING_CORE_FILES = (
    "perf/events.py",
    "perf/ledger.py",
    "perf/cache.py",
    "memsim/accounting.py",
)

#: Exact integer paths that must stay float-free
#: (:class:`~repro.lint.rules.exact.ExactArithPurity`).
EXACT_DIRS = ("numth", "ring")

#: The vectorized arithmetic kernels: exact like :data:`EXACT_DIRS` —
#: every value is an int64/uint64 residue and the differential tests
#: assert bit-identity against the pure-Python oracle — but numpy is the
#: whole point, so only the numpy-import check is waived there
#: (:class:`~repro.lint.rules.exact.ExactArithPurity`).
KERNEL_DIRS = ("kernels",)

#: The sole sanctioned module for host resource sampling
#: (:class:`~repro.lint.rules.telemetry.TelemetryDiscipline`).
PROFILER_HOME = "obs/profiler.py"

#: Where the ``repro.obs.events/*`` schema id and the event envelope are
#: defined (:class:`~repro.lint.rules.telemetry.TelemetryDiscipline`).
EVENTS_HOME = "obs/events.py"

#: Where direct memsim trace-event construction is definitionally OK
#: (:class:`~repro.lint.rules.tracing.TraceDiscipline`).
MEMSIM_TRACE_HOME = "memsim/trace.py"

#: The sole sanctioned accumulation site for simulated byte counters
#: (:class:`~repro.lint.rules.tracing.TraceDiscipline`).
MEMSIM_ACCOUNTING_HOME = "memsim/accounting.py"

#: The serving simulator package: virtual-clock only.  No module under
#: this directory may import ``time`` or ``datetime``
#: (:class:`~repro.lint.rules.simclock.SimClockDiscipline`) — simulated
#: timestamps come off the event heap, so a wall-clock read is either
#: dead code or a determinism leak.
SERVE_HOME = "serve"

# ----------------------------------------------------------------------
# Determinism taint: the allowlisted volatile channels
# ----------------------------------------------------------------------

#: Modules whose *job* is handling wall-clock / host-volatile values.
#:
#: Functions defined in these files return clean values to the taint
#: engine and their internal sinks are not reported: they are the
#: documented volatile channels every determinism comparison already
#: strips (``strip_volatile``) or ignores (``provenance``, span
#: ``start``/``end`` micros, resource samples).
#:
#: * ``obs/profiler.py`` — host resource sampling lives here by
#:   construction (TelemetryDiscipline); everything it returns lands in
#:   ``resources`` blocks, which ``strip_volatile`` removes.
#: * ``obs/events.py`` — the event envelope carries wall-clock ``ts``
#:   and the provenance block carries git SHA / argv by design; event
#:   streams are never inputs to fingerprints or baselines.
#: * ``obs/tracer.py`` — span ``start``/``end`` are ``perf_counter``
#:   readings by design; ``strip_volatile`` zeroes the derived
#:   ``start_us``/``duration_us`` before any bit-identity comparison.
#: * ``obs/telemetry.py`` — rebases and strips those same clocks; it is
#:   the sanitizer's own home.
VOLATILE_CHANNEL_FILES = (
    "obs/profiler.py",
    "obs/events.py",
    "obs/tracer.py",
    "obs/telemetry.py",
)

#: Modules whose *job* is deriving deterministic streams from seeds.
#:
#: Like :data:`VOLATILE_CHANNEL_FILES`, functions defined here return
#: clean values to the taint engine — but for the opposite reason: the
#: RNG use inside them is *not* volatile.  Every stream is drawn from a
#: ``random.Random`` instance constructed from an explicit string seed
#: (SHA-512 seeded, immune to ``PYTHONHASHSEED``), so identical seeds
#: give identical streams on every platform and process.  Ambient RNG
#: (``random.random()`` on the module-global instance) anywhere else
#: remains a finding.
#:
#: * ``serve/arrivals.py`` — the serving simulator's only entropy
#:   source: seeded Poisson/bursty/diurnal arrival processes.
#: * ``kernels/check.py`` — the differential-check harness behind
#:   ``repro kernels``: residue inputs come off a string-seeded stream
#:   so the parity verdict is a pure function of the seed; its
#:   ``runtime`` block is host wall-clock by contract, mirroring the
#:   timing fields every other report family carries.
SEEDED_STREAM_FILES = ("serve/arrivals.py", "kernels/check.py")

#: Report-payload keys that hold scheduling- or host-dependent values by
#: contract.  A tainted value is legal under these keys because every
#: determinism comparison already excludes them: ``strip_volatile``
#: drops/zeroes them from run reports, and the CI sweep-parity gate
#: strips the same set from ``sweep_report.json`` before asserting
#: bit-identity.  Flowing nondeterminism under any *other* key is a
#: finding.
ALLOWED_PAYLOAD_KEYS = frozenset(
    {
        "busy_seconds",
        "chunks",
        "jobs",
        "memo",
        "provenance",
        "reused",
        "resources",
        "runtime",
        "wall_seconds",
        "worker_utilisation",
        "workers",
    }
)
