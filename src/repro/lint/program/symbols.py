"""Project symbol table and module resolution for the program pass.

The per-file rules see one tree at a time; the program rules
(:mod:`repro.lint.program.taint`, :mod:`repro.lint.program.schema`)
need to answer questions like "which function does
``obs.capture()`` name in this module?" across the whole package.
:class:`Program` holds the answer:

* every module parsed into a :class:`ModuleTable` — its top-level
  functions, classes (with methods and dataclass-style fields),
  module-level constants and import aliases;
* a flat qualname → :class:`FunctionInfo` index;
* :meth:`Program.resolve_name` / :meth:`Program.resolve_call`, which
  chase import aliases (``import x as y``, ``from x import y as z``,
  relative imports) and attribute access on known module objects to a
  project-internal qualname or an external dotted name.

Module names are derived from the file path relative to the scanned
root, so the table works identically for the shipped ``src/repro``
tree and for fixture trees written under pytest tmp dirs; resolution
matches imports against known modules exactly first, then by dotted
suffix (``perf.primitives`` in a fixture tree answers for
``repro.perf.primitives``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ClassTable",
    "FunctionInfo",
    "ImportTarget",
    "ModuleTable",
    "Program",
    "Resolution",
]


@dataclass(frozen=True)
class ImportTarget:
    """What an imported alias refers to: a module, or a symbol in one."""

    module: str
    symbol: Optional[str] = None

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.symbol}" if self.symbol else self.module


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  #: ``module.func`` or ``module.Class.func``
    module: str
    path: str  #: display path of the defining file
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassTable:
    """A class definition: its methods and (annotated) field order."""

    name: str
    qualname: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: AnnAssign field names in declaration order (dataclass call mapping).
    fields: List[str] = field(default_factory=list)


@dataclass
class ModuleTable:
    """Everything the program pass knows about one module."""

    name: str  #: dotted module name, e.g. ``repro.obs.export``
    path: str  #: display path
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassTable] = field(default_factory=dict)
    imports: Dict[str, ImportTarget] = field(default_factory=dict)
    #: module-level ``NAME = <literal/tuple>`` assignments (schema rule).
    constants: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def package(self) -> str:
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving a name/call target.

    ``kind`` is ``"project"`` (``name`` is a project qualname),
    ``"external"`` (``name`` is a dotted name outside the scanned tree,
    e.g. ``time.perf_counter``) or ``"unknown"`` (an attribute on a
    non-module object; ``name`` is the terminal attribute).
    """

    kind: str
    name: str


def _module_name_from_parts(parts: Tuple[str, ...]) -> str:
    """Dotted module name for a path relative to the scan root."""
    names = list(parts)
    if names and names[-1].endswith(".py"):
        names[-1] = names[-1][:-3]
    if names and names[-1] == "__init__":
        names = names[:-1]
    return ".".join(names) if names else "__root__"


def _relative_parts(path: str, root_parts: Tuple[str, ...]) -> Tuple[str, ...]:
    parts = PurePosixPath(path.replace("\\", "/")).parts
    if root_parts and parts[: len(root_parts)] == root_parts:
        parts = parts[len(root_parts):]
    return parts


class Program:
    """Whole-program symbol table over one scanned file set."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleTable] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: display path -> module name (per-file rule interop).
        self.by_path: Dict[str, str] = {}
        #: directories scanned for committed baseline/fixture JSONs.
        self.baseline_dirs: List[Path] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        files: Sequence[Tuple[str, ast.Module]],
        baseline_dirs: Optional[Sequence[Path]] = None,
    ) -> "Program":
        """Build the table from ``(display_path, parsed tree)`` pairs.

        The deepest common directory of all files is taken as the scan
        root; module names are dotted paths below it.  The result is
        independent of the order of ``files``.
        """
        program = cls()
        ordered = sorted(files, key=lambda item: item[0])
        root = _common_root([path for path, _ in ordered])
        for path, tree in ordered:
            parts = _relative_parts(path, root)
            name = _module_name_from_parts(parts)
            table = _build_module(name, path, tree)
            program.modules[name] = table
            program.by_path[path] = name
            for info in table.functions.values():
                program.functions[info.qualname] = info
            for klass in table.classes.values():
                for info in klass.methods.values():
                    program.functions[info.qualname] = info
        if baseline_dirs is not None:
            program.baseline_dirs = [Path(d) for d in baseline_dirs]
        else:
            program.baseline_dirs = _discover_baseline_dirs(ordered)
        return program

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def module_named(self, dotted: str) -> Optional[ModuleTable]:
        """Exact match first, then unique dotted-suffix match."""
        table = self.modules.get(dotted)
        if table is not None:
            return table
        tail = "." + dotted
        matches = sorted(
            name for name in self.modules if name.endswith(tail)
        )
        if len(matches) == 1:
            return self.modules[matches[0]]
        # A fixture tree scanned from inside the package: the import
        # says ``repro.perf.primitives`` but the module registered as
        # ``perf.primitives``.
        matches = sorted(
            name
            for name in self.modules
            if dotted.endswith("." + name) or dotted == name
        )
        if len(matches) == 1:
            return self.modules[matches[0]]
        return None

    def resolve_name(
        self, module: ModuleTable, name: str
    ) -> Optional[Resolution]:
        """What a bare identifier refers to at module scope."""
        if name in module.functions:
            return Resolution("project", module.functions[name].qualname)
        if name in module.classes:
            return Resolution("project", module.classes[name].qualname)
        target = module.imports.get(name)
        if target is None:
            return None
        if target.symbol is None:
            imported = self.module_named(target.module)
            if imported is not None:
                return Resolution("project-module", imported.name)
            return Resolution("external", target.module)
        imported = self.module_named(target.module)
        if imported is not None:
            if target.symbol in imported.functions:
                return Resolution(
                    "project", imported.functions[target.symbol].qualname
                )
            if target.symbol in imported.classes:
                return Resolution(
                    "project", imported.classes[target.symbol].qualname
                )
            # ``from pkg import submodule``
            sub = self.module_named(f"{target.module}.{target.symbol}")
            if sub is not None:
                return Resolution("project-module", sub.name)
        return Resolution("external", target.dotted)

    def resolve_dotted(
        self, module: ModuleTable, chain: Sequence[str]
    ) -> Optional[Resolution]:
        """Resolve ``a.b.c`` where ``a`` is a name in ``module``'s scope."""
        if not chain:
            return None
        head = self.resolve_name(module, chain[0])
        if head is None:
            return None
        rest = list(chain[1:])
        current = head
        while rest:
            attr = rest.pop(0)
            if current.kind == "project-module":
                owner = self.modules.get(current.name)
                if owner is None:
                    return Resolution("external", f"{current.name}.{attr}")
                nxt = self.resolve_name(owner, attr)
                if nxt is None:
                    sub = self.module_named(f"{owner.name}.{attr}")
                    if sub is not None:
                        nxt = Resolution("project-module", sub.name)
                    else:
                        return Resolution(
                            "external", f"{owner.name}.{attr}"
                        )
                current = nxt
            elif current.kind == "project":
                # Attribute on a project class: a method lookup.
                info = self.functions.get(f"{current.name}.{attr}")
                if info is not None:
                    current = Resolution("project", info.qualname)
                else:
                    return Resolution("unknown", attr)
            else:  # external
                current = Resolution("external", f"{current.name}.{attr}")
        return current

    def resolve_call(
        self, module: ModuleTable, call: ast.Call, class_name: Optional[str] = None
    ) -> Resolution:
        """Resolve a call target to project/external/unknown.

        ``class_name`` is the enclosing class for ``self.method()``
        resolution.
        """
        chain = _attribute_chain(call.func)
        if chain is None:
            return Resolution("unknown", "")
        if chain[0] == "self" and class_name is not None and len(chain) == 2:
            info = self.functions.get(
                f"{module.name}.{class_name}.{chain[1]}"
            )
            if info is not None:
                return Resolution("project", info.qualname)
            return Resolution("unknown", chain[1])
        resolved = self.resolve_dotted(module, chain)
        if resolved is None:
            if len(chain) == 1:
                # Unresolved bare name: a builtin or a local variable.
                return Resolution("external", chain[0])
            return Resolution("unknown", chain[-1])
        if resolved.kind == "project-module":
            # Calling a module object is nonsense; treat as unknown.
            return Resolution("unknown", chain[-1])
        return resolved


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None when the base isn't a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _common_root(paths: Sequence[str]) -> Tuple[str, ...]:
    split = [
        PurePosixPath(p.replace("\\", "/")).parts[:-1] for p in paths
    ]
    if not split:
        return ()
    prefix = split[0]
    for parts in split[1:]:
        shared = 0
        for a, b in zip(prefix, parts):
            if a != b:
                break
            shared += 1
        prefix = prefix[:shared]
    return prefix


def _discover_baseline_dirs(
    files: Sequence[Tuple[str, ast.Module]]
) -> List[Path]:
    """Find ``benchmarks/baselines`` above the scanned tree, if present."""
    seen = set()
    out: List[Path] = []
    for path, _ in files:
        base = Path(path)
        for ancestor in [base.parent, *base.parent.parents]:
            candidate = ancestor / "benchmarks" / "baselines"
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                if candidate.is_dir():
                    out.append(candidate)
        break  # all files share a root; one walk is enough
    if not out and Path("benchmarks/baselines").is_dir():
        out.append(Path("benchmarks/baselines"))
    return out


def _build_module(name: str, path: str, tree: ast.Module) -> ModuleTable:
    table = ModuleTable(name=name, path=path, tree=tree)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.functions[stmt.name] = FunctionInfo(
                qualname=f"{name}.{stmt.name}",
                module=name,
                path=path,
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            klass = ClassTable(
                name=stmt.name, qualname=f"{name}.{stmt.name}", node=stmt
            )
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    klass.methods[member.name] = FunctionInfo(
                        qualname=f"{name}.{stmt.name}.{member.name}",
                        module=name,
                        path=path,
                        node=member,
                        class_name=stmt.name,
                    )
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    klass.fields.append(member.target.id)
            table.classes[stmt.name] = klass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _record_import(table, name, stmt, overwrite=True)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                table.constants[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                table.constants[stmt.target.id] = stmt.value
    # Function-local imports (cycle avoidance is idiomatic here) resolve
    # too; module-level bindings win on alias collision.
    top_level = set(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and node not in top_level:
            _record_import(table, name, node, overwrite=False)
    return table


def _record_import(
    table: ModuleTable,
    name: str,
    stmt: "ast.Import | ast.ImportFrom",
    overwrite: bool,
) -> None:
    def bind(local: str, target: ImportTarget) -> None:
        if overwrite or local not in table.imports:
            table.imports[local] = target

    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            bind(local, ImportTarget(module=target))
        return
    base = stmt.module or ""
    if stmt.level:
        pkg_parts = name.split(".")
        # level 1 = current package, 2 = its parent, ...
        keep = len(pkg_parts) - stmt.level
        prefix = ".".join(pkg_parts[: max(keep, 0)])
        base = f"{prefix}.{base}".strip(".") if base else prefix
    for alias in stmt.names:
        if alias.name == "*":
            continue
        bind(
            alias.asname or alias.name,
            ImportTarget(module=base or "__root__", symbol=alias.name),
        )
