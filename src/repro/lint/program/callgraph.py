"""Call-graph builder over the project symbol table.

Nodes are project function qualnames (``module.func`` /
``module.Class.method``); every call site inside a project function
becomes an edge to either another project function (resolved through
imports, module attribute access and ``self.``) or an external dotted
name (``time.perf_counter``).  Unresolvable targets — attribute calls
on arbitrary objects — are recorded with their terminal attribute name
so pattern-based analyses (the taint engine's ``.items()`` handling)
can still see them.

The graph is deliberately context-insensitive: one node per function,
edges unioned over all call sites.  That is exactly the precision the
taint fixpoint needs (may-reach over return values) and keeps the
build a single pass over every tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.program.symbols import FunctionInfo, Program, Resolution

__all__ = ["CallGraph", "CallSite"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call site inside a project function."""

    caller: str  #: qualname of the enclosing project function
    kind: str  #: ``project`` | ``external`` | ``unknown``
    target: str  #: qualname, dotted external name, or attribute name
    path: str
    line: int


class CallGraph:
    """Directed call graph with def/use lookups."""

    def __init__(self) -> None:
        self.sites: List[CallSite] = []
        self._callees: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, program: Program) -> "CallGraph":
        graph = cls()
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            module = program.modules[info.module]
            for call in _calls_in(info):
                resolved = program.resolve_call(
                    module, call, class_name=info.class_name
                )
                site = CallSite(
                    caller=qualname,
                    kind=resolved.kind,
                    target=resolved.name,
                    path=info.path,
                    line=getattr(call, "lineno", info.lineno),
                )
                graph.sites.append(site)
                if resolved.kind == "project":
                    graph._callees.setdefault(qualname, set()).add(
                        resolved.name
                    )
                    graph._callers.setdefault(resolved.name, set()).add(
                        qualname
                    )
        return graph

    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> List[str]:
        """Project functions ``qualname`` may call, sorted."""
        return sorted(self._callees.get(qualname, ()))

    def callers(self, qualname: str) -> List[str]:
        """Project functions that may call ``qualname``, sorted."""
        return sorted(self._callers.get(qualname, ()))

    def external_targets(self, qualname: str) -> List[str]:
        """External dotted names ``qualname`` calls, sorted."""
        return sorted(
            {
                site.target
                for site in self.sites
                if site.caller == qualname and site.kind == "external"
            }
        )

    def reachable_from(self, qualname: str) -> Set[str]:
        """Transitive project callees of ``qualname`` (excl. itself)."""
        seen: Set[str] = set()
        stack = self.callees(qualname)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._callees.get(current, ()))
        return seen


def _calls_in(info: FunctionInfo) -> Iterator[ast.Call]:
    """Call nodes lexically inside ``info``, excluding nested defs' bodies.

    Nested functions are their own nodes in ``program.functions`` only
    when defined at module/class level; calls inside closures still
    execute under the enclosing function, so they are attributed to it.
    """
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            yield node


def resolve_use(
    program: Program, module_name: str, chain: Tuple[str, ...]
) -> Optional[Resolution]:
    """Public def/use helper: resolve a dotted use in a named module."""
    module = program.modules.get(module_name)
    if module is None:
        return None
    return program.resolve_dotted(module, list(chain))
