"""Whole-program analysis layer: symbol table, call graph, taint, schema.

Modules here power the ``ProgramRule`` pass (``repro lint --program``):

* :mod:`~repro.lint.program.scopes` — shared path-scoping constants
  (which files are accounting core, volatile channels, exact-arith);
* :mod:`~repro.lint.program.symbols` — :class:`Program`: project
  symbol table + module/import resolution built from parsed trees;
* :mod:`~repro.lint.program.callgraph` — :class:`CallGraph` over the
  symbol table (def/use through imports and attribute access);
* :mod:`~repro.lint.program.taint` — interprocedural nondeterminism
  taint (``NondeterminismFlow``);
* :mod:`~repro.lint.program.schema` — schema-literal consistency
  (``SchemaLiteralConsistency``).
"""

from __future__ import annotations

from repro.lint.program.callgraph import CallGraph, CallSite
from repro.lint.program.symbols import Program

__all__ = ["CallGraph", "CallSite", "Program"]
