"""NondeterminismFlow: interprocedural nondeterminism taint analysis.

Every number in a report is supposed to be a pure function of
``(params, config, cache_bytes)`` — that is what makes ``--jobs N``
sweeps, telemetry merges and fingerprints bit-identical to serial runs.
This engine proves the property statically instead of re-running
workloads in CI:

**Sources** (values that differ between runs or processes):

* wall clocks — ``time.time``/``perf_counter``/``monotonic`` (and
  ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* entropy — ``random.*``, ``os.urandom``, ``secrets.*``,
  ``uuid.uuid1``/``uuid4``, ``numpy.random.*``;
* process identity — ``os.getpid``/``getppid``,
  ``threading.get_ident``, ``id()``;
* filesystem enumeration order — ``os.listdir``/``scandir``,
  ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob``;
* hash-seed / insertion order — iterating ``set`` displays,
  ``set()``/``frozenset()`` results, and ``.items()``/``.keys()``/
  ``.values()`` views (dict order is deterministic *in* a process but
  not across worker processes that built the dict differently — and
  float accumulation over any unordered collection is order-dependent,
  so ``sum()`` deliberately preserves order taint);
* completion order — ``concurrent.futures.as_completed``.

**Sanitizers**: ``sorted(...)`` clears order taints;
``len``/``min``/``max``/``any``/``all`` collapse order away;
``json.dumps(..., sort_keys=True)`` clears dict-order;
``strip_volatile(...)`` clears everything (it *is* the canonical
volatile-field strip).

**Allowlisted channels**: functions defined in
:data:`~repro.lint.program.scopes.VOLATILE_CHANNEL_FILES` return clean
values (resource sampling, event envelopes, span clocks — all stripped
before any determinism comparison), as do functions in
:data:`~repro.lint.program.scopes.SEEDED_STREAM_FILES` (explicitly
seeded ``random.Random`` streams: bit-identical for identical seeds, so
their randomness is not nondeterminism), and payload keys in
:data:`~repro.lint.program.scopes.ALLOWED_PAYLOAD_KEYS` may carry
tainted values (``strip_volatile`` and the CI parity gates exclude
them).

**Sinks**: report-payload dict displays (any dict literal with a
``"schema"`` key), ``hashlib.*`` fingerprint inputs,
``Memo.get_or_compute`` keys, and baseline comparisons
(``compare_reports``/``diff_run_reports``).

Propagation is summary-based and context-insensitive: a function's
summary is the set of taint kinds that may reach its return value;
summaries propagate along the :class:`~repro.lint.program.callgraph.CallGraph`
to a fixpoint (worklist over callers).  Argument taint is approximated
at the call site — the call's result inherits its arguments' taint —
rather than re-analysed inside the callee; return-value flow is exact
to the engine's lattice.  Each finding carries a witness chain naming
the originating source call and the functions it travelled through.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Finding, ProgramRule
from repro.lint.program.callgraph import CallGraph
from repro.lint.program.scopes import (
    ALLOWED_PAYLOAD_KEYS,
    SEEDED_STREAM_FILES,
    VOLATILE_CHANNEL_FILES,
)
from repro.lint.program.symbols import FunctionInfo, ModuleTable, Program
from repro.lint.registry import register_program

__all__ = ["NondeterminismFlow", "TaintEngine"]

# Taint kinds --------------------------------------------------------------
TIME = "time"
RANDOM = "random"
PID = "process-identity"
FS_ORDER = "fs-order"
SET_ORDER = "set-order"
DICT_ORDER = "dict-order"
COMPLETION_ORDER = "completion-order"

#: Kinds that ``sorted()`` (a canonical order) neutralises.
ORDER_KINDS = frozenset({FS_ORDER, SET_ORDER, DICT_ORDER, COMPLETION_ORDER})

#: Witness: where the taint came from, innermost source first.
Witness = Tuple[str, ...]
#: Taint value: kind -> witness chain (deterministically minimal).
Taint = Dict[str, Witness]


def _merge(into: Taint, other: Taint) -> Taint:
    for kind, witness in other.items():
        current = into.get(kind)
        if current is None or witness < current:
            into[kind] = witness
    return into


def _union(*taints: Taint) -> Taint:
    out: Taint = {}
    for taint in taints:
        _merge(out, taint)
    return out


def _without(taint: Taint, kinds: frozenset) -> Taint:
    return {k: w for k, w in taint.items() if k not in kinds}


# Source tables ------------------------------------------------------------
_EXACT_SOURCES: Dict[str, str] = {
    "time.time": TIME,
    "time.time_ns": TIME,
    "time.perf_counter": TIME,
    "time.perf_counter_ns": TIME,
    "time.monotonic": TIME,
    "time.monotonic_ns": TIME,
    "time.process_time": TIME,
    "time.process_time_ns": TIME,
    "time.thread_time": TIME,
    "os.urandom": RANDOM,
    "os.getpid": PID,
    "os.getppid": PID,
    "threading.get_ident": PID,
    "uuid.uuid1": RANDOM,
    "uuid.uuid4": RANDOM,
    "os.listdir": FS_ORDER,
    "os.scandir": FS_ORDER,
    "glob.glob": FS_ORDER,
    "glob.iglob": FS_ORDER,
    "concurrent.futures.as_completed": COMPLETION_ORDER,
    "as_completed": COMPLETION_ORDER,
    "id": PID,
    "set": SET_ORDER,
    "frozenset": SET_ORDER,
}
_PREFIX_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("random.", RANDOM),
    ("secrets.", RANDOM),
    ("numpy.random.", RANDOM),
)
#: ``datetime``-flavoured constructors matched by terminal attribute.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Attribute calls that are sources regardless of the receiver's type.
_ATTR_SOURCES: Dict[str, str] = {
    "iterdir": FS_ORDER,
    "glob": FS_ORDER,
    "rglob": FS_ORDER,
    "scandir": FS_ORDER,
    "listdir": FS_ORDER,
    "items": DICT_ORDER,
    "keys": DICT_ORDER,
    "values": DICT_ORDER,
    "as_completed": COMPLETION_ORDER,
}

#: Builtins whose result does not depend on argument order.
_ORDER_COLLAPSING = frozenset({"len", "min", "max", "any", "all", "sorted"})

#: Receiver-mutating methods: taint the receiver variable with the args.
_MUTATORS = frozenset(
    {"append", "add", "extend", "insert", "update", "setdefault", "push"}
)

#: Project/external terminal names acting as baseline-comparison sinks.
_COMPARISON_SINKS = frozenset({"compare_reports", "diff_run_reports"})


def _external_source_kind(name: str) -> Optional[str]:
    kind = _EXACT_SOURCES.get(name)
    if kind is not None:
        return kind
    for prefix, prefixed_kind in _PREFIX_SOURCES:
        if name.startswith(prefix):
            return prefixed_kind
    head, _, tail = name.rpartition(".")
    if tail in _DATETIME_ATTRS and ("datetime" in head or head == "date"):
        return TIME
    return None


class TaintEngine:
    """Whole-program taint fixpoint + sink reporting."""

    def __init__(self, program: Program, graph: Optional[CallGraph] = None):
        self.program = program
        self.graph = graph if graph is not None else CallGraph.build(program)
        self.summaries: Dict[str, Taint] = {
            q: {} for q in program.functions
        }

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        """Compute summaries to fixpoint, then collect sink findings."""
        pending: List[str] = sorted(self.program.functions)
        queued: Set[str] = set(pending)
        guard = 0
        limit = max(64, 16 * len(pending) + 64)
        while pending:
            guard += 1
            if guard > limit:  # pragma: no cover - lattice is finite
                break
            qualname = pending.pop(0)
            queued.discard(qualname)
            summary, _ = self._analyze(qualname)
            if summary != self.summaries[qualname]:
                self.summaries[qualname] = summary
                for caller in self.graph.callers(qualname):
                    if caller not in queued:
                        pending.append(caller)
                        queued.add(caller)
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int, str]] = set()
        for qualname in sorted(self.program.functions):
            info = self.program.functions[qualname]
            if _in_volatile_channel(info.path):
                continue
            for finding in self._analyze(qualname, collect=True)[1]:
                key = (finding.path, finding.line, finding.col, finding.message)
                if key not in seen:
                    seen.add(key)
                    findings.append(finding)
        return findings

    def summary_of(self, qualname: str) -> Taint:
        return dict(self.summaries.get(qualname, {}))

    # ------------------------------------------------------------------
    def _analyze(
        self, qualname: str, collect: bool = False
    ) -> Tuple[Taint, List[Finding]]:
        info = self.program.functions[qualname]
        module = self.program.modules[info.module]
        analyzer = _FunctionAnalyzer(self, info, module, collect=collect)
        summary = analyzer.run()
        return summary, analyzer.findings


def _in_volatile_channel(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(
        posix.endswith(tail)
        for tail in VOLATILE_CHANNEL_FILES + SEEDED_STREAM_FILES
    )


class _FunctionAnalyzer:
    """Intraprocedural pass: name-level env, two passes for loops."""

    def __init__(
        self,
        engine: TaintEngine,
        info: FunctionInfo,
        module: ModuleTable,
        collect: bool = False,
    ) -> None:
        self.engine = engine
        self.info = info
        self.module = module
        self.collect = collect
        self.env: Dict[str, Taint] = {}
        self.returns: Taint = {}
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------
    def run(self) -> Taint:
        body = getattr(self.info.node, "body", [])
        # First pass primes loop-carried taint; findings only on the
        # second so each sink reports once.
        saved, self.collect = self.collect, False
        for stmt in body:
            self._exec(stmt)
        self.collect = saved
        self.returns = {}
        for stmt in body:
            self._exec(stmt)
        return dict(self.returns)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _exec(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs execute later; not this body's flow
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _merge(self.returns, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self.env.get(stmt.target.id, {})
                self.env[stmt.target.id] = _union(existing, taint)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            for inner in stmt.body + stmt.orelse:
                self._exec(inner)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for inner in stmt.body:
                self._exec(inner)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._exec(inner)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._exec(inner)
            return
        if isinstance(stmt, ast.Try):
            for inner in stmt.body:
                self._exec(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._exec(inner)
            for inner in stmt.orelse + stmt.finalbody:
                self._exec(inner)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no flow.

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dict(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        elif isinstance(target, ast.Subscript):
            # ``container[key] = tainted`` taints the container var.
            base = target.value
            if isinstance(base, ast.Name):
                existing = self.env.get(base.id, {})
                self.env[base.id] = _union(existing, taint)
        # Attribute targets (obj.field = x) are out of the name lattice.

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node: ast.AST) -> Taint:
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Dict):
            return self._eval_dict(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _union(
                self._eval_children(node),
                {SET_ORDER: (self._site("set display"),)},
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            comp_taint: Taint = {}
            for comp in node.generators:
                iter_taint = self._eval(comp.iter)
                self._bind(comp.target, iter_taint)
                _merge(comp_taint, iter_taint)
                for cond in comp.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                _merge(comp_taint, self._eval(node.key))
                _merge(comp_taint, self._eval(node.value))
            else:
                _merge(comp_taint, self._eval(node.elt))
            return comp_taint
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, (ast.Await, ast.Starred)):
            return self._eval(node.value)
        if isinstance(node, ast.IfExp):
            return _union(
                self._eval(node.test),
                self._eval(node.body),
                self._eval(node.orelse),
            )
        # BinOp / BoolOp / Compare / Subscript / JoinedStr / Tuple / List
        # / FormattedValue / NamedExpr and anything else: union children.
        return self._eval_children(node)

    def _eval_children(self, node: ast.AST) -> Taint:
        taint: Taint = {}
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value)
            return value
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _merge(taint, self._eval(child))
        return taint

    # ------------------------------------------------------------------
    def _eval_dict(self, node: ast.Dict) -> Taint:
        taint: Taint = {}
        keys = [
            key.value
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
            else None
            for key in node.keys
        ]
        is_payload = "schema" in keys
        for key_node, key, value in zip(node.keys, keys, node.values):
            if key_node is not None:
                _merge(taint, self._eval(key_node))
            value_taint = self._eval(value)
            if (
                is_payload
                and value_taint
                and (key is None or key not in ALLOWED_PAYLOAD_KEYS)
            ):
                label = f"`{key}`" if key is not None else "a dynamic key"
                self._report(
                    value,
                    value_taint,
                    f"report payload key {label}",
                    "route it through an allowlisted volatile field "
                    "(resources/provenance/wall_seconds), sort the "
                    "iteration, or strip it with strip_volatile before "
                    "it reaches the payload",
                )
            _merge(taint, value_taint)
        return taint

    def _eval_call(self, node: ast.Call) -> Taint:
        arg_taints = [self._eval(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }
        args_union = _union(*arg_taints, *kw_taints.values())

        resolved = self.engine.program.resolve_call(
            self.module, node, class_name=self.info.class_name
        )

        if resolved.kind == "project":
            return self._project_call(node, resolved.name, args_union)
        if resolved.kind == "external":
            return self._external_call(
                node, resolved.name, arg_taints, kw_taints, args_union
            )
        return self._unknown_call(
            node, resolved.name, arg_taints, args_union
        )

    def _project_call(
        self, node: ast.Call, qualname: str, args_union: Taint
    ) -> Taint:
        info = self.engine.program.functions.get(qualname)
        terminal = qualname.rsplit(".", 1)[-1]
        if terminal == "strip_volatile":
            return {}
        if info is not None and _in_volatile_channel(info.path):
            # Allowlisted volatile channel: whatever it returns is, by
            # contract, confined to stripped/volatile fields.
            return {}
        if terminal in _COMPARISON_SINKS and args_union:
            self._report(
                node,
                args_union,
                f"baseline comparison `{terminal}(...)`",
                "baseline gating must compare pure model output; strip "
                "volatile fields first",
            )
        summary = self.engine.summaries.get(qualname, {})
        extended = {
            kind: witness + (f"via {qualname}",)
            for kind, witness in summary.items()
        }
        return _union(extended, args_union)

    def _external_call(
        self,
        node: ast.Call,
        name: str,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
        args_union: Taint,
    ) -> Taint:
        terminal = name.rsplit(".", 1)[-1]
        kind = _external_source_kind(name)
        if kind is not None:
            source = {kind: (self._site(f"{name}(...)", node),)}
            if name in ("set", "frozenset"):
                # The *contents* stay whatever they were; the container
                # adds iteration-order dependence.
                return _union(args_union, source)
            return _union(source, _without(args_union, frozenset()))
        if terminal == "sorted" or name == "sorted":
            return _without(args_union, ORDER_KINDS)
        if name in _ORDER_COLLAPSING:
            return _without(args_union, ORDER_KINDS)
        if terminal == "strip_volatile":
            return {}
        if name.startswith("hashlib."):
            if args_union:
                self._report(
                    node,
                    args_union,
                    f"fingerprint input `{name}(...)`",
                    "fingerprints must hash canonical, order-stable "
                    "bytes; sort the iteration or strip volatile fields "
                    "first",
                )
            return args_union
        if name == "json.dumps" and any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ):
            return _without(args_union, frozenset({DICT_ORDER}))
        if terminal in _COMPARISON_SINKS and args_union:
            self._report(
                node,
                args_union,
                f"baseline comparison `{terminal}(...)`",
                "baseline gating must compare pure model output; strip "
                "volatile fields first",
            )
        return args_union

    def _unknown_call(
        self,
        node: ast.Call,
        attr: str,
        arg_taints: List[Taint],
        args_union: Taint,
    ) -> Taint:
        receiver: Taint = {}
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)
        if attr == "strip_volatile":
            return {}
        if attr == "sort":  # list.sort() canonicalises in place
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                self.env[name] = _without(
                    self.env.get(name, {}), ORDER_KINDS
                )
            return {}
        if attr == "get_or_compute":
            if arg_taints and arg_taints[0]:
                self._report(
                    node,
                    arg_taints[0],
                    "memo key `get_or_compute(...)`",
                    "memo keys must be pure functions of (params, "
                    "config, cache_bytes) or worker-local memoization "
                    "diverges from serial evaluation",
                )
            return _union(receiver, args_union)
        source_kind = _ATTR_SOURCES.get(attr)
        if source_kind is not None:
            source = {
                source_kind: (self._site(f".{attr}()", node),)
            }
            return _union(receiver, args_union, source)
        if attr in _COMPARISON_SINKS and args_union:
            self._report(
                node,
                args_union,
                f"baseline comparison `{attr}(...)`",
                "baseline gating must compare pure model output; strip "
                "volatile fields first",
            )
        if attr in _MUTATORS and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and args_union:
                existing = self.env.get(base.id, {})
                self.env[base.id] = _union(existing, args_union)
        return _union(receiver, args_union)

    # ------------------------------------------------------------------
    def _site(self, what: str, node: Optional[ast.AST] = None) -> str:
        line = getattr(node, "lineno", self.info.lineno) if node is not None \
            else self.info.lineno
        return f"{what} at {self.info.path}:{line}"

    def _report(
        self, node: ast.AST, taint: Taint, sink: str, advice: str
    ) -> None:
        if not self.collect:
            return
        kind = min(taint)
        witness = taint[kind]
        chain = "; ".join(witness)
        self.findings.append(
            Finding(
                rule=NondeterminismFlow.name,
                path=self.info.path,
                line=getattr(node, "lineno", self.info.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"nondeterminism ({kind}) flows into {sink} in "
                    f"`{self.info.qualname}` — tainted by {chain} — "
                    f"{advice}"
                ),
            )
        )


@register_program
class NondeterminismFlow(ProgramRule):
    name = "NondeterminismFlow"
    description = (
        "no nondeterminism source (clocks, entropy, pids, fs/set/dict "
        "iteration order, as_completed) may reach a determinism sink "
        "(report payloads, fingerprints, memo keys, baseline "
        "comparisons) except via sorted()/strip_volatile or the "
        "allowlisted volatile channels"
    )

    def check(self, program: Program) -> Iterable[Finding]:
        return TaintEngine(program).run()
