"""Reporters: human-readable text and a versioned JSON schema.

The JSON payload (``schema: repro.lint/v1``) is what the CI lint job
uploads as an artifact; :func:`validate_report` is a dependency-free
structural validator mirroring the style of
:func:`repro.obs.diff.validate_cost_diff`, so downstream tooling can
round-trip reports without jsonschema installed.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.core import Finding, LintResult

__all__ = [
    "SARIF_VERSION",
    "SCHEMA_VERSION",
    "load_findings",
    "render_json",
    "render_sarif",
    "render_text",
    "report_dict",
    "sarif_dict",
    "validate_report",
]

SCHEMA_VERSION = "repro.lint/v1"

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

_FINDING_FIELDS = {
    "rule": str,
    "path": str,
    "line": int,
    "col": int,
    "message": str,
}


def report_dict(result: LintResult) -> Dict[str, object]:
    """Machine-readable report for one lint run."""
    return {
        "schema": SCHEMA_VERSION,
        "rules": list(result.rules),
        "files": len(result.files),
        "suppressed": result.suppressed,
        "counts": result.counts_by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_dict(result), indent=1, sort_keys=True)


def render_text(result: LintResult) -> str:
    """One ``path:line:col: Rule: message`` line per finding + summary."""
    lines = [finding.render() for finding in result.findings]
    suffix = f" ({result.suppressed} suppressed)" if result.suppressed else ""
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{len(result.files)} file(s){suffix}"
        )
    else:
        lines.append(f"clean: {len(result.files)} file(s) linted{suffix}")
    return "\n".join(lines)


def sarif_dict(result: LintResult) -> Dict[str, object]:
    """SARIF 2.1.0 log for one lint run (one run, one result per finding).

    Rule metadata comes from the registry so the SARIF ``rules`` array
    carries descriptions for code-scanning UIs; rules that ran but are
    no longer registered (cached results after a rename) degrade to a
    bare id.
    """
    from repro.lint.registry import rule_descriptions

    descriptions = rule_descriptions()
    rules_meta = [
        {
            "id": name,
            "shortDescription": {
                "text": descriptions.get(name) or name,
            },
        }
        for name in sorted(set(result.rules) | {f.rule for f in result.findings})
    ]
    rule_index = {meta["id"]: position for position, meta in enumerate(rules_meta)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    return {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules_meta,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(sarif_dict(result), indent=1, sort_keys=True)


def validate_report(payload: object) -> None:
    """Raise ValueError unless ``payload`` is a well-formed v1 report."""
    if not isinstance(payload, dict):
        raise ValueError("lint report must be a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report schema {payload.get('schema')!r}; "
            f"expected {SCHEMA_VERSION!r}"
        )
    for key, kind in (("rules", list), ("findings", list), ("counts", dict)):
        if not isinstance(payload.get(key), kind):
            raise ValueError(f"lint report field {key!r} must be a {kind.__name__}")
    for key in ("files", "suppressed"):
        value = payload.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(
                f"lint report field {key!r} must be a non-negative integer"
            )
    findings = payload["findings"]
    assert isinstance(findings, list)
    for position, finding in enumerate(findings):
        if not isinstance(finding, dict):
            raise ValueError(f"finding #{position} must be an object")
        for fld, kind in _FINDING_FIELDS.items():
            value = finding.get(fld)
            if not isinstance(value, kind) or isinstance(value, bool):
                raise ValueError(
                    f"finding #{position} field {fld!r} must be a {kind.__name__}"
                )


def load_findings(payload: Dict[str, object]) -> List[Finding]:
    """Rebuild :class:`Finding` objects from a validated report payload."""
    validate_report(payload)
    raw = payload["findings"]
    assert isinstance(raw, list)
    out: List[Finding] = []
    for item in raw:
        assert isinstance(item, dict)
        rule, path, message = item["rule"], item["path"], item["message"]
        line, col = item["line"], item["col"]
        assert isinstance(rule, str)
        assert isinstance(path, str)
        assert isinstance(message, str)
        assert isinstance(line, int)
        assert isinstance(col, int)
        out.append(Finding(rule=rule, path=path, line=line, col=col, message=message))
    return out
