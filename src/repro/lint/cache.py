"""Whole-result lint cache keyed by file content hashes.

``repro lint --changed-only`` short-circuits the entire run when
nothing relevant changed.  The cache is deliberately *whole-result*,
not per-file: cross-file rules (``ConfigFlagCoverage``) and the
program pass (taint, schema consistency) make a file's findings depend
on every other file, so the only sound key is the full set of
``(path, content-hash)`` pairs plus the rule selection and engine
version.  A hit therefore means "identical inputs" and the previous
:class:`~repro.lint.core.LintResult` is replayed verbatim (flagged
with ``from_cache=True``).

Entries live under ``.lint_cache/`` as one JSON file per key; stale
entries are pruned down to the most recent few so the directory never
grows without bound.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lint.core import Finding, LintResult

__all__ = ["CACHE_FORMAT", "DEFAULT_CACHE_DIR", "LintCache"]

#: Bump to invalidate every existing cache entry (engine behaviour change).
CACHE_FORMAT = "repro.lint.cache/v1"

DEFAULT_CACHE_DIR = ".lint_cache"

#: Most-recent entries kept on disk; older ones are pruned on store.
_MAX_ENTRIES = 8


class LintCache:
    """On-disk replay cache for whole lint runs."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def run_key(
        self,
        rule_names: Sequence[str],
        files: Sequence[Tuple[str, str]],
    ) -> str:
        """Deterministic key over rule selection + every file's content."""
        digest = hashlib.sha256()
        digest.update(CACHE_FORMAT.encode("utf-8"))
        for name in sorted(rule_names):
            digest.update(b"\x00rule\x00" + name.encode("utf-8"))
        for display, source in sorted(files):
            content = hashlib.sha256(source.encode("utf-8")).hexdigest()
            digest.update(b"\x00file\x00" + display.encode("utf-8"))
            digest.update(b"\x00hash\x00" + content.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[LintResult]:
        """Replay the cached result for ``key``, or None on miss."""
        entry = self._entry_path(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            return None
        try:
            findings = [
                Finding(
                    rule=item["rule"],
                    path=item["path"],
                    line=item["line"],
                    col=item["col"],
                    message=item["message"],
                )
                for item in payload["findings"]
            ]
            files = list(payload["files"])
            rules = list(payload["rules"])
            suppressed = int(payload["suppressed"])
        except (KeyError, TypeError, ValueError):
            return None
        return LintResult(
            findings=findings,
            files=files,
            rules=rules,
            suppressed=suppressed,
            from_cache=True,
        )

    def store(self, key: str, result: LintResult) -> None:
        """Persist ``result`` under ``key``; best-effort (never raises)."""
        payload = {
            "format": CACHE_FORMAT,
            "findings": [finding.to_dict() for finding in result.findings],
            "files": list(result.files),
            "rules": list(result.rules),
            "suppressed": result.suppressed,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            entry = self._entry_path(key)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(entry)
            self._prune(keep=entry)
        except OSError:
            return

    def _prune(self, keep: Path) -> None:
        entries: List[Path] = [
            path
            for path in self.root.glob("*.json")
            if path != keep
        ]
        entries.sort(key=lambda path: (path.stat().st_mtime, path.name))
        for stale in entries[: max(0, len(entries) - (_MAX_ENTRIES - 1))]:
            try:
                stale.unlink()
            except OSError:
                continue
