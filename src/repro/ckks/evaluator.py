"""The CKKS evaluator: homomorphic operations over ciphertexts.

Implements every primitive of Table 2 of the paper (PtAdd, Add, PtMult,
Mult, Rotate, Conjugate) plus the sub-operations they decompose into
(Decomp, ModUp, KSKInnerProd, ModDown, Automorph, Rescale) and the MAD
algorithmic optimizations:

* ``mult(..., merged_mod_down=True)`` — Fig. 4(c): performs the post-
  key-switch addition in the raised basis (via PModUp) and folds the
  rescale into a single ModDown that divides by ``P * q_l`` at once.
* ``rotations_hoisted`` — classic ModUp hoisting: the digit decomposition
  and ModUp of ``c1`` are shared across many rotations of one ciphertext.
* ``key_switch_raised`` — exposes the intermediate ``[[P*x*s]]`` value so
  linear functions can be evaluated in the raised basis before a single
  deferred ModDown (the paper's ModDown hoisting; used by
  :class:`repro.ckks.linear.LinearTransform`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import state as obs
from repro.ring import (
    Representation,
    RnsBasis,
    RnsPolynomial,
    mod_down,
    p_mod_up,
    rescale as ring_rescale,
)
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SwitchingKey

#: Default relative tolerance when checking that two scales match.  CKKS
#: rescaling divides by primes that only approximate the scaling factor, so
#: deep circuits accumulate per-level scale drift of ~|q - Delta| / Delta;
#: additions across different depths must tolerate that drift (the induced
#: relative message error is bounded by the actual mismatch).
_SCALE_RTOL = 0.05

RaisedPair = Tuple[RnsPolynomial, RnsPolynomial]


class Evaluator:
    """Homomorphic evaluation engine bound to a context and key set.

    Span labels emitted here (``ckks.Mult``, ``ckks.KeySwitch``, ...) must
    stay constant across runs — cross-run diff alignment
    (:mod:`repro.obs.diff`) keys on the label path.  Volatile values
    (limb counts, digit counts, rotation steps) belong in span
    attributes, not labels.

    Args:
        context: the scheme context.
        relin_key: switching key from ``s^2`` to ``s`` (needed by ``mult``).
        rotation_keys: map from rotation steps to Galois keys.
        conjugation_key: Galois key for slot conjugation.
    """

    def __init__(
        self,
        context: CkksContext,
        relin_key: Optional[SwitchingKey] = None,
        rotation_keys: Optional[Dict[int, SwitchingKey]] = None,
        conjugation_key: Optional[SwitchingKey] = None,
        scale_rtol: float = _SCALE_RTOL,
    ):
        self.context = context
        self.relin_key = relin_key
        self.rotation_keys = dict(rotation_keys or {})
        self.conjugation_key = conjugation_key
        self.scale_rtol = scale_rtol

    # ==================================================================
    # Additive operations
    # ==================================================================
    def add(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        """Homomorphic addition of two ciphertexts."""
        obs.count("ckks.evaluator.add")
        ct1, ct2 = self.align_levels(ct1, ct2)
        self._check_scales(ct1.scale, ct2.scale)
        return Ciphertext(ct1.c0 + ct2.c0, ct1.c1 + ct2.c1, ct1.scale)

    def sub(self, ct1: Ciphertext, ct2: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        ct1, ct2 = self.align_levels(ct1, ct2)
        self._check_scales(ct1.scale, ct2.scale)
        return Ciphertext(ct1.c0 - ct2.c0, ct1.c1 - ct2.c1, ct1.scale)

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext(-ct.c0, -ct.c1, ct.scale)

    def pt_add(
        self, ct: Ciphertext, values: Union[Plaintext, Sequence[complex]]
    ) -> Ciphertext:
        """Add a plaintext vector; only touches ``c0`` (cheapest primitive)."""
        obs.count("ckks.evaluator.pt_add")
        pt = self._as_plaintext(values, scale=ct.scale)
        self._check_scales(ct.scale, pt.scale)
        return Ciphertext(ct.c0 + pt.to_poly(ct.basis), ct.c1, ct.scale)

    # ==================================================================
    # Multiplicative operations
    # ==================================================================
    def pt_mult(
        self,
        ct: Ciphertext,
        values: Union[Plaintext, Sequence[complex]],
        rescale: bool = True,
    ) -> Ciphertext:
        """Multiply by a plaintext vector; includes the Rescale of Table 2."""
        obs.count("ckks.evaluator.pt_mult")
        pt = self._as_plaintext(values, scale=self.context.scale)
        pt_poly = pt.to_poly(ct.basis)
        product = Ciphertext(
            ct.c0 * pt_poly, ct.c1 * pt_poly, ct.scale * pt.scale
        )
        return self.rescale(product) if rescale else product

    def pt_mult_at(
        self,
        ct: Ciphertext,
        values: Sequence[complex],
        target_scale: float,
    ) -> Ciphertext:
        """Plaintext multiply whose Rescale lands exactly on ``target_scale``.

        The chain primes only approximate ``Delta``, so operands at
        different depths carry drifted scales and their plaintext products
        drift further apart — at bootstrap-sized rings (sparse prime
        population near ``2^logq``) the drift exceeds any reasonable
        addition tolerance.  Encoding ``values`` at
        ``target_scale * q_l / ct.scale`` (``q_l`` being the modulus the
        rescale drops) makes the result's true and declared scales both
        ``target_scale`` regardless of which primes the operand has been
        rescaled by.
        """
        if ct.num_limbs < 2:
            raise ValueError(
                "pt_mult_at needs a spare level for its rescale"
            )
        q_drop = ct.basis.moduli[-1]
        pt_scale = target_scale * q_drop / ct.scale
        pt = Plaintext(
            self.context.encoder.encode(list(values), pt_scale), pt_scale
        )
        out = self.rescale(self.pt_mult(ct, pt, rescale=False))
        return Ciphertext(out.c0, out.c1, target_scale)

    def match_scale(
        self,
        ct: Ciphertext,
        target_scale: float,
        rtol: Optional[float] = None,
    ) -> Ciphertext:
        """Bring ``ct`` to ``target_scale``, spending one level if needed.

        A no-op while the declared scale is already within ``rtol``
        (default ``scale_rtol``) — the induced message error is bounded
        by the actual mismatch, so the tolerance must be chosen against
        the caller's error budget: EvalMod's Chebyshev recursion works
        on O(1) basis values whose useful output is ~1e-3, so it passes
        a far tighter ``rtol`` than the additive 5% default.  Beyond the
        tolerance it multiplies by the constant one via
        :meth:`pt_mult_at`, which costs one level off ``ct``'s chain —
        the caller should therefore pass the *higher-level* operand of
        an upcoming addition.
        """
        rtol = self.scale_rtol if rtol is None else rtol
        if math.isclose(ct.scale, target_scale, rel_tol=rtol):
            return ct
        return self.pt_mult_at(
            ct, [1.0] * self.context.slots, target_scale
        )

    def mult(
        self,
        ct1: Ciphertext,
        ct2: Ciphertext,
        rescale: bool = True,
        merged_mod_down: bool = False,
    ) -> Ciphertext:
        """Homomorphic multiplication with relinearisation.

        With ``merged_mod_down`` the key-switch output stays in the raised
        basis, the tensor terms are lifted with PModUp, and one ModDown
        divides by ``P * q_l`` — saving ``l`` per-coefficient products and a
        full orientation switch exactly as in Fig. 4 of the paper (requires
        ``rescale=True``).
        """
        if self.relin_key is None:
            raise ValueError("mult requires a relinearisation key")
        if merged_mod_down and not rescale:
            raise ValueError("merged_mod_down only makes sense with rescale")
        obs.count("ckks.evaluator.mult")
        with obs.span("ckks.Mult", limbs=min(ct1.num_limbs, ct2.num_limbs)):
            ct1, ct2 = self.align_levels(ct1, ct2)
            d0 = ct1.c0 * ct2.c0
            d1 = ct1.c0 * ct2.c1 + ct1.c1 * ct2.c0
            d2 = ct1.c1 * ct2.c1
            scale = ct1.scale * ct2.scale

            if merged_mod_down:
                return self._mult_merged(d0, d1, d2, scale)

            u, v = self.key_switch(d2, self.relin_key)
            result = Ciphertext(d0 + u, d1 + v, scale)
            return self.rescale(result) if rescale else result

    def _mult_merged(
        self,
        d0: RnsPolynomial,
        d1: RnsPolynomial,
        d2: RnsPolynomial,
        scale: float,
    ) -> Ciphertext:
        ctx = self.context
        b_raised, a_raised = self.key_switch_raised(d2, self.relin_key)
        # Lift the tensor terms into the raised basis (Algorithm 5) and add
        # there — the ciphertext is still additively homomorphic.
        specials = ctx.special_moduli
        b_raised = b_raised + p_mod_up(d0, specials)
        a_raised = a_raised + p_mod_up(d1, specials)
        # One ModDown drops the special limbs *and* the rescale limb,
        # dividing by P * q_l in a single pass.
        drop = len(specials) + 1
        dropped_limb = d0.basis.moduli[-1]
        perm_b = self._rescale_limb_last(b_raised, len(specials))
        perm_a = self._rescale_limb_last(a_raised, len(specials))
        c0 = mod_down(perm_b, drop)
        c1 = mod_down(perm_a, drop)
        return Ciphertext(c0, c1, scale / dropped_limb)

    @staticmethod
    def _rescale_limb_last(poly: RnsPolynomial, num_specials: int) -> RnsPolynomial:
        """Reorder limbs so the rescale limb ``q_l`` sits after the specials.

        ``mod_down`` drops a suffix; the merged ModDown must drop
        ``{q_l, p_1..p_k}``, so ``[q_1..q_l, p_1..p_k]`` becomes
        ``[q_1..q_{l-1}, p_1..p_k, q_l]``.  Row moves are free bookkeeping
        in evaluation form.
        """
        q_last = poly.num_limbs - num_specials - 1
        order = (
            list(range(q_last))
            + list(range(q_last + 1, poly.num_limbs))
            + [q_last]
        )
        basis = RnsBasis(
            poly.basis.degree, [poly.basis.moduli[i] for i in order]
        )
        return RnsPolynomial(
            basis, [poly.limbs[i] for i in order], Representation.EVAL
        )

    # ==================================================================
    # Rescale and level management
    # ==================================================================
    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last limb modulus, dropping one level."""
        dropped = ct.basis.moduli[-1]
        return Ciphertext(
            ring_rescale(ct.c0), ring_rescale(ct.c1), ct.scale / dropped
        )

    def reduce_level(self, ct: Ciphertext, limbs: int) -> Ciphertext:
        """Drop limbs without scaling (plain modulus reduction)."""
        if not 1 <= limbs <= ct.num_limbs:
            raise ValueError(
                f"cannot reduce a {ct.num_limbs}-limb ciphertext to {limbs}"
            )
        if limbs == ct.num_limbs:
            return ct
        basis = self.context.basis_at(limbs)
        return Ciphertext(
            RnsPolynomial(basis, ct.c0.limbs[:limbs], Representation.EVAL),
            RnsPolynomial(basis, ct.c1.limbs[:limbs], Representation.EVAL),
            ct.scale,
        )

    def align_levels(
        self, ct1: Ciphertext, ct2: Ciphertext
    ) -> Tuple[Ciphertext, Ciphertext]:
        """Bring both ciphertexts to the smaller of the two limb counts."""
        limbs = min(ct1.num_limbs, ct2.num_limbs)
        return self.reduce_level(ct1, limbs), self.reduce_level(ct2, limbs)

    # ==================================================================
    # Key switching
    # ==================================================================
    def decompose(self, poly: RnsPolynomial) -> List[RnsPolynomial]:
        """Split a ciphertext polynomial into key-switching digits."""
        with obs.span("ckks.Decomp", limbs=poly.num_limbs):
            ctx = self.context
            digits = []
            for index_range in ctx.digit_index_ranges(poly.num_limbs):
                moduli = [poly.basis.moduli[i] for i in index_range]
                rows = [poly.limbs[i] for i in index_range]
                digits.append(
                    RnsPolynomial(
                        RnsBasis(ctx.degree, moduli), rows, poly.representation
                    )
                )
            return digits

    def raise_digit(
        self, digit: RnsPolynomial, target: RnsBasis
    ) -> RnsPolynomial:
        """ModUp a digit to ``target`` (the raised basis), reordering limbs."""
        from repro.ring import mod_up

        extension = [m for m in target.moduli if m not in set(digit.basis.moduli)]
        raised = mod_up(digit, extension)
        row_of = {m: row for m, row in zip(raised.basis.moduli, raised.limbs)}
        rows = [row_of[m] for m in target.moduli]
        return RnsPolynomial(target, rows, Representation.EVAL)

    def raise_digits(self, poly: RnsPolynomial) -> List[RnsPolynomial]:
        """Decomp + ModUp of every digit (the hoistable prefix of KeySwitch)."""
        target = self.context.raised_basis(poly.num_limbs)
        digits = self.decompose(poly)
        with obs.span("ckks.ModUp", digits=len(digits)):
            return [self.raise_digit(d, target) for d in digits]

    def ksk_inner_product(
        self,
        raised_digits: Sequence[RnsPolynomial],
        key: SwitchingKey,
        live_limbs: int,
    ) -> RaisedPair:
        """Accumulate ``sum_i d_i * ksk_i`` over the raised basis."""
        key_digits = key.restricted(live_limbs, self.context)
        if len(raised_digits) > len(key_digits):
            raise ValueError(
                f"{len(raised_digits)} digits but key has {len(key_digits)}"
            )
        with obs.span("ckks.KSKInnerProd", digits=len(raised_digits)):
            target = self.context.raised_basis(live_limbs)
            acc_b = RnsPolynomial.zero(target)
            acc_a = RnsPolynomial.zero(target)
            for digit, (b_key, a_key) in zip(raised_digits, key_digits):
                acc_b = acc_b + digit * b_key
                acc_a = acc_a + digit * a_key
            return acc_b, acc_a

    def key_switch_raised(
        self, poly: RnsPolynomial, key: SwitchingKey
    ) -> RaisedPair:
        """KeySwitch up to (but not including) the final ModDown pair.

        Returns the intermediate ``[[P * x * s_from]]`` over ``R_PQ`` —
        the value the paper's "linear functions in the raised basis"
        optimizations operate on.
        """
        raised_digits = self.raise_digits(poly)
        return self.ksk_inner_product(raised_digits, key, poly.num_limbs)

    def mod_down_pair(self, pair: RaisedPair) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """The deferred ModDown pair finishing a (possibly hoisted) KeySwitch."""
        with obs.span("ckks.ModDown", polys=2):
            drop = len(self.context.special_moduli)
            return mod_down(pair[0], drop), mod_down(pair[1], drop)

    def key_switch(
        self, poly: RnsPolynomial, key: SwitchingKey
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Full KeySwitch (Algorithm 3): Decomp, ModUp, inner product, ModDown."""
        obs.count("ckks.evaluator.key_switch")
        with obs.span("ckks.KeySwitch", limbs=poly.num_limbs):
            return self.mod_down_pair(self.key_switch_raised(poly, key))

    # ==================================================================
    # Galois operations
    # ==================================================================
    def automorph(self, ct: Ciphertext, t: int) -> Ciphertext:
        """Raw automorphism of both components (decrypts under ``s(x^t)``)."""
        return Ciphertext(ct.c0.automorph(t), ct.c1.automorph(t), ct.scale)

    def _galois(self, ct: Ciphertext, t: int, key: SwitchingKey) -> Ciphertext:
        moved = self.automorph(ct, t)
        u, v = self.key_switch(moved.c1, key)
        return Ciphertext(moved.c0 + u, v, ct.scale)

    def rotate(
        self, ct: Ciphertext, steps: int, key: Optional[SwitchingKey] = None
    ) -> Ciphertext:
        """Rotate plaintext slots left by ``steps``."""
        steps = steps % self.context.slots
        if steps == 0:
            return ct
        if key is None:
            key = self.rotation_keys.get(steps)
        if key is None:
            raise ValueError(f"no rotation key for {steps} steps")
        obs.count("ckks.evaluator.rotate")
        with obs.span("ckks.Rotate", steps=steps, limbs=ct.num_limbs):
            t = self.context.encoder.rotation_automorphism(steps)
            return self._galois(ct, t, key)

    def conjugate(
        self, ct: Ciphertext, key: Optional[SwitchingKey] = None
    ) -> Ciphertext:
        """Complex-conjugate every plaintext slot."""
        key = key if key is not None else self.conjugation_key
        if key is None:
            raise ValueError("no conjugation key available")
        obs.count("ckks.evaluator.conjugate")
        with obs.span("ckks.Conjugate", limbs=ct.num_limbs):
            t = self.context.encoder.conjugation_automorphism
            return self._galois(ct, t, key)

    def rotations_hoisted(
        self, ct: Ciphertext, steps_list: Sequence[int]
    ) -> Dict[int, Ciphertext]:
        """Many rotations of one ciphertext sharing a single Decomp+ModUp.

        Classic ModUp hoisting [16, 22]: the expensive digit raise of ``c1``
        is computed once; each rotation then costs only automorphisms, one
        inner product, and the ModDown pair.
        """
        obs.count("ckks.evaluator.rotations_hoisted")
        with obs.span(
            "ckks.RotationsHoisted",
            rotations=len(steps_list),
            limbs=ct.num_limbs,
        ):
            return self._rotations_hoisted(ct, steps_list)

    def _rotations_hoisted(
        self, ct: Ciphertext, steps_list: Sequence[int]
    ) -> Dict[int, Ciphertext]:
        raised_digits = self.raise_digits(ct.c1)
        results: Dict[int, Ciphertext] = {}
        for steps in steps_list:
            steps = steps % self.context.slots
            if steps == 0:
                results[0] = ct
                continue
            key = self.rotation_keys.get(steps)
            if key is None:
                raise ValueError(f"no rotation key for {steps} steps")
            t = self.context.encoder.rotation_automorphism(steps)
            rotated_digits = [d.automorph(t) for d in raised_digits]
            pair = self.ksk_inner_product(rotated_digits, key, ct.num_limbs)
            u, v = self.mod_down_pair(pair)
            results[steps] = Ciphertext(ct.c0.automorph(t) + u, v, ct.scale)
        return results

    # ==================================================================
    # Helpers
    # ==================================================================
    def _as_plaintext(
        self, values: Union[Plaintext, Sequence[complex]], scale: float
    ) -> Plaintext:
        if isinstance(values, Plaintext):
            return values
        return Plaintext(self.context.encoder.encode(values, scale), scale)

    def _check_scales(self, s1: float, s2: float) -> None:
        if not math.isclose(s1, s2, rel_tol=self.scale_rtol):
            raise ValueError(f"scale mismatch: {s1} vs {s2}")
