"""Homomorphic polynomial evaluation in the Chebyshev basis.

Bootstrapping's EvalMod phase approximates modular reduction by a scaled
sine, evaluated as a Chebyshev interpolant.  Working in the Chebyshev basis
keeps coefficients tiny (monomial coefficients of a degree-60 interpolant
overflow double precision), and the Paterson-Stockmeyer-style recursion
below evaluates a degree-``d`` series with ``O(sqrt(d))`` ciphertext
multiplications at ``O(log d)`` depth.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ckks.cipher import Ciphertext
from repro.ckks.evaluator import Evaluator

#: Coefficients below this magnitude are skipped during evaluation.
_COEFF_TOL = 1e-13

#: Scale-alignment no-op window for the Chebyshev recursion.  The basis
#: values are O(1) while the useful EvalMod output is ~1e-3, so declared-
#: scale mismatch feeds almost directly into relative slot error; the
#: evaluator's additive 5% default is far too lax here (at N=2^14 the
#: NTT primes are sparse enough that chain drift reaches several percent,
#: which silently destroyed the bootstrap output).  Below 1e-4 the
#: induced error is under the scheme's noise floor; above it we spend a
#: level to re-target the scale exactly.
_SCALE_MATCH_RTOL = 1e-4


def chebyshev_fit(
    func: Callable[[np.ndarray], np.ndarray],
    degree: int,
    interval: Tuple[float, float],
) -> np.ndarray:
    """Chebyshev interpolant coefficients of ``func`` over ``interval``.

    Returns coefficients ``c`` such that ``func(x) ~= sum_k c[k] T_k(t)``
    with ``t = (2x - (a+b)) / (b-a)`` mapped onto ``[-1, 1]``.
    """
    a, b = interval
    if not a < b:
        raise ValueError(f"invalid interval {interval}")

    def mapped(t):
        return func((b - a) * (np.asarray(t) + 1.0) / 2.0 + a)

    return np.polynomial.chebyshev.chebinterpolate(mapped, degree)


def chebyshev_value(
    coeffs: Sequence[float], x: np.ndarray, interval: Tuple[float, float]
) -> np.ndarray:
    """Numeric reference evaluation of a fitted Chebyshev series."""
    a, b = interval
    t = (2.0 * np.asarray(x) - (a + b)) / (b - a)
    return np.polynomial.chebyshev.chebval(t, coeffs)


def _divide_by_t_s(coeffs: List[complex], s: int) -> Tuple[List[complex], List[complex]]:
    """Split ``p = hi * T_s + lo`` in the Chebyshev basis (degree(p) <= 2s).

    Uses ``T_k = 2 T_s T_{k-s} - T_{|k-2s|}`` for ``k > s`` and
    ``T_s = T_s T_0`` for ``k = s``.
    """
    c = list(coeffs)
    if len(c) - 1 > 2 * s:
        raise ValueError(
            f"degree {len(c) - 1} too large for split at T_{s}"
        )
    hi = [0.0] * (len(c) - s)
    for k in range(len(c) - 1, s - 1, -1):
        ck = c[k]
        if ck == 0:
            continue
        if k == s:
            hi[0] += ck
            c[k] = 0
            continue
        hi[k - s] += 2 * ck
        c[abs(k - 2 * s)] -= ck
        c[k] = 0
    return hi, c[:s]


class ChebyshevEvaluator:
    """Evaluates Chebyshev series homomorphically.

    The instance caches the encrypted Chebyshev polynomials ``T_k`` of the
    argument, so several series (e.g. the real- and imaginary-part sine
    evaluations in bootstrapping) can share the expensive power basis.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        ct: Ciphertext,
        interval: Tuple[float, float],
        max_degree: int,
    ):
        if max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {max_degree}")
        self.evaluator = evaluator
        self.interval = interval
        self.max_degree = max_degree
        # Baby-step count: power of two near sqrt(degree).
        self.baby = 1 << max(
            int(math.ceil(math.log2(math.sqrt(max_degree + 1)))), 1
        )
        self._powers: dict = {}
        self._build_argument(ct)
        self._build_basis()

    # ------------------------------------------------------------------
    def _build_argument(self, ct: Ciphertext) -> None:
        """Map the argument onto [-1, 1]: ``t = (2x - (a+b)) / (b-a)``."""
        a, b = self.interval
        ev = self.evaluator
        n = ev.context.slots
        scaled = ev.pt_mult(ct, [2.0 / (b - a)] * n)
        self._powers[1] = ev.pt_add(scaled, [-(a + b) / (b - a)] * n)

    def _build_basis(self) -> None:
        """Compute baby T_2..T_{m-1} and giant T_m, T_2m, ... T_k chains."""
        for k in range(2, self.baby):
            self._powers[k] = self._chebyshev_step(k)
        s = self.baby
        while s <= self.max_degree:
            self._powers[s] = self._chebyshev_step(s)
            s *= 2

    def _chebyshev_step(self, k: int) -> Ciphertext:
        """``T_k`` from lower-index entries via the product rule."""
        ev = self.evaluator
        hi = (k + 1) // 2
        lo = k // 2
        product = ev.mult(self.power(hi), self.power(lo))
        doubled = ev.add(product, product)
        n = ev.context.slots
        if k % 2 == 0:
            # T_{2a} = 2 T_a^2 - 1.
            return ev.pt_add(doubled, [-1.0] * n)
        # T_{a+b} = 2 T_a T_b - T_{a-b} with a - b = 1.  T_1 sits many
        # levels above the product, so its scale has been rescaled by
        # different chain primes — align it to the product's scale (free
        # while the drift is within tolerance, one of T_1's spare levels
        # beyond that).
        return ev.sub(
            doubled,
            ev.match_scale(
                self.power(1), doubled.scale, rtol=_SCALE_MATCH_RTOL
            ),
        )

    def power(self, k: int) -> Ciphertext:
        """The cached encryption of ``T_k(t)``."""
        try:
            return self._powers[k]
        except KeyError:
            raise ValueError(f"T_{k} was not precomputed") from None

    # ------------------------------------------------------------------
    def evaluate(self, coeffs: Sequence[complex]) -> Ciphertext:
        """Evaluate ``sum_k coeffs[k] T_k(t)`` homomorphically."""
        coeffs = list(coeffs)
        if len(coeffs) - 1 > self.max_degree:
            raise ValueError(
                f"series degree {len(coeffs) - 1} exceeds max_degree "
                f"{self.max_degree}"
            )
        result = self._evaluate_recursive(coeffs)
        if result is None:
            raise ValueError("series has no significant coefficients")
        return result

    def _evaluate_recursive(
        self, coeffs: List[complex]
    ) -> Optional[Ciphertext]:
        # Trim trailing negligible coefficients.
        while coeffs and abs(coeffs[-1]) < _COEFF_TOL:
            coeffs.pop()
        if not coeffs:
            return None
        degree = len(coeffs) - 1
        if degree < self.baby:
            return self._evaluate_direct(coeffs)
        # Split at the smallest giant power covering half the degree.
        s = self.baby
        while 2 * s < degree + 1:
            s *= 2
        hi, lo = _divide_by_t_s(coeffs, s)
        ev = self.evaluator
        hi_ct = self._evaluate_recursive(hi)
        lo_ct = self._evaluate_recursive(lo)
        if hi_ct is None:
            return lo_ct
        combined = ev.mult(hi_ct, self.power(s))
        if lo_ct is None:
            return combined
        # lo_ct is shallower than hi_ct * T_s; align its (drifted) scale.
        return ev.add(
            combined,
            ev.match_scale(lo_ct, combined.scale, rtol=_SCALE_MATCH_RTOL),
        )

    def _evaluate_direct(self, coeffs: List[complex]) -> Optional[Ciphertext]:
        """Direct baby-polynomial sum ``sum c_k T_k`` for degree < m."""
        ev = self.evaluator
        n = ev.context.slots
        # The powers sit at different levels, so a plain pt_mult would
        # rescale each term by a *different* chain prime — target the
        # context scale instead so every term is addable exactly.
        target = ev.context.scale
        acc = None
        for k in range(1, len(coeffs)):
            if abs(coeffs[k]) < _COEFF_TOL:
                continue
            term = ev.pt_mult_at(self.power(k), [coeffs[k]] * n, target)
            acc = term if acc is None else ev.add(acc, term)
        if acc is None:
            if abs(coeffs[0]) < _COEFF_TOL:
                return None
            # Constant-only series: encode it on a zero multiple of T_1.
            acc = ev.pt_mult_at(self.power(1), [0.0] * n, target)
        if abs(coeffs[0]) >= _COEFF_TOL:
            acc = ev.pt_add(acc, [coeffs[0]] * n)
        return acc
