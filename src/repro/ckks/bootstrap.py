"""CKKS bootstrapping: ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff.

Follows the structure of Algorithm 4 of the paper (Cheon et al. 2018 /
Han-Ki 2020 lineage):

1. **ModRaise** — reinterpret an exhausted single-limb ciphertext over the
   full modulus chain.  The plaintext becomes ``Delta*m + q_1*I(x)`` for a
   small integer polynomial ``I``.
2. **CoeffToSlot** — homomorphic DFT moving the coefficients of that
   plaintext into slots (two R-linear transforms extracting the real and
   imaginary packings).
3. **EvalMod** — approximate reduction mod ``q_1`` by evaluating
   ``sin(2*pi*u) / (2*pi)`` on ``u = plaintext/q_1`` as a Chebyshev series.
4. **SlotToCoeff** — the inverse DFT, moving slots back to coefficients.

The homomorphic DFT runs either as a single dense PtMatVecMult per
direction (default) or — with ``fft_iter`` set — as the genuine
``fftIter``-stage radix-2 factorisation of :mod:`repro.ckks.specialfft`,
matching the structure the performance model costs out.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.obs import state as obs
from repro.ring import RnsPolynomial
from repro.ckks.cipher import Ciphertext
from repro.ckks.context import CkksContext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.linear import LinearTransform
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_fit


def approximate_mod_poly(
    k_bound: int, degree: int
) -> Tuple[np.ndarray, Tuple[float, float]]:
    """Chebyshev series approximating ``u mod 1`` (centered) on ``[-K, K]``.

    Returns the coefficients of ``sin(2*pi*u) / (2*pi)`` — which agrees with
    the centered reduction of ``u`` modulo 1 up to ``O(eps^3)`` for inputs
    ``u = I + eps`` with integer ``|I| <= K`` — together with the fit
    interval.
    """
    if k_bound < 1:
        raise ValueError(f"k_bound must be >= 1, got {k_bound}")
    interval = (-(k_bound + 0.5), k_bound + 0.5)
    coeffs = chebyshev_fit(
        lambda u: np.sin(2.0 * np.pi * u) / (2.0 * np.pi), degree, interval
    )
    return coeffs, interval


def reduced_cos_poly(
    k_bound: int, degree: int, double_angle_iters: int
) -> Tuple[np.ndarray, Tuple[float, float]]:
    """Chebyshev series for the *angle-reduced* cosine used by double-angle
    EvalMod (Han-Ki / Bossuat et al. style).

    Evaluating ``g_0 = cos((2*pi*u - pi/2) / 2^r)`` and applying the
    double-angle rule ``g_{k+1} = 2 g_k^2 - 1`` ``r`` times yields
    ``cos(2*pi*u - pi/2) = sin(2*pi*u)``.  The reduced argument spans
    ``2^r``-fold fewer oscillations, so a much lower Chebyshev degree
    suffices — trading interpolation degree for ``r`` extra multiplicative
    levels.
    """
    if k_bound < 1:
        raise ValueError(f"k_bound must be >= 1, got {k_bound}")
    if double_angle_iters < 1:
        raise ValueError(
            f"double_angle_iters must be >= 1, got {double_angle_iters}"
        )
    interval = (-(k_bound + 0.5), k_bound + 0.5)
    scale = 2.0**double_angle_iters
    coeffs = chebyshev_fit(
        lambda u: np.cos((2.0 * np.pi * u - np.pi / 2.0) / scale),
        degree,
        interval,
    )
    return coeffs, interval


def _r_linear_matrices(
    linear_map: Callable[[np.ndarray], np.ndarray], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Express an R-linear map on C^n as ``L(z) = M1 z + M2 conj(z)``."""
    m1 = np.zeros((n, n), dtype=np.complex128)
    m2 = np.zeros((n, n), dtype=np.complex128)
    for k in range(n):
        e = np.zeros(n, dtype=np.complex128)
        e[k] = 1.0
        real_image = linear_map(e)
        imag_image = linear_map(1j * e)
        m1[:, k] = (real_image - 1j * imag_image) / 2.0
        m2[:, k] = (real_image + 1j * imag_image) / 2.0
    return m1, m2


class Bootstrapper:
    """Refreshes exhausted ciphertexts back to a high level.

    Args:
        context: scheme context; its chain must be deep enough for the
            pipeline (2 transform levels + ~log2(mod_degree)+2 EvalMod
            levels).
        keygen: the key generator holding the secret key.  A *sparse*
            secret (``hamming_weight`` small) keeps ``k_bound`` — the range
            of the integer overflow ``I(x)`` — small.
        k_bound: bound on ``|I(x)|``; defaults to ``hamming_weight/2 + 2``
            estimated from the secret's actual weight.
        mod_degree: Chebyshev degree for the EvalMod sine approximation.
    """

    def __init__(
        self,
        context: CkksContext,
        keygen: KeyGenerator,
        k_bound: Optional[int] = None,
        mod_degree: int = 63,
        double_angle_iters: int = 0,
        fft_iter: Optional[int] = None,
    ):
        self.context = context
        n = context.slots
        self.fft_iter = fft_iter
        if k_bound is None:
            weight = sum(1 for c in keygen.secret_key.coeffs if c)
            k_bound = weight // 2 + 2
        self.k_bound = k_bound
        self.mod_degree = mod_degree
        self.double_angle_iters = double_angle_iters
        if double_angle_iters:
            self.mod_coeffs, self.mod_interval = reduced_cos_poly(
                k_bound, mod_degree, double_angle_iters
            )
        else:
            self.mod_coeffs, self.mod_interval = approximate_mod_poly(
                k_bound, mod_degree
            )

        encoder = context.encoder
        # Factored (multi-iteration) homomorphic DFT: the radix-2 special
        # FFT grouped into fft_iter stages of sparse-diagonal transforms,
        # exactly the structure whose cost the performance model attributes
        # to the paper's fftIter parameter.  The stages produce/consume the
        # coefficient packing in bit-reversed slot order, which EvalMod
        # (slot-wise) is oblivious to.  The dense single-matrix transforms
        # are built only on the non-factored path: probing the maps one
        # basis vector at a time and extracting diagonals is O(n^2), which
        # is fine at unit-test sizes and hopeless at bootstrap-sized rings
        # — the factored path stays in diagonal space throughout.
        self.c2s_real: Optional[LinearTransform] = None
        self.c2s_imag: Optional[LinearTransform] = None
        self.s2c: Optional[LinearTransform] = None
        self.c2s_stages: Optional[list] = None
        self.s2c_stages: Optional[list] = None
        if fft_iter is not None:
            from repro.ckks.specialfft import SpecialFft

            fft = SpecialFft(encoder)
            self.c2s_stages = [
                LinearTransform(stage)
                for stage in fft.grouped_stage_diagonals(
                    fft_iter, inverse=True
                )
            ]
            self.s2c_stages = [
                LinearTransform(stage)
                for stage in fft.grouped_stage_diagonals(fft_iter)
            ]
        else:
            # CoeffToSlot: slots z of the raised plaintext -> packed
            # coefficient views.  embed(z) recovers the (scaled)
            # coefficient vector exactly.
            def coeff_real(z):
                return encoder.embed(z)[:n].astype(np.complex128)

            def coeff_imag(z):
                return encoder.embed(z)[n:].astype(np.complex128)

            # SlotToCoeff: packed coefficients w -> slot values of that
            # coefficient vector.
            def slots_of_packed(w):
                coeffs = np.concatenate([w.real, w.imag])
                return encoder.project(coeffs)

            self.c2s_real = LinearTransform(
                *_r_linear_matrices(coeff_real, n)
            )
            self.c2s_imag = LinearTransform(
                *_r_linear_matrices(coeff_imag, n)
            )
            self.s2c = LinearTransform(*_r_linear_matrices(slots_of_packed, n))

        self.evaluator = Evaluator(
            context,
            relin_key=keygen.relinearization_key(),
            rotation_keys={
                step: keygen.rotation_key(step)
                for step in self.required_rotations()
            },
            conjugation_key=keygen.conjugation_key(),
        )

    # ------------------------------------------------------------------
    def required_rotations(self):
        steps = set()
        if self.c2s_stages is not None:
            transforms = list(self.c2s_stages) + list(self.s2c_stages)
        else:
            transforms = [self.c2s_real, self.c2s_imag, self.s2c]
        for transform in transforms:
            steps.update(transform.required_rotations())
        return sorted(steps)

    # ------------------------------------------------------------------
    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a single-limb ciphertext over the full chain.

        The output decrypts to ``m' = Delta*m + q_1*I(x)``; we declare its
        scale to be ``q_1`` so downstream transforms see the slot values
        ``u = m'/q_1``.
        """
        if ct.num_limbs != 1:
            ct = self.evaluator.reduce_level(ct, 1)
        q1 = ct.basis.moduli[0]
        full = self.context.basis_at(self.context.max_limbs)
        half = q1 // 2

        def lift(poly: RnsPolynomial) -> RnsPolynomial:
            centered = [
                c - q1 if c > half else c for c in poly.to_coeff().limbs[0]
            ]
            return RnsPolynomial.from_int_coeffs(centered, full).to_eval()

        return Ciphertext(lift(ct.c0), lift(ct.c1), float(q1))

    # ------------------------------------------------------------------
    def coeff_to_slot(
        self, ct: Ciphertext, method: str = "hoisted"
    ) -> Tuple[Ciphertext, Ciphertext]:
        """Homomorphic DFT: slots become (real, imag) coefficient packings.

        On the factored path the packing is in bit-reversed order; the
        slot-wise EvalMod does not care, and :meth:`slot_to_coeff` consumes
        the same ordering.
        """
        if self.c2s_stages is None:
            return (
                self.c2s_real.apply(self.evaluator, ct, method=method),
                self.c2s_imag.apply(self.evaluator, ct, method=method),
            )
        ev = self.evaluator
        n = self.context.slots
        packed = ct
        for stage in self.c2s_stages:
            packed = stage.apply(ev, packed, method=method)
        conjugated = ev.conjugate(packed)
        u_real = ev.pt_mult(ev.add(packed, conjugated), [0.5] * n)
        u_imag = ev.pt_mult(ev.sub(packed, conjugated), [-0.5j] * n)
        return u_real, u_imag

    def eval_mod(self, ct: Ciphertext, factor: complex = 1.0) -> Ciphertext:
        """Approximate centered reduction mod 1 of real-valued slots.

        ``factor`` scales the output (used to multiply the imaginary branch
        by ``1j``) — folded into the series coefficients on the direct path,
        applied as a final plaintext multiplication on the double-angle path.
        """
        cheb = ChebyshevEvaluator(
            self.evaluator, ct, self.mod_interval, self.mod_degree
        )
        if not self.double_angle_iters:
            return cheb.evaluate([c * factor for c in self.mod_coeffs])
        # Double-angle path: evaluate the angle-reduced cosine at a low
        # degree, then square up r times (2cos^2 - 1) to reach
        # cos(2*pi*u - pi/2) = sin(2*pi*u), and rescale by 1/(2*pi).
        ev = self.evaluator
        n = self.context.slots
        g = cheb.evaluate(self.mod_coeffs)
        for _ in range(self.double_angle_iters):
            squared = ev.mult(g, g)
            g = ev.pt_add(ev.add(squared, squared), [-1.0] * n)
        return ev.pt_mult(g, [factor / (2.0 * math.pi)] * n)

    def slot_to_coeff(self, ct: Ciphertext, method: str = "hoisted") -> Ciphertext:
        """Inverse homomorphic DFT: packed coefficients back into slots."""
        if self.s2c_stages is None:
            return self.s2c.apply(self.evaluator, ct, method=method)
        out = ct
        for stage in self.s2c_stages:
            out = stage.apply(self.evaluator, out, method=method)
        return out

    # ------------------------------------------------------------------
    def bootstrap(self, ct: Ciphertext, method: str = "hoisted") -> Ciphertext:
        """Full bootstrap of a (nearly) exhausted ciphertext.

        The input may have any number of limbs; only its first limb is
        used.  The message magnitude must satisfy ``|m| * scale << q_1``
        for the sine approximation to hold.

        Returns a ciphertext at a high level encrypting the same message
        (scale bookkeeping is adjusted so decryption needs no external
        correction).

        When a tracer is installed (:mod:`repro.obs`) the four pipeline
        phases are emitted as nested wall-clock spans — the functional
        counterpart of the analytical span tree the performance model
        produces.
        """
        with obs.span(
            "ckks.Bootstrap",
            slots=self.context.slots,
            limbs=self.context.max_limbs,
            method=method,
        ):
            input_scale = ct.scale
            with obs.span("ModRaise"):
                raised = self.mod_raise(ct)
            q1 = float(self.context.q_basis.moduli[0])

            with obs.span("CoeffToSlot"):
                u_real, u_imag = self.coeff_to_slot(raised, method=method)
            with obs.span("EvalMod"):
                v_real = self.eval_mod(u_real)
                v_imag = self.eval_mod(u_imag, factor=1j)
                packed = self.evaluator.add(v_real, v_imag)
            with obs.span("SlotToCoeff"):
                out = self.slot_to_coeff(packed, method=method)
            # The pipeline computed values (Delta_in/q_1) * m; fold the
            # factor into the declared scale.
            return Ciphertext(out.c0, out.c1, out.scale * input_scale / q1)
