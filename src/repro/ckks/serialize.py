"""Serialization of parameters, ciphertexts and keys.

JSON-compatible dictionaries (arbitrary-precision integers are native in
Python's JSON).  The interesting part is switching-key serialization: a
*compressed* key stores only the ``b`` rows plus one PRNG seed per digit —
the uniform ``a`` rows are re-expanded on load, exactly the mechanism the
paper uses to halve switching-key DRAM traffic (Section 3.2, "KeySwitch
Key Compression").
"""

from __future__ import annotations

import json
from typing import Dict

from repro.params import CkksParams
from repro.ring import Representation, RnsBasis, RnsPolynomial
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SecretKey, SwitchingKey


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def params_to_dict(params: CkksParams) -> Dict:
    return {
        "log_n": params.log_n,
        "log_q": params.log_q,
        "max_limbs": params.max_limbs,
        "dnum": params.dnum,
        "fft_iter": params.fft_iter,
        "log_special": params.log_special,
        "eval_mod_depth": params.eval_mod_depth,
        "bit_precision": params.bit_precision,
        "word_bytes": params.word_bytes,
    }


def params_from_dict(data: Dict) -> CkksParams:
    return CkksParams(**data)


# ----------------------------------------------------------------------
# Polynomials / ciphertexts
# ----------------------------------------------------------------------
def _poly_to_dict(poly: RnsPolynomial) -> Dict:
    return {
        "moduli": list(poly.basis.moduli),
        "limbs": [list(row) for row in poly.limbs],
        "representation": poly.representation.value,
    }


def _poly_from_dict(data: Dict, degree: int) -> RnsPolynomial:
    basis = RnsBasis(degree, data["moduli"])
    return RnsPolynomial(
        basis, data["limbs"], Representation(data["representation"])
    )


def ciphertext_to_dict(ct: Ciphertext) -> Dict:
    return {
        "c0": _poly_to_dict(ct.c0),
        "c1": _poly_to_dict(ct.c1),
        "scale": ct.scale,
    }


def ciphertext_from_dict(data: Dict, context: CkksContext) -> Ciphertext:
    degree = context.degree
    return Ciphertext(
        c0=_poly_from_dict(data["c0"], degree),
        c1=_poly_from_dict(data["c1"], degree),
        scale=data["scale"],
    )


def plaintext_to_dict(pt: Plaintext) -> Dict:
    return {"coeffs": list(pt.coeffs), "scale": pt.scale}


def plaintext_from_dict(data: Dict) -> Plaintext:
    return Plaintext(coeffs=list(data["coeffs"]), scale=data["scale"])


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def secret_key_to_dict(key: SecretKey) -> Dict:
    return {"coeffs": list(key.coeffs)}


def secret_key_from_dict(data: Dict, context: CkksContext) -> SecretKey:
    return SecretKey(context, data["coeffs"])


def switching_key_to_dict(key: SwitchingKey, compressed: bool = True) -> Dict:
    """Serialise a switching key, optionally in compressed (seed) form.

    Compression requires the key to have been generated with seeds (the
    default); it stores the ``b`` rows and the per-digit seeds only.
    """
    if compressed and not key.is_compressed:
        raise ValueError(
            "key was generated without seeds; cannot serialise compressed"
        )
    payload: Dict = {
        "compressed": bool(compressed),
        "b_rows": [_poly_to_dict(b) for b, _ in key.digits],
    }
    if compressed:
        payload["seeds"] = list(key.seeds)
    else:
        payload["a_rows"] = [_poly_to_dict(a) for _, a in key.digits]
    return payload


def switching_key_from_dict(data: Dict, context: CkksContext) -> SwitchingKey:
    degree = context.degree
    b_rows = [_poly_from_dict(b, degree) for b in data["b_rows"]]
    if data["compressed"]:
        basis = context.raised_basis(context.max_limbs)
        seeds = list(data["seeds"])
        a_rows = [
            RnsPolynomial(
                basis,
                context.sample_uniform_rows(basis, seed=seed),
                Representation.EVAL,
            )
            for seed in seeds
        ]
    else:
        seeds = None
        a_rows = [_poly_from_dict(a, degree) for a in data["a_rows"]]
    return SwitchingKey(digits=list(zip(b_rows, a_rows)), seeds=seeds)


# ----------------------------------------------------------------------
# JSON convenience
# ----------------------------------------------------------------------
def dumps(data: Dict) -> str:
    return json.dumps(data, separators=(",", ":"))


def loads(text: str) -> Dict:
    return json.loads(text)


def serialized_size(data: Dict) -> int:
    """Bytes of the compact JSON encoding (for size comparisons)."""
    return len(dumps(data).encode())
