"""Key material: secret/public keys and hybrid switching keys.

Switching keys follow the Han-Ki structure the paper models (Eq. 2): a
``2 x dnum`` matrix of polynomials over the raised ring ``R_PQ``.  Digit
``i``'s column encrypts ``P * U_i * s_from`` under the decryption key ``s``,
where ``U_i`` is the CRT selector that is 1 on digit ``i``'s moduli and 0 on
every other limb modulus.  Because a congruence system restricted to the
live moduli stays valid, one key serves every ciphertext level.

Key compression (Section 3.2 of the paper): the first row of every switching
key is a uniformly random ring element, so instead of storing/transferring
it we store a PRNG seed and re-expand on demand — halving key traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ring import Representation, RnsBasis, RnsPolynomial
from repro.ckks.context import CkksContext


class SecretKey:
    """A ternary secret key, materialisable over any basis of the context."""

    def __init__(self, context: CkksContext, coeffs: List[int]):
        if len(coeffs) != context.degree:
            raise ValueError(
                f"expected {context.degree} coefficients, got {len(coeffs)}"
            )
        if any(c not in (-1, 0, 1) for c in coeffs):
            raise ValueError("secret key coefficients must be ternary")
        self.context = context
        self.coeffs = list(coeffs)
        self._cache: Dict[Tuple[int, ...], RnsPolynomial] = {}

    def poly(self, basis: RnsBasis) -> RnsPolynomial:
        """The secret as an evaluation-form element of the given basis."""
        key = basis.moduli
        poly = self._cache.get(key)
        if poly is None:
            poly = RnsPolynomial.from_int_coeffs(self.coeffs, basis).to_eval()
            self._cache[key] = poly
        return poly


@dataclass
class PublicKey:
    """Standard RLWE public key ``(pk0, pk1) = (-a*s + e, a)`` over ``Q_L``."""

    pk0: RnsPolynomial
    pk1: RnsPolynomial


@dataclass
class SwitchingKey:
    """Hybrid switching key: per digit, a pair ``(b_i, a_i)`` over ``R_PQ``.

    When ``seeds`` is set the ``a_i`` rows were PRNG-expanded from the
    stored seeds (key compression); they are kept materialised here for
    computation but :meth:`stored_bytes` reflects the compressed footprint.
    """

    digits: List[Tuple[RnsPolynomial, RnsPolynomial]]
    seeds: Optional[List[int]] = None
    _restricted: Dict[int, List[Tuple[RnsPolynomial, RnsPolynomial]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def dnum(self) -> int:
        return len(self.digits)

    @property
    def is_compressed(self) -> bool:
        return self.seeds is not None

    def stored_bytes(self, word_bytes: int = 8) -> int:
        """Bytes this key occupies in storage/DRAM.

        Compressed keys store one polynomial per digit plus a seed; full
        keys store both polynomials.
        """
        per_poly = sum(
            len(row) * word_bytes for row in self.digits[0][0].limbs
        )
        rows = 1 if self.is_compressed else 2
        return rows * self.dnum * per_poly

    def restricted(
        self, live_limbs: int, context: CkksContext
    ) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
        """Key restricted to the live basis ``{q_1..q_l, p_1..p_alpha}``.

        Evaluation-form rows are independent per modulus, so restriction is
        row selection.  Results are cached per level.
        """
        cached = self._restricted.get(live_limbs)
        if cached is not None:
            return cached
        full = context.max_limbs
        basis = context.raised_basis(live_limbs)
        keep = list(range(live_limbs)) + list(
            range(full, full + len(context.special_moduli))
        )
        restricted = []
        for b_poly, a_poly in self.digits:
            restricted.append(
                (
                    RnsPolynomial(
                        basis,
                        [b_poly.limbs[i] for i in keep],
                        Representation.EVAL,
                    ),
                    RnsPolynomial(
                        basis,
                        [a_poly.limbs[i] for i in keep],
                        Representation.EVAL,
                    ),
                )
            )
        self._restricted[live_limbs] = restricted
        return restricted


class KeyGenerator:
    """Generates secret, public, relinearisation, and Galois keys."""

    def __init__(
        self,
        context: CkksContext,
        compress_keys: bool = True,
        hamming_weight: Optional[int] = None,
    ):
        """Args:
            context: the scheme context.
            compress_keys: store switching-key ``a`` rows as PRNG seeds.
            hamming_weight: if given, sample a sparse ternary secret with
                exactly this many non-zero coefficients.  Sparse secrets
                bound the ``I(x)`` term in bootstrapping, which keeps the
                EvalMod approximation range (and degree) small.
        """
        self.context = context
        self.compress_keys = compress_keys
        if hamming_weight is None:
            coeffs = context.sample_ternary_coeffs()
        else:
            if not 1 <= hamming_weight <= context.degree:
                raise ValueError(
                    f"hamming_weight must be in [1, {context.degree}]"
                )
            coeffs = [0] * context.degree
            positions = context.rng.sample(range(context.degree), hamming_weight)
            for pos in positions:
                coeffs[pos] = context.rng.choice((-1, 1))
        self.secret_key = SecretKey(context, coeffs)

    # ------------------------------------------------------------------
    def public_key(self) -> PublicKey:
        ctx = self.context
        basis = ctx.basis_at(ctx.max_limbs)
        s = self.secret_key.poly(basis)
        a = RnsPolynomial(
            basis, ctx.sample_uniform_rows(basis), Representation.EVAL
        )
        e = RnsPolynomial.from_int_coeffs(ctx.sample_error_coeffs(), basis).to_eval()
        return PublicKey(pk0=-(a * s) + e, pk1=a)

    # ------------------------------------------------------------------
    def switching_key(self, source_poly: RnsPolynomial) -> SwitchingKey:
        """Key switching *from* the key ``source_poly`` *to* ``secret_key``.

        ``source_poly`` must live over the full raised basis in evaluation
        form (e.g. ``s^2`` for relinearisation, ``automorph(s, t)`` for a
        Galois key).
        """
        ctx = self.context
        basis = ctx.raised_basis(ctx.max_limbs)
        if source_poly.basis != basis:
            raise ValueError("source key must live over the full raised basis")
        s = self.secret_key.poly(basis)
        p_product = ctx.p_product
        digits = []
        seeds = [] if self.compress_keys else None
        for i in range(ctx.num_digits):
            seed = ctx.rng.randrange(2**62) if self.compress_keys else None
            a = RnsPolynomial(
                basis,
                ctx.sample_uniform_rows(basis, seed=seed),
                Representation.EVAL,
            )
            e = RnsPolynomial.from_int_coeffs(
                ctx.sample_error_coeffs(), basis
            ).to_eval()
            selector = p_product * ctx.digit_selector(i)
            b = -(a * s) + e + source_poly.scalar_mul(selector)
            digits.append((b, a))
            if seeds is not None:
                seeds.append(seed)
        return SwitchingKey(digits=digits, seeds=seeds)

    # ------------------------------------------------------------------
    def relinearization_key(self) -> SwitchingKey:
        """Switching key from ``s^2`` to ``s`` (used by ``Mult``)."""
        ctx = self.context
        basis = ctx.raised_basis(ctx.max_limbs)
        s = self.secret_key.poly(basis)
        return self.switching_key(s * s)

    def galois_key(self, t: int) -> SwitchingKey:
        """Switching key from ``s(x^t)`` to ``s`` (used by Rotate/Conjugate)."""
        ctx = self.context
        basis = ctx.raised_basis(ctx.max_limbs)
        s = self.secret_key.poly(basis)
        return self.switching_key(s.automorph(t))

    def rotation_key(self, steps: int) -> SwitchingKey:
        return self.galois_key(self.context.encoder.rotation_automorphism(steps))

    def conjugation_key(self) -> SwitchingKey:
        return self.galois_key(self.context.encoder.conjugation_automorphism)
