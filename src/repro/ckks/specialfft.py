"""Radix-2 factorization of the CKKS homomorphic DFT ("special FFT").

The canonical-embedding evaluation map factors into ``log2(n)`` butterfly
levels, each a slot-linear operator with non-zero diagonals only at offsets
``{0, +/-stride}`` — which is what makes the multi-iteration
CoeffToSlot/SlotToCoeff of bootstrapping cheap: grouping the levels into
``fftIter`` stages gives stage matrices with ``O(n^(1/fftIter))`` diagonals
instead of one dense matrix.

Derivation sketch (decimation in time over the rotation group
``e_j = 5^j mod 2N``): splitting a degree-``N`` coefficient vector into
even/odd halves gives ``z_j = E_j + zeta^{e_j} O_j`` and — because
``5^(n/2) = N+1 (mod 2N)`` — ``z_{j+n/2} = E_j - zeta^{e_j} O_j``, the
classic butterfly, with both sub-problems being the same operator at half
size.  Iterating down to pairs, the leaf state is exactly the complex
packing ``c[sigma(b)] + i c[sigma(b)+n]`` of the coefficients in
*bit-reversed* order ``sigma``.  Bootstrapping tolerates the permutation:
EvalMod applies the same function to every slot, and SlotToCoeff (the same
factors, inverted, in reverse order) consumes the identical ordering.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.ckks.encoding import Encoder

#: Composed diagonals with max-abs below this are structural zeros.
_ZERO_DIAGONAL_TOL = 1e-12


def compose_diagonals(
    a: Dict[int, np.ndarray], b: Dict[int, np.ndarray], n: int
) -> Dict[int, np.ndarray]:
    """Generalised diagonals of ``A @ B`` from those of ``A`` and ``B``.

    With ``diag_d[j] = M[j, (j+d) mod n]`` the product satisfies
    ``diag_C[d][j] = sum diag_A[da][j] * diag_B[db][(j+da) mod n]`` over
    ``da + db = d (mod n)`` — so sparse operators stay sparse without ever
    materialising an ``n x n`` matrix.
    """
    out: Dict[int, np.ndarray] = {}
    for da, va in a.items():
        for db, vb in b.items():
            d = (da + db) % n
            term = va * np.roll(vb, -da)
            if d in out:
                out[d] = out[d] + term
            else:
                out[d] = term
    return {
        d: v for d, v in out.items() if np.max(np.abs(v)) > _ZERO_DIAGONAL_TOL
    }


def leaf_permutation(slots: int) -> List[int]:
    """The even/odd split order ``sigma``: leaf block ``b`` holds the
    coefficient pair ``(c[sigma(b)], c[sigma(b) + slots])``."""
    return _split_recursive(list(range(2 * slots)))


def _split_recursive(indices: List[int]) -> List[int]:
    """Recursively split [evens | odds] until pairs remain; return the
    first element of each final pair (the second is always +n apart)."""
    if len(indices) == 2:
        return [indices[0]]
    evens = _split_recursive(indices[0::2])
    odds = _split_recursive(indices[1::2])
    return evens + odds


class SpecialFft:
    """Butterfly-level factorization of an encoder's slot<->coeff maps.

    ``level_matrices[t]`` (t = 0 .. log2(n)-1, leaf to root) are complex
    ``n x n`` operators; their ordered product maps the bit-reversed packed
    coefficient state to the encoder's slot values:

        slots(c) = L_{last} @ ... @ L_0 @ leaf_state(c)

    with ``leaf_state(c)[b] = c[sigma(b)] + 1j * c[sigma(b) + n]``.
    """

    def __init__(self, encoder: Encoder):
        self.encoder = encoder
        self.slots = encoder.slots
        self.levels = int(math.log2(self.slots))
        if 2**self.levels != self.slots:
            raise ValueError("slot count must be a power of two")
        self.sigma = _split_recursive(list(range(2 * self.slots)))
        self._level_matrices: List[np.ndarray] = []

    @property
    def level_matrices(self) -> List[np.ndarray]:
        """Dense level operators, built on first access.

        Only the dense single-matrix DFT path and the tests touch these;
        the factored bootstrap works purely in diagonal space via
        :meth:`grouped_stage_diagonals`, which is what keeps large slot
        counts (``n = 2**13`` and up) feasible.
        """
        if not self._level_matrices:
            self._level_matrices = [
                self._build_level(t) for t in range(self.levels)
            ]
        return self._level_matrices

    # ------------------------------------------------------------------
    def _build_level(self, t: int) -> np.ndarray:
        """Level ``t`` butterfly operator (leaf = level 0).

        After level ``t`` completes, blocks have length ``2^(t+1)``; the
        sub-ring degree is ``N_cur = 2^(t+2)`` and twiddles are
        ``zeta_{2 N_cur}^{5^j mod 2 N_cur}``.
        """
        n = self.slots
        half = 2**t  # half-block length being combined
        n_cur = 4 * half
        two_n_cur = 2 * n_cur
        zeta = np.exp(2j * np.pi / two_n_cur)
        matrix = np.zeros((n, n), dtype=np.complex128)
        for block_start in range(0, n, 2 * half):
            for j in range(half):
                tw = zeta ** pow(5, j, two_n_cur)
                top = block_start + j
                bot = block_start + half + j
                matrix[top, top] = 1.0
                matrix[top, bot] = tw
                matrix[bot, top] = 1.0
                matrix[bot, bot] = -tw
        return matrix

    # ------------------------------------------------------------------
    def level_diagonals(
        self, t: int, inverse: bool = False
    ) -> Dict[int, np.ndarray]:
        """Level ``t`` (or its inverse) as generalised diagonals.

        Each butterfly level touches only offsets ``{0, +half, -half}``
        with ``half = 2**t``; building the diagonals directly costs
        ``O(n)`` instead of the ``O(n^2)`` dense operator.  The inverse of
        the per-pair butterfly ``[[1, tw], [1, -tw]]`` is
        ``[[1/2, 1/2], [1/(2 tw), -1/(2 tw)]]``.
        """
        n = self.slots
        half = 2**t
        n_cur = 4 * half
        two_n_cur = 2 * n_cur
        zeta = np.exp(2j * np.pi / two_n_cur)
        tw_block = np.asarray(
            [zeta ** pow(5, j, two_n_cur) for j in range(half)]
        )
        top = (np.arange(n).reshape(-1, 2 * half)[:, :half]).reshape(-1)
        bot = top + half
        tw = np.tile(tw_block, n // (2 * half))
        diag: Dict[int, np.ndarray] = {
            0: np.zeros(n, dtype=np.complex128),
            half % n: np.zeros(n, dtype=np.complex128),
            (n - half) % n: np.zeros(n, dtype=np.complex128),
        }
        if inverse:
            diag[0][top] = 0.5
            diag[0][bot] = -0.5 / tw
            diag[half % n][top] = 0.5
            diag[(n - half) % n][bot] = 0.5 / tw
        else:
            diag[0][top] = 1.0
            diag[0][bot] = -tw
            diag[half % n][top] = tw
            diag[(n - half) % n][bot] = 1.0
        return diag

    def grouped_stage_diagonals(
        self, fft_iter: int, inverse: bool = False
    ) -> List[Dict[int, np.ndarray]]:
        """The :meth:`grouped_stages` operators in diagonal space.

        Same grouping and ordering contract as :meth:`grouped_stages`, but
        each stage is returned as its non-zero generalised diagonals,
        composed level-by-level without ever forming a dense matrix — the
        representation :class:`repro.ckks.linear.LinearTransform` consumes
        directly, and the only one that scales to bootstrap-sized rings.
        """
        if not 1 <= fft_iter <= self.levels:
            raise ValueError(
                f"fft_iter must be in [1, {self.levels}], got {fft_iter}"
            )
        n = self.slots
        bounds = [
            round(i * self.levels / fft_iter) for i in range(fft_iter + 1)
        ]
        identity = {0: np.ones(n, dtype=np.complex128)}
        stages = []
        for lo, hi in zip(bounds, bounds[1:]):
            product = identity
            if inverse:
                # inv(stage) = inv(L_lo) @ ... @ inv(L_{hi-1})
                for t in range(hi - 1, lo - 1, -1):
                    product = compose_diagonals(
                        self.level_diagonals(t, inverse=True), product, n
                    )
            else:
                # stage = L_{hi-1} @ ... @ L_lo
                for t in range(lo, hi):
                    product = compose_diagonals(
                        self.level_diagonals(t), product, n
                    )
            stages.append(product)
        if inverse:
            stages.reverse()
        return stages

    # ------------------------------------------------------------------
    def leaf_state(self, coeffs: np.ndarray) -> np.ndarray:
        """Pack a real coefficient vector into the bit-reversed leaf state."""
        c = np.asarray(coeffs, dtype=np.float64)
        n = self.slots
        if c.shape != (2 * n,):
            raise ValueError(f"expected {2 * n} coefficients, got {c.shape}")
        sigma = np.asarray(self.sigma)
        return c[sigma] + 1j * c[sigma + n]

    def unpack_leaf_state(self, state: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`leaf_state`."""
        n = self.slots
        coeffs = np.zeros(2 * n)
        sigma = np.asarray(self.sigma)
        coeffs[sigma] = state.real
        coeffs[sigma + n] = state.imag
        return coeffs

    # ------------------------------------------------------------------
    def slot_to_coeff_full(self) -> np.ndarray:
        """Product of all levels: leaf state -> encoder slot values."""
        product = np.eye(self.slots, dtype=np.complex128)
        for matrix in self.level_matrices:
            product = matrix @ product
        return product

    def coeff_to_slot_full(self) -> np.ndarray:
        """Inverse product: encoder slot values -> leaf state."""
        product = np.eye(self.slots, dtype=np.complex128)
        for matrix in self.level_matrices:
            product = product @ np.linalg.inv(matrix)
        return product

    # ------------------------------------------------------------------
    def grouped_stages(self, fft_iter: int, inverse: bool = False) -> List[np.ndarray]:
        """Group the ``log2(n)`` levels into ``fft_iter`` stage matrices.

        ``inverse=False`` gives SlotToCoeff stages (applied leaf->root);
        ``inverse=True`` gives CoeffToSlot stages (root->leaf).  Each stage
        is the product of ``~log2(n)/fft_iter`` butterfly levels and has
        ``O(2^(levels per stage))`` non-zero diagonals.
        """
        if not 1 <= fft_iter <= self.levels:
            raise ValueError(
                f"fft_iter must be in [1, {self.levels}], got {fft_iter}"
            )
        # Split level indices into fft_iter contiguous groups.
        bounds = [
            round(i * self.levels / fft_iter) for i in range(fft_iter + 1)
        ]
        stages = []
        for lo, hi in zip(bounds, bounds[1:]):
            product = np.eye(self.slots, dtype=np.complex128)
            for matrix in self.level_matrices[lo:hi]:
                product = matrix @ product
            stages.append(product)
        if inverse:
            return [np.linalg.inv(stage) for stage in reversed(stages)]
        return stages
