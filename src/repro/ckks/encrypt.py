"""Encryption and decryption."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ring import Representation, RnsPolynomial
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.keys import PublicKey, SecretKey


class Encryptor:
    """Encrypts plaintexts under either the secret or the public key."""

    def __init__(
        self,
        context: CkksContext,
        secret_key: Optional[SecretKey] = None,
        public_key: Optional[PublicKey] = None,
    ):
        if secret_key is None and public_key is None:
            raise ValueError("need a secret key or a public key to encrypt")
        self.context = context
        self.secret_key = secret_key
        self.public_key = public_key

    # ------------------------------------------------------------------
    def encode(self, values: Sequence[complex], scale: float = None) -> Plaintext:
        scale = self.context.scale if scale is None else scale
        return Plaintext(self.context.encoder.encode(values, scale), scale)

    def encrypt(self, plaintext: Plaintext, limbs: int = None) -> Ciphertext:
        """Encrypt an encoded plaintext at ``limbs`` limbs (default: max)."""
        limbs = self.context.max_limbs if limbs is None else limbs
        if self.secret_key is not None:
            return self._encrypt_symmetric(plaintext, limbs)
        return self._encrypt_public(plaintext, limbs)

    def encrypt_values(
        self, values: Sequence[complex], scale: float = None, limbs: int = None
    ) -> Ciphertext:
        """Encode then encrypt in one step."""
        return self.encrypt(self.encode(values, scale), limbs)

    # ------------------------------------------------------------------
    def _encrypt_symmetric(self, plaintext: Plaintext, limbs: int) -> Ciphertext:
        ctx = self.context
        basis = ctx.basis_at(limbs)
        s = self.secret_key.poly(basis)
        a = RnsPolynomial(
            basis, ctx.sample_uniform_rows(basis), Representation.EVAL
        )
        e = RnsPolynomial.from_int_coeffs(ctx.sample_error_coeffs(), basis).to_eval()
        m = plaintext.to_poly(basis)
        return Ciphertext(c0=-(a * s) + m + e, c1=a, scale=plaintext.scale)

    def _encrypt_public(self, plaintext: Plaintext, limbs: int) -> Ciphertext:
        ctx = self.context
        basis = ctx.basis_at(limbs)
        # Restrict the full-level public key to the requested basis.
        pk0 = RnsPolynomial(
            basis, self.public_key.pk0.limbs[:limbs], Representation.EVAL
        )
        pk1 = RnsPolynomial(
            basis, self.public_key.pk1.limbs[:limbs], Representation.EVAL
        )
        u = RnsPolynomial.from_int_coeffs(
            ctx.sample_ternary_coeffs(), basis
        ).to_eval()
        e0 = RnsPolynomial.from_int_coeffs(ctx.sample_error_coeffs(), basis).to_eval()
        e1 = RnsPolynomial.from_int_coeffs(ctx.sample_error_coeffs(), basis).to_eval()
        m = plaintext.to_poly(basis)
        return Ciphertext(
            c0=pk0 * u + e0 + m, c1=pk1 * u + e1, scale=plaintext.scale
        )


class Decryptor:
    """Decrypts and decodes ciphertexts with the secret key."""

    def __init__(self, context: CkksContext, secret_key: SecretKey):
        self.context = context
        self.secret_key = secret_key

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Raw decryption: ``m = c0 + c1 * s`` (centered coefficients)."""
        s = self.secret_key.poly(ciphertext.basis)
        message = ciphertext.c0 + ciphertext.c1 * s
        return Plaintext(message.to_int_coeffs(), ciphertext.scale)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        return self.context.encoder.decode(plaintext.coeffs, plaintext.scale)

    def decrypt_values(self, ciphertext: Ciphertext) -> np.ndarray:
        """Decrypt and decode to complex slot values."""
        return self.decode(self.decrypt(ciphertext))
