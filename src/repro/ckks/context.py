"""Scheme context: moduli chains, encoder, and randomness."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.numth import find_ntt_primes
from repro.params import CkksParams
from repro.ring import RnsBasis
from repro.ckks.encoding import Encoder


class CkksContext:
    """Wires a :class:`~repro.params.CkksParams` into concrete moduli.

    The context owns:

    * the ciphertext modulus chain ``q_1 .. q_L`` (NTT-friendly primes of
      ``log_q`` bits),
    * the ``alpha`` special primes forming the raised-basis factor ``P``,
    * the canonical-embedding encoder and the default scaling factor, and
    * the PRNG used for key generation and encryption randomness.

    Args:
        params: the CKKS parameter set (use :func:`repro.params.toy_params`
            for test-sized rings).
        scale_bits: ``log2`` of the default scaling factor; defaults to
            ``log_q - 5`` so rescaling keeps the scale roughly stable.
        seed: PRNG seed, for reproducible keys and noise.
    """

    def __init__(self, params: CkksParams, scale_bits: int = None, seed: int = 2023):
        self.params = params
        degree = params.ring_degree
        self.q_basis = RnsBasis.generate(degree, params.log_q, params.max_limbs)
        self.special_moduli: Tuple[int, ...] = tuple(
            find_ntt_primes(
                params.special_bits,
                degree,
                params.num_special_limbs,
                exclude=self.q_basis.moduli,
            )
        )
        if scale_bits is None:
            scale_bits = params.log_q - 5
        self.scale = float(2**scale_bits)
        self.encoder = Encoder(degree, self.scale)
        self.rng = random.Random(seed)
        self._basis_cache: Dict[Tuple[int, bool], RnsBasis] = {}

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        return self.params.ring_degree

    @property
    def slots(self) -> int:
        return self.params.slots

    @property
    def max_limbs(self) -> int:
        return self.params.max_limbs

    @property
    def p_product(self) -> int:
        """The raised-modulus factor ``P`` (product of special primes)."""
        product = 1
        for p in self.special_moduli:
            product *= p
        return product

    # ------------------------------------------------------------------
    def basis_at(self, limbs: int) -> RnsBasis:
        """Ciphertext basis ``{q_1 .. q_limbs}``."""
        return self._cached_basis(limbs, raised=False)

    def raised_basis(self, limbs: int) -> RnsBasis:
        """Raised basis ``{q_1 .. q_limbs, p_1 .. p_alpha}``."""
        return self._cached_basis(limbs, raised=True)

    def _cached_basis(self, limbs: int, raised: bool) -> RnsBasis:
        if not 1 <= limbs <= self.max_limbs:
            raise ValueError(
                f"limb count {limbs} outside [1, {self.max_limbs}]"
            )
        key = (limbs, raised)
        basis = self._basis_cache.get(key)
        if basis is None:
            moduli = self.q_basis.moduli[:limbs]
            if raised:
                moduli = moduli + self.special_moduli
            basis = RnsBasis(self.degree, moduli)
            self._basis_cache[key] = basis
        return basis

    # ------------------------------------------------------------------
    # Digit structure for hybrid key switching
    # ------------------------------------------------------------------
    def digit_index_ranges(self, limbs: int) -> List[range]:
        """Limb-index ranges of each key-switching digit at level ``limbs``.

        Digits group the modulus chain by fixed index: digit ``i`` owns limb
        indices ``[i*alpha, (i+1)*alpha)`` intersected with the live limbs.
        """
        alpha = self.params.alpha
        ranges = []
        start = 0
        while start < limbs:
            ranges.append(range(start, min(start + alpha, limbs)))
            start += alpha
        return ranges

    def digit_selector(self, digit: int) -> int:
        """Integer ``U_i mod Q_L``: 1 on digit ``i``'s moduli, 0 elsewhere.

        These CRT basis elements make the switching keys level-independent:
        restricting a congruence system to the live moduli preserves it, so
        the same key works at every level.
        """
        alpha = self.params.alpha
        lo, hi = digit * alpha, min((digit + 1) * alpha, self.max_limbs)
        if lo >= self.max_limbs:
            raise ValueError(f"digit {digit} is out of range")
        residues = [
            1 if lo <= j < hi else 0 for j in range(self.max_limbs)
        ]
        from repro.numth.crt import crt_reconstruct

        return crt_reconstruct(residues, list(self.q_basis.moduli))

    @property
    def num_digits(self) -> int:
        """Total number of key digits (``dnum`` worth of key material)."""
        return len(self.digit_index_ranges(self.max_limbs))

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def sample_ternary_coeffs(self) -> List[int]:
        """Uniform ternary secret/ephemeral coefficients in {-1, 0, 1}."""
        return [self.rng.choice((-1, 0, 1)) for _ in range(self.degree)]

    def sample_error_coeffs(self, sigma: float = 3.2) -> List[int]:
        """Rounded-Gaussian error coefficients (standard RLWE noise)."""
        return [int(round(self.rng.gauss(0.0, sigma))) for _ in range(self.degree)]

    def sample_uniform_rows(self, basis: RnsBasis, seed: int = None) -> List[List[int]]:
        """Uniform evaluation-form limb rows (a uniform element of ``R``).

        When ``seed`` is given, the rows are generated from a dedicated PRNG
        — the mechanism behind the paper's switching-key compression, where
        only the short seed is stored/transferred and the uniform polynomial
        is re-expanded on the fly.
        """
        rng = self.rng if seed is None else random.Random(seed)
        return [
            [rng.randrange(q) for _ in range(basis.degree)] for q in basis
        ]
