"""Noise-budget estimation for CKKS ciphertexts.

CKKS is an *approximate* scheme: every operation adds noise that eats into
the plaintext precision.  This module provides two complementary tools:

* :func:`measured_noise_bits` — the ground truth: decrypt against the known
  message and report the actual error magnitude (only possible with the
  secret key, i.e. in tests and development).
* :class:`NoiseEstimator` — an analytical tracker in the style of the
  standard CKKS noise analyses (Cheon et al. 2017, Gentry-Halevi-Smart
  heuristics): per-operation bounds propagated alongside the computation,
  so circuits can be *budgeted* before running them.

Bounds are tracked in bits (log2 of the expected canonical-embedding error)
and are deliberately heuristic-average-case, like the estimates production
libraries print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.params import CkksParams

#: Standard RLWE error deviation used by the key generator.
DEFAULT_SIGMA = 3.2


def measured_noise_bits(
    decrypted: Sequence[complex],
    expected: Sequence[complex],
) -> float:
    """log2 of the worst-slot absolute error between decryption and truth."""
    err = np.max(np.abs(np.asarray(decrypted) - np.asarray(expected)))
    if err == 0:
        return float("-inf")
    return float(math.log2(err))


@dataclass(frozen=True)
class NoiseEstimate:
    """An analytical bound on a ciphertext's noise.

    Attributes:
        noise_bits: log2 of the expected coefficient-domain noise magnitude.
        scale_bits: log2 of the ciphertext's scaling factor.
    """

    noise_bits: float
    scale_bits: float

    @property
    def precision_bits(self) -> float:
        """Bits of plaintext precision remaining (scale over noise)."""
        return self.scale_bits - self.noise_bits

    def is_usable(self, required_bits: float = 4.0) -> bool:
        """Does the ciphertext retain at least ``required_bits`` precision?"""
        return self.precision_bits >= required_bits


class NoiseEstimator:
    """Propagates heuristic noise bounds through CKKS operations.

    The bounds follow the usual average-case heuristics: fresh encryption
    noise ~ ``sigma * sqrt(N)``; addition adds noise magnitudes; rescale
    divides noise by the dropped modulus and adds a rounding term
    ~ ``sqrt(N/12) * ||s||``; key switching adds a term governed by the
    special-modulus ratio ``P``.
    """

    def __init__(self, params: CkksParams, sigma: float = DEFAULT_SIGMA):
        self.params = params
        self.sigma = sigma
        n = params.ring_degree
        # Rounding noise of a rescale/ModDown: sqrt(N/12)*(1 + ||s||_can)
        # with ternary secrets ||s||_can ~ sqrt(2N/3).
        self._round_bits = 0.5 * math.log2(n / 12.0) + 0.5 * math.log2(
            1 + 2 * n / 3
        )

    # ------------------------------------------------------------------
    def fresh(self, scale_bits: float) -> NoiseEstimate:
        """Noise of a freshly encrypted ciphertext at ``scale_bits``."""
        n = self.params.ring_degree
        noise = math.log2(self.sigma) + 0.5 * math.log2(n) + 1.0
        return NoiseEstimate(noise_bits=noise, scale_bits=scale_bits)

    # ------------------------------------------------------------------
    def add(self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate:
        """Noise of a homomorphic addition (scales must match)."""
        if abs(a.scale_bits - b.scale_bits) > 0.5:
            raise ValueError(
                f"adding ciphertexts at different scales: "
                f"{a.scale_bits} vs {b.scale_bits} bits"
            )
        noise = _log2_sum(a.noise_bits, b.noise_bits)
        return NoiseEstimate(noise_bits=noise, scale_bits=a.scale_bits)

    def pt_mult(
        self,
        ct: NoiseEstimate,
        pt_scale_bits: float,
        message_bits: float = 0.0,
    ) -> NoiseEstimate:
        """Noise after a plaintext multiplication (before rescale).

        ``message_bits`` bounds log2 of the plaintext magnitude.
        """
        noise = ct.noise_bits + pt_scale_bits + message_bits
        return NoiseEstimate(
            noise_bits=noise, scale_bits=ct.scale_bits + pt_scale_bits
        )

    def mult(
        self,
        a: NoiseEstimate,
        b: NoiseEstimate,
        message_bits: float = 0.0,
    ) -> NoiseEstimate:
        """Noise after a ciphertext multiplication + key switch (pre-rescale)."""
        cross = _log2_sum(
            a.noise_bits + b.scale_bits + message_bits,
            b.noise_bits + a.scale_bits + message_bits,
        )
        ks = self.key_switch_noise_bits()
        return NoiseEstimate(
            noise_bits=_log2_sum(cross, ks),
            scale_bits=a.scale_bits + b.scale_bits,
        )

    def rescale(self, ct: NoiseEstimate) -> NoiseEstimate:
        """Noise after dividing by one ~``log_q``-bit limb."""
        q_bits = self.params.log_q
        return NoiseEstimate(
            noise_bits=_log2_sum(ct.noise_bits - q_bits, self._round_bits),
            scale_bits=ct.scale_bits - q_bits,
        )

    def rotate(self, ct: NoiseEstimate) -> NoiseEstimate:
        """Noise after a rotation (automorphism + key switch)."""
        return NoiseEstimate(
            noise_bits=_log2_sum(ct.noise_bits, self.key_switch_noise_bits()),
            scale_bits=ct.scale_bits,
        )

    # ------------------------------------------------------------------
    def key_switch_noise_bits(self) -> float:
        """Noise added by one hybrid key switch after the ModDown by P.

        The inner product accumulates ``beta`` digit terms of magnitude
        ~ ``q_digit * sigma * N``; dividing by ``P >= q_digit`` leaves
        ~ ``sigma * N * beta / 2^(P_slack)`` plus the ModDown rounding.
        """
        params = self.params
        n = params.ring_degree
        beta = params.dnum
        digit_bits = params.alpha * params.log_q
        accumulated = (
            digit_bits
            + math.log2(self.sigma)
            + math.log2(n)
            + 0.5 * math.log2(beta)
        )
        after_mod_down = accumulated - params.log_p
        return _log2_sum(after_mod_down, self._round_bits)

    # ------------------------------------------------------------------
    def depth_budget(self, scale_bits: float, required_bits: float = 4.0) -> int:
        """Multiplicative depth before precision drops below the target.

        Simulates a chain of square-and-rescale operations from a fresh
        ciphertext and counts how many levels stay usable.
        """
        est = self.fresh(scale_bits)
        depth = 0
        for _ in range(self.params.max_limbs - 1):
            est = self.rescale(self.mult(est, est))
            if not est.is_usable(required_bits):
                break
            depth += 1
        return depth


def _log2_sum(a_bits: float, b_bits: float) -> float:
    """log2(2^a + 2^b) without overflow."""
    hi, lo = max(a_bits, b_bits), min(a_bits, b_bits)
    if hi - lo > 60:
        return hi
    return hi + math.log2(1.0 + 2.0 ** (lo - hi))
