"""Homomorphic linear transforms: the paper's ``PtMatVecMult``.

A plaintext matrix-vector product over encrypted slots is evaluated as

    y = sum_d  diag_d ⊙ rotate(z, d)

over the non-zero generalised diagonals of the matrix.  This module
implements three strategies:

* ``naive``     — one full Rotate (KeySwitch included) per diagonal.
* ``hoisted``   — Fig. 5(c) of the paper: ModUp hoisting shares a single
  Decomp+ModUp across every rotation, and ModDown hoisting accumulates the
  plaintext-multiplied key-switch outputs in the *raised* basis so the whole
  transform needs exactly one ModUp and one pair of ModDown operations.
* ``bsgs``      — baby-step/giant-step: ``O(sqrt(D))`` rotations, baby
  rotations hoisted.

Because CKKS slot maps are only R-linear once conjugation enters the
picture (bootstrapping's CoeffToSlot/SlotToCoeff need it), transforms take
an optional second matrix applied to the conjugated input:
``y = M1 z + M2 conj(z)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ring import RnsPolynomial, mod_down
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.evaluator import Evaluator

#: Diagonals with max-abs below this threshold are treated as zero.
_ZERO_DIAGONAL_TOL = 1e-12


def matrix_diagonals(matrix: np.ndarray) -> Dict[int, np.ndarray]:
    """Non-zero generalised diagonals ``diag_d[j] = M[j, (j+d) mod n]``."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    rows = np.arange(n)
    diagonals = {}
    for d in range(n):
        diag = matrix[rows, (rows + d) % n]
        if np.max(np.abs(diag)) > _ZERO_DIAGONAL_TOL:
            diagonals[d] = diag.copy()
    return diagonals


class LinearTransform:
    """A (possibly conjugate-aware) homomorphic slot-linear transform.

    Args:
        matrix: the ``n x n`` complex matrix ``M1``, or its non-zero
            generalised diagonals as a ``{offset: diag}`` dict (the form
            :meth:`repro.ckks.specialfft.SpecialFft.grouped_stage_diagonals`
            produces — the only one that scales to bootstrap-sized rings,
            since extracting diagonals from a dense matrix is ``O(n^2)``).
        conj_matrix: optional ``M2`` applied to the conjugated input, in
            either form.
        scale: plaintext encoding scale for the diagonals (defaults to the
            evaluator context's scale at apply time).
    """

    def __init__(
        self,
        matrix: Union[np.ndarray, Dict[int, np.ndarray]],
        conj_matrix: Optional[Union[np.ndarray, Dict[int, np.ndarray]]] = None,
        scale: Optional[float] = None,
    ):
        self.diagonals = self._to_diagonals(matrix)
        self.conj_diagonals = (
            self._to_diagonals(conj_matrix) if conj_matrix is not None else {}
        )
        if self.diagonals:
            self.slots = len(next(iter(self.diagonals.values())))
        elif self.conj_diagonals:
            self.slots = len(next(iter(self.conj_diagonals.values())))
        else:
            self.slots = np.asarray(matrix).shape[0]
        self.scale = scale

    @staticmethod
    def _to_diagonals(
        matrix: Union[np.ndarray, Dict[int, np.ndarray]],
    ) -> Dict[int, np.ndarray]:
        if isinstance(matrix, dict):
            return {
                int(d): np.asarray(v, dtype=np.complex128)
                for d, v in matrix.items()
            }
        return matrix_diagonals(matrix)

    # ------------------------------------------------------------------
    def required_rotations(self, method: str = "hoisted") -> List[int]:
        """Rotation steps an evaluator needs keys for."""
        all_steps = set(self.diagonals) | set(self.conj_diagonals)
        if method == "bsgs":
            baby, _ = self._bsgs_split()
            needed = set()
            for d in all_steps:
                needed.add(d % baby)
                needed.add(d - d % baby)
        else:
            needed = set(all_steps)
        needed.discard(0)
        return sorted(needed)

    def needs_conjugation(self) -> bool:
        return bool(self.conj_diagonals)

    def _bsgs_split(self) -> Tuple[int, int]:
        """Baby-step size ``g`` and giant-step count for this dimension."""
        count = max(len(self.diagonals) + len(self.conj_diagonals), 1)
        baby = 1 << max(int(round(math.log2(math.sqrt(count)))), 0)
        giant = math.ceil(self.slots / baby)
        return baby, giant

    # ------------------------------------------------------------------
    def apply(
        self,
        evaluator: Evaluator,
        ct: Ciphertext,
        method: str = "hoisted",
        rescale: bool = True,
    ) -> Ciphertext:
        """Evaluate ``M1 z + M2 conj(z)`` homomorphically."""
        if method not in ("naive", "hoisted", "bsgs"):
            raise ValueError(f"unknown method {method!r}")
        inputs = []
        if self.diagonals:
            inputs.append((ct, self.diagonals))
        if self.conj_diagonals:
            inputs.append((evaluator.conjugate(ct), self.conj_diagonals))
        if not inputs:
            raise ValueError("transform has no non-zero diagonals")
        scale = self.scale if self.scale is not None else evaluator.context.scale

        if method == "naive":
            out = self._apply_naive(evaluator, inputs, scale)
        elif method == "hoisted":
            out = self._apply_hoisted(evaluator, inputs, scale)
        else:
            out = self._apply_bsgs(evaluator, inputs, scale)
        return evaluator.rescale(out) if rescale else out

    # ------------------------------------------------------------------
    def _apply_naive(
        self,
        evaluator: Evaluator,
        inputs: Sequence[Tuple[Ciphertext, Dict[int, np.ndarray]]],
        scale: float,
    ) -> Ciphertext:
        acc = None
        for source, diagonals in inputs:
            for d, diag in diagonals.items():
                rotated = evaluator.rotate(source, d) if d else source
                term = evaluator.pt_mult(
                    rotated,
                    Plaintext(
                        evaluator.context.encoder.encode(list(diag), scale),
                        scale,
                    ),
                    rescale=False,
                )
                acc = term if acc is None else evaluator.add(acc, term)
        return acc

    # ------------------------------------------------------------------
    def _apply_hoisted(
        self,
        evaluator: Evaluator,
        inputs: Sequence[Tuple[Ciphertext, Dict[int, np.ndarray]]],
        scale: float,
    ) -> Ciphertext:
        """One ModUp and one ModDown pair per source ciphertext (Fig. 5c)."""
        ctx = evaluator.context
        limbs = inputs[0][0].num_limbs
        raised_basis = ctx.raised_basis(limbs)
        normal_basis = ctx.basis_at(limbs)
        acc_b = RnsPolynomial.zero(raised_basis)
        acc_a = RnsPolynomial.zero(raised_basis)
        acc_c0 = RnsPolynomial.zero(normal_basis)
        acc_c1 = RnsPolynomial.zero(normal_basis)
        used_raised = False

        for source, diagonals in inputs:
            raised_digits = None
            for d, diag in diagonals.items():
                pt = Plaintext(ctx.encoder.encode(list(diag), scale), scale)
                if d == 0:
                    pt_poly = pt.to_poly(normal_basis)
                    acc_c0 = acc_c0 + source.c0 * pt_poly
                    acc_c1 = acc_c1 + source.c1 * pt_poly
                    continue
                if raised_digits is None:
                    # ModUp hoisting: one Decomp+ModUp per source ciphertext.
                    raised_digits = evaluator.raise_digits(source.c1)
                key = evaluator.rotation_keys.get(d)
                if key is None:
                    raise ValueError(f"no rotation key for {d} steps")
                t = ctx.encoder.rotation_automorphism(d)
                rotated = [dig.automorph(t) for dig in raised_digits]
                b, a = evaluator.ksk_inner_product(rotated, key, limbs)
                # ModDown hoisting: PtMult in the raised basis, defer the
                # ModDown to a single pair after the accumulation.
                pt_raised = pt.to_poly(raised_basis)
                acc_b = acc_b + b * pt_raised
                acc_a = acc_a + a * pt_raised
                pt_poly = pt.to_poly(normal_basis)
                acc_c0 = acc_c0 + source.c0.automorph(t) * pt_poly
                used_raised = True

        if used_raised:
            drop = len(ctx.special_moduli)
            acc_c0 = acc_c0 + mod_down(acc_b, drop)
            acc_c1 = acc_c1 + mod_down(acc_a, drop)
        return Ciphertext(acc_c0, acc_c1, inputs[0][0].scale * scale)

    # ------------------------------------------------------------------
    def _apply_bsgs(
        self,
        evaluator: Evaluator,
        inputs: Sequence[Tuple[Ciphertext, Dict[int, np.ndarray]]],
        scale: float,
    ) -> Ciphertext:
        """Baby-step/giant-step with hoisted baby rotations."""
        ctx = evaluator.context
        baby, _ = self._bsgs_split()
        acc = None
        for source, diagonals in inputs:
            # Group diagonals by giant step; babies are the offsets mod g.
            groups: Dict[int, List[Tuple[int, np.ndarray]]] = {}
            for d, diag in diagonals.items():
                groups.setdefault(d - d % baby, []).append((d % baby, diag))
            baby_steps = sorted(
                {b for members in groups.values() for b, _ in members if b}
            )
            rotated = (
                evaluator.rotations_hoisted(source, baby_steps)
                if baby_steps
                else {}
            )
            rotated[0] = source
            for giant, members in groups.items():
                inner = None
                for b, diag in members:
                    # Pre-rotate the diagonal so the giant rotation lands it
                    # in the right slots: pre[k] = diag[(k - giant) mod n].
                    pre = np.roll(diag, giant)
                    term = evaluator.pt_mult(
                        rotated[b],
                        Plaintext(
                            ctx.encoder.encode(list(pre), scale), scale
                        ),
                        rescale=False,
                    )
                    inner = term if inner is None else evaluator.add(inner, term)
                moved = evaluator.rotate(inner, giant) if giant else inner
                acc = moved if acc is None else evaluator.add(acc, moved)
        return acc
