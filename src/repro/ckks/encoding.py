"""CKKS plaintext encoding via the canonical embedding.

A CKKS plaintext packs ``n = N/2`` complex numbers into the slots of a ring
element.  Slot ``j`` holds the evaluation of the (integer-coefficient)
polynomial at the primitive ``2N``-th root of unity ``zeta^{e_j}`` with
``e_j = 5^j mod 2N``; the other half of the roots carry the complex
conjugates, which is what makes real coefficient vectors sufficient.

Slot rotations and conjugation are Galois automorphisms:

* rotate left by ``r`` slots  <->  ``f(x) -> f(x^{5^r mod 2N})``
* conjugate all slots         <->  ``f(x) -> f(x^{2N-1})``
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class Encoder:
    """Encode/decode complex slot vectors to/from integer coefficients.

    Args:
        degree: ring degree ``N`` (power of two).
        default_scale: scaling factor ``Delta`` applied when none is given.
    """

    def __init__(self, degree: int, default_scale: float):
        if degree < 4 or degree & (degree - 1):
            raise ValueError(f"degree must be a power of two >= 4, got {degree}")
        if default_scale <= 0:
            raise ValueError(f"scale must be positive, got {default_scale}")
        self.degree = degree
        self.slots = degree // 2
        self.default_scale = default_scale
        two_n = 2 * degree
        self.rot_group = [pow(5, j, two_n) for j in range(self.slots)]
        # The slot exponents e_j = 5^j mod 2N are odd, so evaluating at
        # zeta^{e_j} is reading the odd-exponent outputs of a length-N
        # twisted FFT: f(zeta^{2i+1}) = sum_k (c_k zeta^k) omega^{ik} with
        # omega = zeta^2 the primitive N-th root.  embed/project therefore
        # run in O(N log N) through numpy's FFT — the dense (slots x N)
        # Vandermonde matrix this replaces cost O(N^2) memory and time and
        # capped the functional stack at small N.
        self._slot_index = np.asarray(
            [(e - 1) // 2 for e in self.rot_group], dtype=np.intp
        )
        k = np.arange(degree)
        self._zeta_pow = np.exp(1j * np.pi * k / degree)  # zeta^k
        self._zeta_pow_conj = self._zeta_pow.conj()

    # ------------------------------------------------------------------
    def embed(self, values: Sequence[complex]) -> np.ndarray:
        """Real coefficient vector (unrounded, scale 1) embedding ``values``.

        This is the exact inverse of :meth:`project`; both are used by the
        bootstrapping matrices as well as by encode/decode.
        """
        z = np.asarray(values, dtype=np.complex128)
        if z.shape != (self.slots,):
            raise ValueError(f"expected {self.slots} slot values, got {z.shape}")
        # c = (2/N) Re(V^H z): valid because the full 2N-th-root Vandermonde
        # (our rows plus their conjugates) is orthogonal with norm N.  V^H z
        # is the adjoint of the select-from-twisted-FFT evaluation: scatter
        # the slot values to their odd-root indices and run a forward FFT.
        u = np.zeros(self.degree, dtype=np.complex128)
        u[self._slot_index] = z
        return (2.0 / self.degree) * (self._zeta_pow_conj * np.fft.fft(u)).real

    def project(self, coeffs: Sequence[float]) -> np.ndarray:
        """Slot values of a real coefficient vector (scale 1)."""
        c = np.asarray(coeffs, dtype=np.float64)
        if c.shape != (self.degree,):
            raise ValueError(f"expected {self.degree} coefficients, got {c.shape}")
        # f(zeta^{2i+1}) for all i via the twisted FFT (ifft carries the
        # e^{+2*pi*i*ik/N} kernel), then select the slot exponents.
        spectrum = np.fft.ifft(self._zeta_pow * c) * self.degree
        return spectrum[self._slot_index]

    # ------------------------------------------------------------------
    def encode(
        self, values: Sequence[complex], scale: float = None
    ) -> List[int]:
        """Round ``Delta * embed(values)`` to integer coefficients."""
        scale = self.default_scale if scale is None else scale
        real_coeffs = self.embed(values) * scale
        return [int(round(c)) for c in real_coeffs]

    def decode(self, coeffs: Sequence[int], scale: float = None) -> np.ndarray:
        """Recover the slot values of an integer coefficient vector."""
        scale = self.default_scale if scale is None else scale
        return self.project([float(c) for c in coeffs]) / scale

    # ------------------------------------------------------------------
    # Galois indices
    # ------------------------------------------------------------------
    def rotation_automorphism(self, steps: int) -> int:
        """Galois index ``t`` realising a left rotation by ``steps`` slots."""
        return pow(5, steps % self.slots, 2 * self.degree)

    @property
    def conjugation_automorphism(self) -> int:
        """Galois index realising slot-wise complex conjugation."""
        return 2 * self.degree - 1
