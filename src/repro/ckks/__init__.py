"""Functional RNS-CKKS scheme (exact arithmetic, laptop-scale parameters).

This package implements the scheme whose *costs* the performance model in
:mod:`repro.perf` accounts for: encoding via the canonical embedding,
encryption, the full evaluator (Add/PtAdd/Mult/PtMult/Rescale/Rotate/
Conjugate/KeySwitch with Han-Ki hybrid digit decomposition), hoisted
rotations, BSGS homomorphic linear transforms (PtMatVecMult), and the
CKKS bootstrapping pipeline (ModRaise -> CoeffToSlot -> EvalMod ->
SlotToCoeff).

It runs at reduced ring degree (N = 2^4 .. 2^12) so the exact integer
arithmetic stays fast, while exercising precisely the algorithms — including
the MAD algorithmic optimizations (merged ModDown in Mult, hoisted ModDown
across rotations, PRNG key compression) — that the simulator models at
N = 2^17.
"""

from repro.ckks.context import CkksContext
from repro.ckks.encoding import Encoder
from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.keys import KeyGenerator, PublicKey, SecretKey, SwitchingKey
from repro.ckks.encrypt import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.linear import LinearTransform
from repro.ckks.bootstrap import Bootstrapper, approximate_mod_poly
from repro.ckks.noise import NoiseEstimate, NoiseEstimator, measured_noise_bits
from repro.ckks.specialfft import SpecialFft

__all__ = [
    "NoiseEstimate",
    "NoiseEstimator",
    "measured_noise_bits",
    "SpecialFft",
    "CkksContext",
    "Encoder",
    "Plaintext",
    "Ciphertext",
    "SecretKey",
    "PublicKey",
    "SwitchingKey",
    "KeyGenerator",
    "Encryptor",
    "Decryptor",
    "Evaluator",
    "LinearTransform",
    "Bootstrapper",
    "approximate_mod_poly",
]
