"""Plaintext and ciphertext containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ring import Representation, RnsPolynomial


@dataclass
class Plaintext:
    """An encoded message: integer coefficients at a known scaling factor."""

    coeffs: List[int]
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def degree(self) -> int:
        return len(self.coeffs)

    def to_poly(self, basis) -> RnsPolynomial:
        """Materialise the plaintext over ``basis`` in evaluation form."""
        return RnsPolynomial.from_int_coeffs(self.coeffs, basis).to_eval()


@dataclass
class Ciphertext:
    """A CKKS ciphertext ``(c0, c1)`` decrypting to ``c0 + c1*s``.

    Both components are stored in evaluation representation over the same
    basis; ``scale`` is the plaintext scaling factor ``Delta`` the encoded
    message currently carries.
    """

    c0: RnsPolynomial
    c1: RnsPolynomial
    scale: float

    def __post_init__(self) -> None:
        if self.c0.basis != self.c1.basis:
            raise ValueError("ciphertext components live over different bases")
        if self.c0.representation is not Representation.EVAL:
            raise ValueError("ciphertext components must be in evaluation form")
        if self.c1.representation is not Representation.EVAL:
            raise ValueError("ciphertext components must be in evaluation form")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def num_limbs(self) -> int:
        """Current number of RNS limbs (the paper's ``l``)."""
        return self.c0.num_limbs

    @property
    def basis(self):
        return self.c0.basis

    def clone(self) -> "Ciphertext":
        return Ciphertext(self.c0.clone(), self.c1.clone(), self.scale)
