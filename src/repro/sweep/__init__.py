"""repro.sweep — deterministic, process-parallel design-space sweeps.

The paper's headline workflow is brute-force exploration ("the search
takes only a few minutes", §4.1): Table 5's parameter search, the
ablation grids, the Fig. 6 cache-size × design matrix and the memsim
Fig. 2 ladder are all sweeps over a declared grid.  This package gives
them one engine:

* :class:`SweepSpec` / :class:`SweepAxis` — declarative axes + a
  registered evaluator (:mod:`repro.sweep.spec`,
  :mod:`repro.sweep.registry`).
* :func:`run_sweep` — chunked fan-out over a process pool (``jobs=1``
  stays in-process), per-worker memoization, canonical-order merge so
  output is bit-identical to serial (:mod:`repro.sweep.engine`).
* ``repro.sweep/v1`` resumable reports + dependency-free validator
  (:mod:`repro.sweep.report`).
* Built-in evaluators for the four sweep surfaces
  (:mod:`repro.sweep.evaluators`) and named presets for the CLI
  (:mod:`repro.sweep.presets`).
"""

from repro.sweep.engine import SweepError, SweepOutcome, run_sweep
from repro.sweep.memo import Memo
from repro.sweep.presets import SWEEP_PRESETS, build_preset, preset_names
from repro.sweep.registry import Evaluator, get_evaluator, register_evaluator
from repro.sweep.report import (
    SCHEMA_ID,
    SWEEP_REPORT_SCHEMA,
    build_sweep_report,
    load_sweep_report,
    validate_sweep_report,
    write_sweep_report,
)
from repro.sweep.spec import SweepAxis, SweepSpec, value_key

__all__ = [
    "Evaluator",
    "Memo",
    "SCHEMA_ID",
    "SWEEP_PRESETS",
    "SWEEP_REPORT_SCHEMA",
    "build_preset",
    "preset_names",
    "SweepAxis",
    "SweepError",
    "SweepOutcome",
    "SweepSpec",
    "build_sweep_report",
    "get_evaluator",
    "load_sweep_report",
    "register_evaluator",
    "run_sweep",
    "validate_sweep_report",
    "value_key",
    "write_sweep_report",
]
