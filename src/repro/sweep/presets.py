"""Named sweeps for ``python -m repro sweep <name>``.

Each preset builds a :class:`~repro.sweep.spec.SweepSpec` for one of the
paper's sweep surfaces; ``--quick`` shrinks the grid for smoke runs.
Preset builders may do cheap serial pre-computation (e.g. the Fig. 6
original-design bars each MAD bar's speedup is measured against) but
never evaluate grid points themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.sweep.spec import SweepAxis, SweepSpec

__all__ = ["SWEEP_PRESETS", "build_preset", "preset_names"]

#: Fig. 6 cache sizes (decimal MB) for the design-grid preset.
FIG6_CACHE_SIZES: Tuple[float, ...] = (32.0, 64.0, 128.0, 256.0)

#: Ablation cache ladder (decimal MB), matching the committed benchmark.
ABLATION_CACHE_SIZES: Tuple[float, ...] = (0.5, 1, 2, 6, 16, 32, 64, 256)


def _table5(quick: bool) -> SweepSpec:
    from repro.hardware import PRIOR_DESIGNS, mad_counterpart
    from repro.perf import MADConfig
    from repro.search import enumerate_parameter_space

    if quick:
        candidates = tuple(
            enumerate_parameter_space(
                log_q_choices=(46, 50, 54, 58),
                max_limbs_choices=(30, 35, 40),
                dnum_choices=(1, 2, 3),
                fft_iter_choices=(3, 4, 6),
            )
        )
    else:
        candidates = tuple(enumerate_parameter_space())
    return SweepSpec(
        name="table5",
        evaluator="search.candidate",
        axes=(SweepAxis("params", candidates),),
        context={
            "design": mad_counterpart(PRIOR_DESIGNS["GPU [Jung et al.]"]),
            "config": MADConfig.all(),
            "enforce_cache": False,
        },
    )


def _ablation_cache(quick: bool) -> SweepSpec:
    from repro.params import BASELINE_JUNG
    from repro.perf import MADConfig

    sizes = ABLATION_CACHE_SIZES[::2] if quick else ABLATION_CACHE_SIZES
    return SweepSpec(
        name="ablation-cache",
        evaluator="bootstrap.cost",
        axes=(SweepAxis("cache_mb", tuple(float(s) for s in sizes)),),
        context={"params": BASELINE_JUNG, "config": MADConfig.caching_only()},
    )


def _fig6(workload: str, quick: bool) -> SweepSpec:
    from repro.report.figures import fig6_original_seconds

    designs, original_seconds = fig6_original_seconds(workload)
    if quick:
        designs = designs[:1]
    sizes = FIG6_CACHE_SIZES[:2] if quick else FIG6_CACHE_SIZES
    return SweepSpec(
        name=f"fig6-{workload}",
        evaluator="fig6.bar",
        axes=(
            SweepAxis("design", tuple(designs)),
            SweepAxis("cache_mb", tuple(sizes)),
        ),
        context={
            "workload": workload,
            "iterations": 30,
            "original_seconds": original_seconds,
        },
    )


def _serve_capacity(quick: bool) -> SweepSpec:
    devices = (1, 2) if quick else (1, 2, 3, 4)
    policies = (
        ("shared", "equal") if quick else ("shared", "equal", "weighted")
    )
    return SweepSpec(
        name="serve-capacity",
        evaluator="serve.scenario",
        axes=(
            SweepAxis("devices", devices),
            SweepAxis("cache_policy", policies),
        ),
        # The 32 MB MAD counterpart: small enough that the cache-policy
        # axis moves tenants across Fig. 2 rungs.
        context={"scenario": "mixed", "fleet": "bts-mad-fifo", "seed": 0},
    )


def _memsim_ladder(quick: bool) -> SweepSpec:
    from repro.memsim.validate import ladder_sweep_spec

    primitives = ("mult", "rotate", "key_switch") if quick else None
    return ladder_sweep_spec(primitives=primitives)


SWEEP_PRESETS: Dict[str, Callable[[bool], SweepSpec]] = {
    "table5": _table5,
    "ablation-cache": _ablation_cache,
    "fig6-lr": lambda quick: _fig6("lr", quick),
    "fig6-resnet": lambda quick: _fig6("resnet", quick),
    "memsim-ladder": _memsim_ladder,
    "serve-capacity": _serve_capacity,
}


def preset_names() -> Tuple[str, ...]:
    return tuple(sorted(SWEEP_PRESETS))


def build_preset(name: str, quick: bool = False) -> SweepSpec:
    try:
        builder = SWEEP_PRESETS[name]
    except KeyError:
        known = ", ".join(preset_names())
        raise KeyError(f"unknown sweep {name!r}; known: {known}") from None
    spec: Any = builder(quick)
    return spec
