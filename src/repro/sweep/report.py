"""``sweep_report.json`` — schema ``repro.sweep/v1.1`` — and its validator.

One report captures a whole sweep run: the spec identity (name,
evaluator, axes as canonical value keys, fingerprint), dispatch
statistics (jobs, chunks, memo hit rate, worker utilisation, wall
seconds — all report-only, never gated) and one entry per canonical
point holding its JSON row.  The fingerprint makes reports *resumable*:
``run_sweep(spec, resume=report)`` reuses every completed point of a
report whose fingerprint matches the spec and evaluates only the rest.

Wall-clock fields are machine noise and must never be compared across
machines; the analytical rows are exact and bit-identical for any
``--jobs``.  :func:`validate_sweep_report` performs the structural
checks without the ``jsonschema`` dependency, mirroring
:mod:`repro.obs.export` and :mod:`repro.memsim.validate`.

Schema history: v1.1 adds a required ``provenance`` block
(:func:`repro.obs.events.provenance`, with the spec fingerprint as its
``config_fingerprint``) and an optional ``workers`` array summarising
each evaluating process; v1 reports remain loadable and resumable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.sweep.engine import SweepOutcome

__all__ = [
    "ACCEPTED_SCHEMA_IDS",
    "SCHEMA_ID",
    "SWEEP_REPORT_SCHEMA",
    "build_sweep_report",
    "load_sweep_report",
    "validate_sweep_report",
    "write_sweep_report",
]

SCHEMA_ID = "repro.sweep/v1.1"

#: Schema ids accepted on load/resume; new reports always use SCHEMA_ID.
ACCEPTED_SCHEMA_IDS = ("repro.sweep/v1", SCHEMA_ID)

#: JSON-Schema (draft-07); CI validates with ``jsonschema`` where
#: available and :func:`validate_sweep_report` mirrors it without the
#: dependency.
SWEEP_REPORT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": SCHEMA_ID,
    "title": "repro.sweep run report",
    "type": "object",
    "required": [
        "schema",
        "sweep",
        "evaluator",
        "fingerprint",
        "axes",
        "jobs",
        "chunks",
        "reused",
        "memo",
        "wall_seconds",
        "worker_utilisation",
        "complete",
        "points",
    ],
    "properties": {
        "schema": {"enum": list(ACCEPTED_SCHEMA_IDS)},
        "provenance": {"type": "object"},
        "workers": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["pid", "chunks"],
                "properties": {
                    "pid": {"type": "integer", "minimum": 0},
                    "chunks": {"type": "integer", "minimum": 0},
                    "busy_seconds": {"type": "number", "minimum": 0},
                    "cpu_seconds": {"type": "number", "minimum": 0},
                    "peak_rss_bytes": {"type": "integer", "minimum": 0},
                },
            },
        },
        "sweep": {"type": "string"},
        "evaluator": {"type": "string"},
        "fingerprint": {"type": "string", "pattern": "^[0-9a-f]{64}$"},
        "axes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "values"],
                "properties": {
                    "name": {"type": "string"},
                    "values": {"type": "array"},
                },
            },
        },
        "jobs": {"type": "integer", "minimum": 1},
        "chunks": {"type": "integer", "minimum": 0},
        "reused": {"type": "integer", "minimum": 0},
        "memo": {
            "type": "object",
            "required": ["hits", "misses"],
            "properties": {
                "hits": {"type": "integer", "minimum": 0},
                "misses": {"type": "integer", "minimum": 0},
            },
        },
        "wall_seconds": {"type": "number", "minimum": 0},
        "worker_utilisation": {"type": "number", "minimum": 0, "maximum": 1},
        "complete": {"type": "boolean"},
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["index", "key", "row"],
                "properties": {
                    "index": {"type": "integer", "minimum": 0},
                    "key": {"type": "object"},
                    "row": {"type": "object"},
                },
            },
        },
    },
}


def build_sweep_report(outcome: SweepOutcome) -> Dict[str, Any]:
    """Assemble the ``repro.sweep/v1.1`` report for a finished run."""
    from repro.obs.events import provenance as build_provenance

    spec = outcome.spec
    identity = spec.identity()
    report = {
        "schema": SCHEMA_ID,
        "provenance": build_provenance(
            config_fingerprint=spec.fingerprint()
        ),
        "workers": outcome.workers,
        "sweep": spec.name,
        "evaluator": spec.evaluator,
        "fingerprint": spec.fingerprint(),
        "axes": identity["axes"],
        "jobs": outcome.jobs,
        "chunks": outcome.chunks,
        "reused": outcome.reused,
        "memo": {"hits": outcome.memo_hits, "misses": outcome.memo_misses},
        "wall_seconds": outcome.wall_seconds,
        "worker_utilisation": outcome.worker_utilisation,
        "complete": True,
        "points": [
            {
                "index": index,
                "key": outcome.point_keys[index],
                "row": outcome.rows[index],
            }
            for index in range(spec.size)
        ],
    }
    validate_sweep_report(report)
    return report


def write_sweep_report(outcome: SweepOutcome, path: str) -> Dict[str, Any]:
    """Build, validate and write the report; returns the report dict."""
    report = build_sweep_report(outcome)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return report


def load_sweep_report(path: str) -> Optional[Dict[str, Any]]:
    """Load and validate a report; ``None`` when the file does not exist."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except FileNotFoundError:
        return None
    validate_sweep_report(report)
    return report


# ----------------------------------------------------------------------
# Dependency-free structural validation (mirrors SWEEP_REPORT_SCHEMA)
# ----------------------------------------------------------------------
def validate_sweep_report(report: Any) -> None:
    """Structural validation; raises ValueError on the first mismatch."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid sweep report: {message}")

    def require_int(value: Any, label: str, minimum: int = 0) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            fail(f"{label} is not an integer >= {minimum}")

    def require_number(value: Any, label: str) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            fail(f"{label} is not a non-negative number")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if report.get("schema") not in ACCEPTED_SCHEMA_IDS:
        fail(
            f"schema id {report.get('schema')!r} not in "
            f"{ACCEPTED_SCHEMA_IDS!r}"
        )
    if report["schema"] == SCHEMA_ID:
        from repro.obs.events import validate_provenance

        validate_provenance(report.get("provenance"), fail)
        workers = report.get("workers", [])
        if not isinstance(workers, list):
            fail("workers is not an array")
        for index, worker in enumerate(workers):
            if not isinstance(worker, dict) or not isinstance(
                worker.get("pid"), int
            ):
                fail(f"workers[{index}] is not an object with an integer pid")
    for key in (
        "sweep",
        "evaluator",
        "fingerprint",
        "axes",
        "jobs",
        "chunks",
        "reused",
        "memo",
        "wall_seconds",
        "worker_utilisation",
        "complete",
        "points",
    ):
        if key not in report:
            fail(f"missing required key {key!r}")
    for key in ("sweep", "evaluator", "fingerprint"):
        if not isinstance(report[key], str):
            fail(f"{key} is not a string")
    fingerprint = report["fingerprint"]
    if len(fingerprint) != 64 or any(c not in "0123456789abcdef" for c in fingerprint):
        fail("fingerprint is not a 64-hex-digit SHA-256")
    if not isinstance(report["axes"], list):
        fail("axes is not an array")
    for index, axis in enumerate(report["axes"]):
        where = f"axes[{index}]"
        if not isinstance(axis, dict):
            fail(f"{where} is not an object")
        if not isinstance(axis.get("name"), str):
            fail(f"{where}.name is not a string")
        if not isinstance(axis.get("values"), list):
            fail(f"{where}.values is not an array")
    require_int(report["jobs"], "jobs", minimum=1)
    require_int(report["chunks"], "chunks")
    require_int(report["reused"], "reused")
    memo = report["memo"]
    if not isinstance(memo, dict):
        fail("memo is not an object")
    require_int(memo.get("hits"), "memo.hits")
    require_int(memo.get("misses"), "memo.misses")
    require_number(report["wall_seconds"], "wall_seconds")
    require_number(report["worker_utilisation"], "worker_utilisation")
    if report["worker_utilisation"] > 1:
        fail("worker_utilisation exceeds 1")
    if not isinstance(report["complete"], bool):
        fail("complete is not a boolean")
    points = report["points"]
    if not isinstance(points, list):
        fail("points is not an array")
    seen: set = set()
    for position, entry in enumerate(points):
        where = f"points[{position}]"
        if not isinstance(entry, dict):
            fail(f"{where} is not an object")
        for key in ("index", "key", "row"):
            if key not in entry:
                fail(f"{where} missing {key!r}")
        require_int(entry["index"], f"{where}.index")
        if entry["index"] in seen:
            fail(f"{where}.index {entry['index']} is duplicated")
        seen.add(entry["index"])
        if not isinstance(entry["key"], dict):
            fail(f"{where}.key is not an object")
        if not isinstance(entry["row"], dict):
            fail(f"{where}.row is not an object")
