"""Evaluator registry: named, picklable-by-reference sweep evaluators.

Workers in a :class:`~concurrent.futures.ProcessPoolExecutor` cannot
receive arbitrary callables, so sweeps reference evaluators by *name*:
the parent ships ``(evaluator_name, context, points)`` and each worker
resolves the name against this registry after import.  Built-in
evaluators live in :mod:`repro.sweep.evaluators`, which is imported
lazily on first lookup so domain modules (search, perf, memsim, report)
never load unless a sweep actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from repro.sweep.memo import Memo

__all__ = ["Evaluator", "get_evaluator", "register_evaluator", "registered_evaluators"]

#: fn(point, context, memo) -> picklable result value.
EvaluatorFn = Callable[[Mapping[str, Any], Mapping[str, Any], Memo], Any]
#: row(value, point) -> JSON-able report row for that point.
RowFn = Callable[[Any, Mapping[str, Any]], Dict[str, Any]]


def _default_row(value: Any, point: Mapping[str, Any]) -> Dict[str, Any]:
    """Default report row: the value itself (must already be JSON-able)."""
    if isinstance(value, dict):
        return value
    return {"value": value}


@dataclass(frozen=True)
class Evaluator:
    """One registered point evaluator."""

    name: str
    fn: EvaluatorFn
    row: RowFn


_REGISTRY: Dict[str, Evaluator] = {}


def register_evaluator(
    name: str, fn: EvaluatorFn, row: Optional[RowFn] = None
) -> Evaluator:
    """Register ``fn`` under ``name``; re-registration must be idempotent."""
    evaluator = Evaluator(name=name, fn=fn, row=row or _default_row)
    existing = _REGISTRY.get(name)
    if existing is not None and existing.fn is not fn:
        raise ValueError(f"evaluator {name!r} already registered")
    _REGISTRY[name] = evaluator
    return evaluator


def get_evaluator(name: str) -> Evaluator:
    """Resolve a registered evaluator, loading the built-ins on demand."""
    if name not in _REGISTRY:
        from repro.sweep import evaluators as _builtins  # noqa: F401

        _ = _builtins  # imported for its registration side effects
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown evaluator {name!r}; known: {known}") from None


def registered_evaluators() -> Dict[str, Evaluator]:
    """A snapshot of the registry (built-ins loaded)."""
    from repro.sweep import evaluators as _builtins  # noqa: F401

    _ = _builtins
    return dict(_REGISTRY)
