"""Per-worker memoization of cost-model evaluations.

The sweep grids repeat expensive sub-evaluations across points — the same
``(CkksParams, MADConfig, cache_bytes)`` bootstrap cost shows up under
several hardware designs, and every memsim rung rebuilds the same
schedule generator.  A :class:`Memo` is a plain dict with hit/miss
counters; the engine keeps one per worker *process* (module-global, so it
survives across chunks dispatched to the same worker) and one for the
whole run when executing in-process at ``jobs=1``.  Because every
evaluation is a pure function of its key, memoization can never change
sweep output — only how often the model is re-evaluated.

Memoization is also **observationally transparent**: the compute
callback runs under :func:`repro.obs.state.suppressed`, so a memoized
evaluation emits the same telemetry on hit and miss — none.  Without
this, a model's internal spans would appear only on the worker that
happened to miss first, and the merged cross-process trace would depend
on chunk scheduling instead of being bit-identical across ``--jobs``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Tuple

from repro.obs import state as obs

__all__ = ["Memo"]


class Memo:
    """Keyed cache of pure evaluations with hit/miss accounting."""

    def __init__(self) -> None:
        self._store: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            with obs.suppressed():
                value = self._store[key] = compute()
            return value
        self.hits += 1
        return value

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` so far."""
        return self.hits, self.misses
