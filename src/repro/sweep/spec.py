"""Declarative sweep specifications.

A :class:`SweepSpec` names the *axes* of a design-space sweep (CKKS
parameter sets, cache sizes, :class:`~repro.perf.optimizations.MADConfig`
rungs, hardware designs — any picklable values), the registered evaluator
that scores one grid point, and a fixed *context* shared by every point.

The determinism contract lives here:

* **Canonical order.**  Points are the cartesian product of the axes in
  declaration order, last axis fastest — exactly the nesting a serial
  ``for`` loop over the same axes would produce.  Every point carries its
  canonical index, and the engine merges parallel results back into this
  order, so sweep output is bit-identical for any ``--jobs``.
* **Stable identity.**  :func:`value_key` maps an axis value to a
  JSON-able canonical form (dataclasses become ``[type, {field: key}]``),
  and :meth:`SweepSpec.fingerprint` hashes the whole spec identity —
  name, evaluator, axes, context.  Resume refuses to mix reports from
  different fingerprints.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Dict, Iterator, List, Mapping, Tuple

__all__ = ["SweepAxis", "SweepSpec", "value_key"]


def value_key(value: Any) -> Any:
    """Canonical JSON-able identity of an axis or context value.

    Primitives pass through; dataclass instances (CkksParams, MADConfig,
    HardwareDesign, ...) become ``[ClassName, {field: value_key(...)}]``;
    sequences and mappings recurse.  Two values compare equal under this
    key iff the sweep treats them as the same grid coordinate.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            {f.name: value_key(getattr(value, f.name)) for f in fields(value)},
        ]
    if isinstance(value, (tuple, list)):
        return [value_key(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): value_key(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    raise TypeError(
        f"axis/context value of type {type(value).__name__} has no "
        f"canonical key; use primitives, dataclasses, tuples or mappings"
    )


@dataclass(frozen=True)
class SweepAxis:
    """One named dimension of the grid, values in canonical order."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not isinstance(self.values, tuple):
            # Accept any sequence but store the canonical immutable form.
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: axes × evaluator (+ fixed context).

    Args:
        name: display/report name of the sweep.
        evaluator: key of a registered evaluator
            (see :mod:`repro.sweep.registry`).
        axes: grid dimensions, outermost first.
        context: fixed picklable kwargs every evaluation receives.
        chunk_size: points per dispatched chunk; ``None`` lets the engine
            pick a deterministic size from the grid and worker count.
    """

    name: str
    evaluator: str
    axes: Tuple[SweepAxis, ...]
    context: Mapping[str, Any] = field(default_factory=dict)
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.axes, tuple):
            object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of grid points."""
        return math.prod(len(axis.values) for axis in self.axes)

    def points(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(canonical_index, {axis: value})`` in canonical order."""
        names = [axis.name for axis in self.axes]
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            yield index, dict(zip(names, combo))

    def point_key(self, point: Mapping[str, Any]) -> Dict[str, Any]:
        """The JSON-able identity of one point, axis by axis."""
        return {axis.name: value_key(point[axis.name]) for axis in self.axes}

    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """The JSON-able spec identity the fingerprint is computed over."""
        return {
            "name": self.name,
            "evaluator": self.evaluator,
            "axes": [
                {"name": axis.name, "values": [value_key(v) for v in axis.values]}
                for axis in self.axes
            ],
            "context": value_key(dict(self.context)),
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec identity (used by resume)."""
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def resolved_chunk_size(self, jobs: int) -> int:
        """Deterministic chunk size for a worker count.

        Aim for several chunks per worker (dynamic load balance) while
        capping per-chunk dispatch payloads; chunking never affects the
        merged output, only scheduling granularity.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if jobs <= 1:
            return max(1, min(64, math.ceil(self.size / 4)))
        return max(1, min(64, math.ceil(self.size / (8 * jobs))))

    def chunks(self, indices: List[int], jobs: int) -> List[List[int]]:
        """Split ``indices`` (canonical order) into dispatch chunks."""
        size = self.resolved_chunk_size(jobs)
        return [indices[i : i + size] for i in range(0, len(indices), size)]
