"""The sweep engine: deterministic fan-out, memoized evaluation, merge.

``run_sweep`` evaluates every point of a :class:`~repro.sweep.spec
.SweepSpec` and returns the results in **canonical axis order** — the
order a serial nested ``for`` loop over the axes would produce —
regardless of how many workers evaluated them or in which order chunks
completed.  Three execution properties make parallel output bit-identical
to serial:

* every evaluator is a pure function of ``(point, context)``;
* chunks carry their canonical indices, and results are merged by index,
  never by completion order;
* memoization (:mod:`repro.sweep.memo`) only short-circuits repeated
  *pure* sub-evaluations, so cache layout cannot change values.

``jobs=1`` runs in-process (no executor, one shared memo) — the
debuggable reference path; ``jobs>1`` fans chunks out over a
:class:`~concurrent.futures.ProcessPoolExecutor` whose workers keep a
process-global memo across chunks.

**Telemetry is cross-process and holds the same determinism bar.**  When
the parent has tracing or metrics enabled, every chunk — serial or
pooled — evaluates under a chunk-local capture
(:func:`repro.obs.state.capture`): each point runs inside a
``sweep:point`` span (with a host-resource sample via
:func:`repro.obs.profiler.profiled_span`), and the chunk returns a
:func:`~repro.obs.telemetry.capture_snapshot` alongside its results.
After all chunks complete, the parent merges the snapshots **in
canonical chunk order** (never completion order), grafts the merged
span forest under the open ``sweep:run`` span and folds the metrics
into its registry.  Because memoized computes are telemetry-suppressed
(see :mod:`repro.sweep.memo`) and chunk boundaries vanish in the
concatenation, the merged trace is bit-identical between ``--jobs N``
and serial once scheduling-volatile fields are stripped
(:func:`repro.obs.telemetry.strip_volatile`).

Dispatch is also observable externally: pass an
:class:`~repro.obs.events.EventLog` and the parent (the single writer)
emits ``sweep_start`` / ``chunk_complete`` / ``sweep_end`` events that
``repro top`` and ``repro dash`` consume.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import state as obs
from repro.obs.events import CHUNK_COMPLETE, SWEEP_END, SWEEP_START, EventLog
from repro.obs.profiler import (
    alloc_tracing,
    ensure_alloc_tracing,
    process_cpu_seconds,
    profiled_span,
    rss_peak_bytes,
)
from repro.obs.telemetry import (
    capture_snapshot,
    graft_snapshot,
    merge_into_registry,
    merge_snapshots,
)
from repro.sweep.memo import Memo
from repro.sweep.registry import get_evaluator
from repro.sweep.spec import SweepSpec

__all__ = ["ChunkPayload", "SweepError", "SweepOutcome", "run_sweep"]


class SweepError(RuntimeError):
    """A sweep failed: evaluator error or resume mismatch."""


#: One dispatched chunk: ``(canonical_index, point)`` pairs.
Chunk = List[Tuple[int, Mapping[str, Any]]]

#: Per-process memo reused across all chunks a pool worker executes.
_WORKER_MEMO = Memo()


@dataclass
class ChunkPayload:
    """Everything one evaluated chunk sends back to the parent.

    ``snapshot`` is the chunk-local telemetry
    (:data:`~repro.obs.telemetry.SNAPSHOT_VERSION`) or ``None`` when the
    parent ran untraced; ``worker`` identifies the evaluating process
    and its resource use (pid, process-peak RSS, CPU seconds spent on
    this chunk).
    """

    results: List[Tuple[int, Any]]
    memo_hits: int
    memo_misses: int
    busy_seconds: float
    snapshot: Optional[Dict[str, Any]]
    worker: Dict[str, Any]


def _evaluate_chunk(
    evaluator_name: str,
    context: Mapping[str, Any],
    chunk: Chunk,
    memo: Memo,
    capture_telemetry: bool = False,
) -> ChunkPayload:
    """Evaluate one chunk against ``memo``; shared by both execution paths."""
    evaluator = get_evaluator(evaluator_name)
    hits0, misses0 = memo.stats()
    cpu0 = process_cpu_seconds()
    started = time.perf_counter()
    results: List[Tuple[int, Any]] = []
    snapshot: Optional[Dict[str, Any]] = None
    if capture_telemetry:
        with obs.capture() as (tracer, registry):
            for index, point in chunk:
                with profiled_span("sweep:point", index=index):
                    results.append((index, evaluator.fn(point, context, memo)))
        snapshot = capture_snapshot(tracer, registry)
    else:
        for index, point in chunk:
            results.append((index, evaluator.fn(point, context, memo)))
    busy = time.perf_counter() - started
    hits1, misses1 = memo.stats()
    return ChunkPayload(
        results=results,
        memo_hits=hits1 - hits0,
        memo_misses=misses1 - misses0,
        busy_seconds=busy,
        snapshot=snapshot,
        worker={
            "pid": os.getpid(),
            "peak_rss_bytes": rss_peak_bytes(),
            "cpu_seconds": process_cpu_seconds() - cpu0,
        },
    )


def _pool_chunk(
    evaluator_name: str,
    context: Mapping[str, Any],
    chunk: Chunk,
    capture_telemetry: bool,
) -> ChunkPayload:
    """Top-level (picklable) worker entry point using the process memo."""
    if capture_telemetry:
        ensure_alloc_tracing()
    return _evaluate_chunk(
        evaluator_name, context, chunk, _WORKER_MEMO, capture_telemetry
    )


@dataclass
class SweepOutcome:
    """Everything a sweep run produced, in canonical order.

    ``values[i]`` is the evaluator's (rich, picklable) result for
    canonical point ``i`` — except for points reused from a resumed
    report, whose values are the stored JSON rows (resume is a
    report-level contract; rich objects are not reconstructed).
    ``rows[i]`` is always the JSON-able report row.  ``workers``
    summarises each evaluating process (the parent itself at
    ``jobs=1``): pid, chunks executed, busy/CPU seconds, peak RSS.
    """

    spec: SweepSpec
    jobs: int
    values: List[Any]
    rows: List[Dict[str, Any]]
    reused: int = 0
    chunks: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    point_keys: List[Dict[str, Any]] = field(default_factory=list)
    workers: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        return self.spec.size - self.reused

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def worker_utilisation(self) -> float:
        """Fraction of worker-seconds spent evaluating (vs idle/dispatch)."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.jobs * self.wall_seconds))


def _resume_rows(
    spec: SweepSpec, resume: Optional[Mapping[str, Any]]
) -> Dict[int, Dict[str, Any]]:
    """Rows reusable from a prior report, keyed by canonical index."""
    if resume is None:
        return {}
    from repro.sweep.report import validate_sweep_report

    validate_sweep_report(resume)
    if resume["fingerprint"] != spec.fingerprint():
        raise SweepError(
            f"resume fingerprint mismatch: report {resume['fingerprint'][:12]}… "
            f"was produced by a different spec than {spec.name!r} "
            f"({spec.fingerprint()[:12]}…)"
        )
    completed: Dict[int, Dict[str, Any]] = {}
    for entry in resume["points"]:
        index = entry["index"]
        if 0 <= index < spec.size:
            completed[index] = entry["row"]
    return completed


class _WorkerLedger:
    """Aggregates per-chunk worker identities into a per-pid summary."""

    def __init__(self) -> None:
        self._by_pid: Dict[int, Dict[str, Any]] = {}

    def record(self, worker: Mapping[str, Any], busy_seconds: float) -> None:
        pid = int(worker["pid"])
        entry = self._by_pid.setdefault(
            pid,
            {
                "pid": pid,
                "chunks": 0,
                "busy_seconds": 0.0,
                "cpu_seconds": 0.0,
                "peak_rss_bytes": 0,
            },
        )
        entry["chunks"] += 1
        entry["busy_seconds"] += busy_seconds
        entry["cpu_seconds"] += float(worker.get("cpu_seconds", 0.0))
        entry["peak_rss_bytes"] = max(
            entry["peak_rss_bytes"], int(worker.get("peak_rss_bytes", 0))
        )

    def summary(self) -> List[Dict[str, Any]]:
        return [self._by_pid[pid] for pid in sorted(self._by_pid)]


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    resume: Optional[Mapping[str, Any]] = None,
    events: Optional[EventLog] = None,
) -> SweepOutcome:
    """Evaluate every point of ``spec``; results in canonical order.

    Args:
        spec: the sweep to run.
        jobs: worker processes; ``1`` evaluates in-process (no pool).
        resume: a prior ``repro.sweep`` report dict whose completed
            points are reused (fingerprints must match); only pending
            points are evaluated.
        events: optional :class:`~repro.obs.events.EventLog`; the parent
            (single writer) emits ``sweep_start`` / ``chunk_complete`` /
            ``sweep_end`` as the run progresses.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    evaluator = get_evaluator(spec.evaluator)
    points = dict(spec.points())
    completed = _resume_rows(spec, resume)
    pending = [index for index in range(spec.size) if index not in completed]
    chunks = spec.chunks(pending, jobs)

    outcome = SweepOutcome(
        spec=spec,
        jobs=jobs,
        values=[None] * spec.size,
        rows=[{} for _ in range(spec.size)],
        reused=len(completed),
        chunks=len(chunks),
    )
    for index, row in completed.items():
        outcome.values[index] = row
        outcome.rows[index] = dict(row)

    capture_telemetry = obs.tracing_enabled() or obs.metrics_enabled()
    ledger = _WorkerLedger()
    done_points = len(completed)
    if events is not None:
        events.emit(
            SWEEP_START,
            {
                "sweep": spec.name,
                "evaluator": spec.evaluator,
                "points": spec.size,
                "reused": len(completed),
                "jobs": jobs,
                "chunks": len(chunks),
                "fingerprint": spec.fingerprint(),
            },
        )

    def note_chunk(position: int, indices: List[int], payload: ChunkPayload) -> None:
        nonlocal done_points
        done_points += len(indices)
        ledger.record(payload.worker, payload.busy_seconds)
        if events is not None:
            events.emit(
                CHUNK_COMPLETE,
                {
                    "chunk": position,
                    "first_index": indices[0],
                    "last_index": indices[-1],
                    "points_done": done_points,
                    "points_total": spec.size,
                    "memo_hits": payload.memo_hits,
                    "memo_misses": payload.memo_misses,
                    "busy_seconds": payload.busy_seconds,
                    "worker": dict(payload.worker),
                },
            )

    started = time.perf_counter()
    #: chunk position -> telemetry snapshot, merged in position order below.
    snapshots: Dict[int, Dict[str, Any]] = {}
    with obs.span(
        "sweep:run",
        sweep=spec.name,
        evaluator=spec.evaluator,
        points=spec.size,
        jobs=jobs,
    ):
        obs.count("sweep.points", spec.size)
        obs.count("sweep.points.reused", len(completed))
        obs.count("sweep.chunks.scheduled", len(chunks))
        if jobs == 1 or not pending:
            memo = Memo()
            with alloc_tracing() if capture_telemetry else _noop_context():
                for position, chunk_indices in enumerate(chunks):
                    chunk = [(i, points[i]) for i in chunk_indices]
                    payload = _evaluate_chunk(
                        spec.evaluator,
                        spec.context,
                        chunk,
                        memo,
                        capture_telemetry,
                    )
                    _merge(outcome, evaluator.row, points, payload)
                    if payload.snapshot is not None:
                        snapshots[position] = payload.snapshot
                    note_chunk(position, chunk_indices, payload)
        else:
            from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

            workers = min(jobs, max(1, len(chunks)))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _pool_chunk,
                        spec.evaluator,
                        spec.context,
                        [(i, points[i]) for i in chunk_indices],
                        capture_telemetry,
                    ): (position, chunk_indices)
                    for position, chunk_indices in enumerate(chunks)
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        position, indices = futures[future]
                        try:
                            payload = future.result()
                        except Exception as error:
                            for other in remaining:
                                other.cancel()
                            raise SweepError(
                                f"sweep {spec.name!r} chunk covering canonical "
                                f"indices {indices[0]}..{indices[-1]} failed: "
                                f"{error}"
                            ) from error
                        _merge(outcome, evaluator.row, points, payload)
                        if payload.snapshot is not None:
                            snapshots[position] = payload.snapshot
                        note_chunk(position, indices, payload)
        if snapshots:
            # Canonical chunk order — never completion order — so the
            # merged telemetry is scheduling-independent.
            merged = merge_snapshots(
                [snapshots[position] for position in sorted(snapshots)]
            )
            if obs.tracing_enabled():
                graft_snapshot(merged, obs.get_tracer())
            if obs.metrics_enabled():
                merge_into_registry(merged, obs.metrics())
    outcome.wall_seconds = time.perf_counter() - started
    outcome.point_keys = [spec.point_key(points[i]) for i in range(spec.size)]
    outcome.workers = ledger.summary()
    obs.count("sweep.memo.hits", outcome.memo_hits)
    obs.count("sweep.memo.misses", outcome.memo_misses)
    obs.gauge("sweep.jobs", float(jobs))
    obs.gauge("sweep.worker_utilisation", outcome.worker_utilisation)
    obs.gauge("sweep.memo_hit_rate", outcome.memo_hit_rate)
    if events is not None:
        events.emit(
            SWEEP_END,
            {
                "sweep": spec.name,
                "points": spec.size,
                "evaluated": outcome.evaluated,
                "reused": outcome.reused,
                "wall_seconds": outcome.wall_seconds,
                "memo_hit_rate": outcome.memo_hit_rate,
                "worker_utilisation": outcome.worker_utilisation,
                "workers": outcome.workers,
            },
        )
    return outcome


def _noop_context() -> Any:
    from contextlib import nullcontext

    return nullcontext()


def _merge(
    outcome: SweepOutcome,
    row_fn: Any,
    points: Mapping[int, Mapping[str, Any]],
    payload: ChunkPayload,
) -> None:
    """Fold one chunk's results into the canonical slots."""
    for index, value in payload.results:
        outcome.values[index] = value
        outcome.rows[index] = row_fn(value, points[index])
    outcome.memo_hits += payload.memo_hits
    outcome.memo_misses += payload.memo_misses
    outcome.busy_seconds += payload.busy_seconds
    obs.count("sweep.chunks.completed")
