"""The sweep engine: deterministic fan-out, memoized evaluation, merge.

``run_sweep`` evaluates every point of a :class:`~repro.sweep.spec
.SweepSpec` and returns the results in **canonical axis order** — the
order a serial nested ``for`` loop over the axes would produce —
regardless of how many workers evaluated them or in which order chunks
completed.  Three execution properties make parallel output bit-identical
to serial:

* every evaluator is a pure function of ``(point, context)``;
* chunks carry their canonical indices, and results are merged by index,
  never by completion order;
* memoization (:mod:`repro.sweep.memo`) only short-circuits repeated
  *pure* sub-evaluations, so cache layout cannot change values.

``jobs=1`` runs in-process (no executor, one shared memo) — the
debuggable reference path; ``jobs>1`` fans chunks out over a
:class:`~concurrent.futures.ProcessPoolExecutor` whose workers keep a
process-global memo across chunks.  Dispatch is observable: the run is
wrapped in a ``sweep:run`` span and the engine publishes chunk/point
counts, memo hit rate and worker utilisation through
:mod:`repro.obs.state`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import state as obs
from repro.sweep.memo import Memo
from repro.sweep.registry import get_evaluator
from repro.sweep.spec import SweepSpec

__all__ = ["SweepError", "SweepOutcome", "run_sweep"]


class SweepError(RuntimeError):
    """A sweep failed: evaluator error or resume mismatch."""


#: One dispatched chunk: ``(canonical_index, point)`` pairs.
Chunk = List[Tuple[int, Mapping[str, Any]]]

#: Worker return: results per index, memo hit/miss deltas, busy seconds.
ChunkResult = Tuple[List[Tuple[int, Any]], int, int, float]

#: Per-process memo reused across all chunks a pool worker executes.
_WORKER_MEMO = Memo()


def _evaluate_chunk(
    evaluator_name: str,
    context: Mapping[str, Any],
    chunk: Chunk,
    memo: Memo,
) -> ChunkResult:
    """Evaluate one chunk against ``memo``; shared by both execution paths."""
    evaluator = get_evaluator(evaluator_name)
    hits0, misses0 = memo.stats()
    started = time.perf_counter()
    results: List[Tuple[int, Any]] = []
    for index, point in chunk:
        results.append((index, evaluator.fn(point, context, memo)))
    busy = time.perf_counter() - started
    hits1, misses1 = memo.stats()
    return results, hits1 - hits0, misses1 - misses0, busy


def _pool_chunk(
    evaluator_name: str, context: Mapping[str, Any], chunk: Chunk
) -> ChunkResult:
    """Top-level (picklable) worker entry point using the process memo."""
    return _evaluate_chunk(evaluator_name, context, chunk, _WORKER_MEMO)


@dataclass
class SweepOutcome:
    """Everything a sweep run produced, in canonical order.

    ``values[i]`` is the evaluator's (rich, picklable) result for
    canonical point ``i`` — except for points reused from a resumed
    report, whose values are the stored JSON rows (resume is a
    report-level contract; rich objects are not reconstructed).
    ``rows[i]`` is always the JSON-able report row.
    """

    spec: SweepSpec
    jobs: int
    values: List[Any]
    rows: List[Dict[str, Any]]
    reused: int = 0
    chunks: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    point_keys: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        return self.spec.size - self.reused

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def worker_utilisation(self) -> float:
        """Fraction of worker-seconds spent evaluating (vs idle/dispatch)."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.jobs * self.wall_seconds))


def _resume_rows(
    spec: SweepSpec, resume: Optional[Mapping[str, Any]]
) -> Dict[int, Dict[str, Any]]:
    """Rows reusable from a prior report, keyed by canonical index."""
    if resume is None:
        return {}
    from repro.sweep.report import validate_sweep_report

    validate_sweep_report(resume)
    if resume["fingerprint"] != spec.fingerprint():
        raise SweepError(
            f"resume fingerprint mismatch: report {resume['fingerprint'][:12]}… "
            f"was produced by a different spec than {spec.name!r} "
            f"({spec.fingerprint()[:12]}…)"
        )
    completed: Dict[int, Dict[str, Any]] = {}
    for entry in resume["points"]:
        index = entry["index"]
        if 0 <= index < spec.size:
            completed[index] = entry["row"]
    return completed


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    resume: Optional[Mapping[str, Any]] = None,
) -> SweepOutcome:
    """Evaluate every point of ``spec``; results in canonical order.

    Args:
        spec: the sweep to run.
        jobs: worker processes; ``1`` evaluates in-process (no pool).
        resume: a prior ``repro.sweep/v1`` report dict whose completed
            points are reused (fingerprints must match); only pending
            points are evaluated.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    evaluator = get_evaluator(spec.evaluator)
    points = dict(spec.points())
    completed = _resume_rows(spec, resume)
    pending = [index for index in range(spec.size) if index not in completed]
    chunks = spec.chunks(pending, jobs)

    outcome = SweepOutcome(
        spec=spec,
        jobs=jobs,
        values=[None] * spec.size,
        rows=[{} for _ in range(spec.size)],
        reused=len(completed),
        chunks=len(chunks),
    )
    for index, row in completed.items():
        outcome.values[index] = row
        outcome.rows[index] = dict(row)

    started = time.perf_counter()
    with obs.span(
        "sweep:run",
        sweep=spec.name,
        evaluator=spec.evaluator,
        points=spec.size,
        jobs=jobs,
    ):
        obs.count("sweep.points", spec.size)
        obs.count("sweep.points.reused", len(completed))
        obs.count("sweep.chunks.scheduled", len(chunks))
        if jobs == 1 or not pending:
            memo = Memo()
            for chunk_indices in chunks:
                chunk = [(i, points[i]) for i in chunk_indices]
                results, hits, misses, busy = _evaluate_chunk(
                    spec.evaluator, spec.context, chunk, memo
                )
                _merge(outcome, evaluator.row, points, results, hits, misses, busy)
        else:
            from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

            workers = min(jobs, max(1, len(chunks)))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _pool_chunk,
                        spec.evaluator,
                        spec.context,
                        [(i, points[i]) for i in chunk_indices],
                    ): chunk_indices
                    for chunk_indices in chunks
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        try:
                            results, hits, misses, busy = future.result()
                        except Exception as error:
                            indices = futures[future]
                            for other in remaining:
                                other.cancel()
                            raise SweepError(
                                f"sweep {spec.name!r} chunk covering canonical "
                                f"indices {indices[0]}..{indices[-1]} failed: "
                                f"{error}"
                            ) from error
                        _merge(
                            outcome, evaluator.row, points, results, hits, misses, busy
                        )
    outcome.wall_seconds = time.perf_counter() - started
    outcome.point_keys = [spec.point_key(points[i]) for i in range(spec.size)]
    obs.count("sweep.memo.hits", outcome.memo_hits)
    obs.count("sweep.memo.misses", outcome.memo_misses)
    obs.gauge("sweep.jobs", float(jobs))
    obs.gauge("sweep.worker_utilisation", outcome.worker_utilisation)
    obs.gauge("sweep.memo_hit_rate", outcome.memo_hit_rate)
    return outcome


def _merge(
    outcome: SweepOutcome,
    row_fn: Any,
    points: Mapping[int, Mapping[str, Any]],
    results: Sequence[Tuple[int, Any]],
    hits: int,
    misses: int,
    busy: float,
) -> None:
    """Fold one chunk's results into the canonical slots."""
    for index, value in results:
        outcome.values[index] = value
        outcome.rows[index] = row_fn(value, points[index])
    outcome.memo_hits += hits
    outcome.memo_misses += misses
    outcome.busy_seconds += busy
    obs.count("sweep.chunks.completed")
