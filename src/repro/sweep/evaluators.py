"""Built-in sweep evaluators for the repo's four sweep surfaces.

Each evaluator is a pure function of ``(point, context)`` — the engine's
determinism contract — and reaches its domain modules through *lazy*
imports so loading :mod:`repro.sweep` never drags in the whole model.
Cost-model sub-evaluations are memoized per worker on
``(params, config, cache_bytes)`` keys (see :mod:`repro.sweep.memo`).

* ``search.candidate`` — one Table 5 candidate: bootstrap cost, roofline
  runtime and Han-Ki throughput on a hardware design.
* ``bootstrap.cost``   — one ablation grid point: bootstrap cost under a
  ``(params, config, cache_mb)`` coordinate (optionally a single-flag
  toggle via a ``flag`` axis).
* ``fig6.bar``         — one Fig. 6 bar: a design's MAD counterpart at a
  cache size running an ML workload.
* ``memsim.primitive`` — one Fig. 2 ladder cell: differential validation
  of one primitive's schedule at one rung capacity.
* ``serve.scenario``   — one capacity-planning cell: a named serving
  scenario on one fleet configuration (device count / cache policy
  overrides applied to a named fleet preset), returning the fleet's
  ``repro.serve/v1`` report row.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Mapping, Optional

from repro.obs import state as obs
from repro.sweep.memo import Memo
from repro.sweep.registry import register_evaluator
from repro.sweep.spec import value_key

__all__ = [
    "EVALUATOR_BOOTSTRAP_COST",
    "EVALUATOR_FIG6_BAR",
    "EVALUATOR_MEMSIM_PRIMITIVE",
    "EVALUATOR_SEARCH_CANDIDATE",
    "EVALUATOR_SERVE_SCENARIO",
    "memoized_bootstrap_cost",
]

EVALUATOR_SEARCH_CANDIDATE = "search.candidate"
EVALUATOR_BOOTSTRAP_COST = "bootstrap.cost"
EVALUATOR_FIG6_BAR = "fig6.bar"
EVALUATOR_MEMSIM_PRIMITIVE = "memsim.primitive"
EVALUATOR_SERVE_SCENARIO = "serve.scenario"


def memoized_bootstrap_cost(
    params: Any, config: Any, cache: Any, memo: Memo
) -> Any:
    """Total bootstrap cost, memoized on ``(params, config, cache_bytes)``."""
    from repro.perf import BootstrapModel

    cache_bytes = None if cache is None else cache.size_bytes
    return memo.get_or_compute(
        ("bootstrap_cost", params, config, cache_bytes),
        lambda: BootstrapModel(params, config, cache).total_cost(),
    )


# ----------------------------------------------------------------------
# search.candidate — the Table 5 brute-force search
# ----------------------------------------------------------------------
def _search_candidate(
    point: Mapping[str, Any], context: Mapping[str, Any], memo: Memo
) -> Any:
    from repro.hardware.runtime import estimate_runtime
    from repro.search.optimizer import ParameterSearchResult
    from repro.search.throughput import bootstrap_throughput

    params = point["params"]
    design = context["design"]
    config = context["config"]
    cache = design.cache if context.get("enforce_cache") else None
    cost = memoized_bootstrap_cost(params, config, cache, memo)
    runtime = estimate_runtime(cost, design)
    throughput = bootstrap_throughput(
        params.slots, params.log_q1, params.bit_precision, runtime.seconds
    )
    if obs.tracing_enabled():
        with obs.span("sweep:candidate", params=params.describe()):
            obs.record_cost(cost)
    return ParameterSearchResult(
        params=params, cost=cost, runtime=runtime, throughput=throughput
    )


def _search_row(value: Any, point: Mapping[str, Any]) -> Dict[str, Any]:
    params = value.params
    return {
        "params": value_key(params),
        "describe": params.describe(),
        "throughput": value.throughput,
        "runtime_ms": value.runtime.milliseconds,
        "bound": value.runtime.bound,
        "ops_total": value.cost.ops.total,
        "traffic_total": value.cost.traffic.total,
    }


register_evaluator(EVALUATOR_SEARCH_CANDIDATE, _search_candidate, _search_row)


# ----------------------------------------------------------------------
# bootstrap.cost — ablation grids (cache size, dnum, fftIter, flags)
# ----------------------------------------------------------------------
def _bootstrap_cost_point(
    point: Mapping[str, Any], context: Mapping[str, Any], memo: Memo
) -> Dict[str, Any]:
    from repro.perf import CacheModel

    params = point.get("params", context.get("params"))
    config = point.get("config", context.get("config"))
    cache_mb = point.get("cache_mb", context.get("cache_mb"))
    flag = point.get("flag")
    if params is None or config is None:
        raise ValueError("bootstrap.cost needs params and config (axis or context)")
    if flag is not None and flag != "baseline":
        config = config.with_(**{flag: True})
    cache = None if cache_mb is None else CacheModel.from_mb(cache_mb)
    cost = memoized_bootstrap_cost(params, config, cache, memo)
    if obs.tracing_enabled():
        with obs.span("sweep:ablation", params=params.describe()):
            obs.record_cost(cost)
    traffic = cost.traffic
    row: Dict[str, Any] = {
        "params": value_key(params),
        "cache_mb": cache_mb,
        "flag": flag,
        "giga_ops": cost.giga_ops(),
        "dram_gb": cost.gigabytes(),
        "ct_read_gb": traffic.ct_read / 1e9,
        "ct_write_gb": traffic.ct_write / 1e9,
        "key_read_gb": traffic.key_read / 1e9,
        "pt_read_gb": traffic.pt_read / 1e9,
        "ops_total": cost.ops.total,
        "traffic_total": traffic.total,
        "arithmetic_intensity": cost.arithmetic_intensity,
        "log_qp": params.log_qp,
        "log_q1": params.log_q1 if params.supports_bootstrapping() else None,
    }
    return row


register_evaluator(EVALUATOR_BOOTSTRAP_COST, _bootstrap_cost_point)


# ----------------------------------------------------------------------
# fig6.bar — design × cache-size ML application grid
# ----------------------------------------------------------------------
def _fig6_workload(kind: str, params: Any, iterations: int) -> Any:
    from repro.apps import helr_training, resnet20_inference

    if kind == "lr":
        return helr_training(params, iterations=iterations)
    if kind == "resnet":
        return resnet20_inference(params)
    raise ValueError(f"unknown fig6 workload {kind!r}")


def _fig6_bar(
    point: Mapping[str, Any], context: Mapping[str, Any], memo: Memo
) -> Any:
    from repro.apps import workload_cost
    from repro.hardware import mad_counterpart
    from repro.hardware.runtime import estimate_runtime
    from repro.perf import CacheModel, MADConfig
    from repro.report.figures import Fig6Bar

    design = point["design"]
    cache_mb = point["cache_mb"]
    kind = context["workload"]
    iterations = context.get("iterations", 30)
    mad = mad_counterpart(design, on_chip_mb=cache_mb)
    cache = CacheModel.from_mb(cache_mb)
    config = MADConfig.all()
    cost = memo.get_or_compute(
        ("fig6_cost", kind, iterations, mad.params, config, cache.size_bytes),
        lambda: workload_cost(
            _fig6_workload(kind, mad.params, iterations), mad.params, config, cache
        ).total,
    )
    runtime = estimate_runtime(cost, mad)
    original_seconds = context["original_seconds"][design.name]
    if obs.tracing_enabled():
        with obs.span("sweep:fig6", design=mad.name, cache_mb=cache_mb):
            obs.record_cost(cost)
    return Fig6Bar(
        label=mad.name,
        seconds=runtime.seconds,
        bound=runtime.bound,
        speedup_vs_original=original_seconds / runtime.seconds,
    )


def _fig6_row(value: Any, point: Mapping[str, Any]) -> Dict[str, Any]:
    row = asdict(value)
    row["design"] = point["design"].name
    row["cache_mb"] = point["cache_mb"]
    return row


register_evaluator(EVALUATOR_FIG6_BAR, _fig6_bar, _fig6_row)


# ----------------------------------------------------------------------
# memsim.primitive — one Fig. 2 ladder cell
# ----------------------------------------------------------------------
def _memsim_primitive(
    point: Mapping[str, Any], context: Mapping[str, Any], memo: Memo
) -> Dict[str, Any]:
    from repro.memsim.schedules import ScheduleBuilder
    from repro.memsim.validate import _PARAM_SETS, validate_primitive

    label, config, cache_mb = point["rung"]
    name = point["primitive"]
    params = _PARAM_SETS[context["params_key"]]
    builder = memo.get_or_compute(
        ("schedule_builder", params, config),
        lambda: ScheduleBuilder(params, config),
    )
    expected: Mapping[Any, str] = context.get("expected", {})
    reason: Optional[str] = expected.get((label, cache_mb, name))
    return validate_primitive(
        builder,
        name,
        cache_mb,
        context.get("policy", "pin"),
        context.get("tolerance", 0.05),
        reason,
    )


register_evaluator(EVALUATOR_MEMSIM_PRIMITIVE, _memsim_primitive)


# ----------------------------------------------------------------------
# serve.scenario — one capacity-planning grid cell
# ----------------------------------------------------------------------
def _serve_scenario(
    point: Mapping[str, Any], context: Mapping[str, Any], memo: Memo
) -> Dict[str, Any]:
    from repro.serve.report import fleet_row
    from repro.serve.scenario import (
        FLEET_PRESETS,
        SCENARIOS,
        fleet_with,
        simulate_fleet,
    )

    scenario = SCENARIOS[str(context["scenario"])]
    base_name = str(point.get("fleet", context.get("fleet", "")))
    if base_name not in FLEET_PRESETS:
        known = ", ".join(sorted(FLEET_PRESETS))
        raise ValueError(
            f"unknown fleet preset {base_name!r}; known: {known}"
        )
    fleet = fleet_with(
        FLEET_PRESETS[base_name],
        devices=int(point.get("devices", 0)),
        cache_policy=str(point.get("cache_policy", "")),
    )
    seed = int(context.get("seed", 0))
    result = simulate_fleet(scenario, fleet, seed)
    row = fleet_row(result)
    row["scenario"] = scenario.name
    row["seed"] = seed
    return row


register_evaluator(EVALUATOR_SERVE_SCENARIO, _serve_scenario)
