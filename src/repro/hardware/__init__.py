"""Hardware design points and roofline runtime estimation (Table 6, Fig. 6)."""

from repro.hardware.design import HardwareDesign
from repro.hardware.designs import (
    ARK,
    BTS,
    CRATERLAKE,
    F1,
    GPU_JUNG,
    PRIOR_DESIGNS,
    mad_counterpart,
)
from repro.hardware.runtime import RuntimeEstimate, estimate_runtime
from repro.hardware.roofline import BalancePoint, balance_point, render_balance
from repro.hardware.area import NODES, TechnologyNode, chip_area, relative_cost

__all__ = [
    "BalancePoint",
    "balance_point",
    "render_balance",
    "NODES",
    "TechnologyNode",
    "chip_area",
    "relative_cost",
    "HardwareDesign",
    "GPU_JUNG",
    "F1",
    "BTS",
    "ARK",
    "CRATERLAKE",
    "PRIOR_DESIGNS",
    "mad_counterpart",
    "RuntimeEstimate",
    "estimate_runtime",
]
