"""Chip area and cost model (Section 4.4: performance vs. area/cost).

The paper's cost argument: prior ASICs buy bandwidth relief with enormous
on-chip memories (256-512 MB), which dominates chip area at advanced nodes
and therefore cost; MAD needs only 32 MB, "which proportionally reduces the
cost of the solution".

This module provides a coarse but explicit model: chip area is SRAM area
(MB x density) plus modular-multiplier logic area, and relative cost is
area times a per-node cost factor (advanced nodes are much more expensive
per mm^2 — cf. Khazraee et al., "Moonwalk", and the paper's [3, 23]
citations).  The constants are order-of-magnitude figures from published
design papers (BTS: 512 MB + 8192 multipliers in 373 mm^2 at 7 nm;
CraterLake: 256 MB in ~472 mm^2 at 14/12 nm); they are meant for *ratios*,
not sign-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.design import HardwareDesign


@dataclass(frozen=True)
class TechnologyNode:
    """A process node's area/cost characteristics.

    Attributes:
        name: marketing name, e.g. "7nm".
        sram_mm2_per_mb: high-density SRAM macro area per MB.
        logic_mm2_per_kmult: logic area per 1000 word-sized modular
            multipliers (including pipeline registers and routing).
        cost_per_mm2: relative manufacturing+NRE cost per mm^2
            (normalised to 28 nm = 1.0).
    """

    name: str
    sram_mm2_per_mb: float
    logic_mm2_per_kmult: float
    cost_per_mm2: float

    def __post_init__(self) -> None:
        if min(self.sram_mm2_per_mb, self.logic_mm2_per_kmult, self.cost_per_mm2) <= 0:
            raise ValueError("node characteristics must be positive")


#: Order-of-magnitude node characteristics (see module docstring).
NODES: Dict[str, TechnologyNode] = {
    "7nm": TechnologyNode("7nm", sram_mm2_per_mb=0.45, logic_mm2_per_kmult=1.6, cost_per_mm2=4.0),
    "14nm": TechnologyNode("14nm", sram_mm2_per_mb=1.1, logic_mm2_per_kmult=4.0, cost_per_mm2=2.0),
    "28nm": TechnologyNode("28nm", sram_mm2_per_mb=2.6, logic_mm2_per_kmult=10.0, cost_per_mm2=1.0),
}


@dataclass(frozen=True)
class AreaEstimate:
    """Area/cost split of one design on one node."""

    node: str
    sram_mm2: float
    logic_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.sram_mm2 + self.logic_mm2

    @property
    def memory_fraction(self) -> float:
        """Fraction of die area spent on on-chip memory."""
        return self.sram_mm2 / self.total_mm2

    def relative_cost(self, node: TechnologyNode) -> float:
        return self.total_mm2 * node.cost_per_mm2


def chip_area(design: HardwareDesign, node: TechnologyNode) -> AreaEstimate:
    """Estimate the die area of ``design`` on ``node``."""
    return AreaEstimate(
        node=node.name,
        sram_mm2=design.on_chip_mb * node.sram_mm2_per_mb,
        logic_mm2=design.modular_multipliers / 1000.0 * node.logic_mm2_per_kmult,
    )


def relative_cost(design: HardwareDesign, node: TechnologyNode) -> float:
    """Relative manufacturing cost of ``design`` on ``node``."""
    return chip_area(design, node).relative_cost(node)


def performance_per_cost(
    runtime_seconds: float, design: HardwareDesign, node: TechnologyNode
) -> float:
    """Workloads-per-second per unit cost — the Section 4.4 figure of merit."""
    if runtime_seconds <= 0:
        raise ValueError("runtime must be positive")
    return (1.0 / runtime_seconds) / relative_cost(design, node)
