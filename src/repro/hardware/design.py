"""Hardware design-point description."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.params import CkksParams
from repro.perf.cache import CacheModel


@dataclass(frozen=True)
class HardwareDesign:
    """A compute platform as characterised in Table 6 of the paper.

    Args:
        name: display name.
        modular_multipliers: parallel word-sized modular multipliers (the
            paper's "Modular Multiplier Count"; GPUs are characterised by an
            equivalent count).
        on_chip_mb: on-chip memory (SRAM/cache/register file) in MB.
        bandwidth_gb_s: main-memory bandwidth in GB/s (decimal).
        params: the CKKS parameter set the design runs.
        frequency_ghz: clock frequency (all paper ASICs use 1 GHz).
        reported_bootstrap_ms: bootstrapping runtime reported by the
            design's original paper (used for the "original" rows in the
            comparison tables; our roofline regenerates the MAD rows).
        bootstrap_slots: plaintext slots the design bootstraps at once
            (F1's unpacked bootstrapping has 1).
    """

    name: str
    modular_multipliers: int
    on_chip_mb: float
    bandwidth_gb_s: float
    params: CkksParams
    frequency_ghz: float = 1.0
    reported_bootstrap_ms: Optional[float] = None
    bootstrap_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.modular_multipliers <= 0:
            raise ValueError(
                f"design {self.name!r}: modular_multipliers must be "
                f"positive, got {self.modular_multipliers}"
            )
        if not self.on_chip_mb > 0:
            raise ValueError(
                f"design {self.name!r}: on_chip_mb must be positive, "
                f"got {self.on_chip_mb}"
            )
        if not self.bandwidth_gb_s > 0:
            raise ValueError(
                f"design {self.name!r}: bandwidth_gb_s must be positive, "
                f"got {self.bandwidth_gb_s}"
            )
        if not self.frequency_ghz > 0:
            raise ValueError(
                f"design {self.name!r}: frequency_ghz must be positive, "
                f"got {self.frequency_ghz}"
            )
        # The derived roofline rates divide runtime estimates; NaN or
        # infinite field values pass the comparisons above (NaN fails
        # them) only as non-finite products, so reject them here with
        # the field that caused it.
        if not (
            self.compute_ops_per_second > 0
            and self.compute_ops_per_second != float("inf")
        ):
            raise ValueError(
                f"design {self.name!r}: modular_multipliers x "
                f"frequency_ghz does not give a positive finite "
                f"compute rate"
            )
        if not (
            self.bandwidth_bytes_per_second > 0
            and self.bandwidth_bytes_per_second != float("inf")
        ):
            raise ValueError(
                f"design {self.name!r}: bandwidth_gb_s does not give a "
                f"positive finite byte rate"
            )

    @property
    def cache(self) -> CacheModel:
        return CacheModel.from_mb(self.on_chip_mb)

    @property
    def slots(self) -> int:
        """Slots used for bootstrapping throughput (defaults to n = N/2)."""
        if self.bootstrap_slots is not None:
            return self.bootstrap_slots
        return self.params.slots

    @property
    def compute_ops_per_second(self) -> float:
        """Peak word-sized modular operations per second."""
        return self.modular_multipliers * self.frequency_ghz * 1e9

    @property
    def bandwidth_bytes_per_second(self) -> float:
        return self.bandwidth_gb_s * 1e9

    def with_memory(self, on_chip_mb: float) -> "HardwareDesign":
        """The same design with a different on-chip memory size."""
        return replace(self, on_chip_mb=on_chip_mb)

    def with_params(self, params: CkksParams) -> "HardwareDesign":
        return replace(self, params=params)
