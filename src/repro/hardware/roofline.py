"""Roofline balance analysis (Section 4.2's balanced-design discussion).

The paper: after applying MAD, "we need to increase the compute throughput
by 2x in BTS, 1.05x in ARK, and 3.5x in CraterLake to generate a balanced
design" — i.e. a design where compute time equals memory time, so neither
resource idles.  These helpers compute exactly those balance factors for
any workload/design pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.events import CostReport
from repro.hardware.design import HardwareDesign
from repro.hardware.runtime import RuntimeEstimate, estimate_runtime


@dataclass(frozen=True)
class BalancePoint:
    """What it would take to balance a design on a workload."""

    runtime: RuntimeEstimate
    #: Multiply compute throughput by this to equalise the roofline
    #: (>1 means the design is compute-starved for this workload).
    compute_scaling: float
    #: Multiply memory bandwidth by this to equalise the roofline.
    bandwidth_scaling: float
    #: Bandwidth (GB/s) at which this workload becomes balanced with the
    #: design's current compute throughput.
    balanced_bandwidth_gb_s: float
    #: Modular multipliers needed for balance at the current bandwidth.
    balanced_multipliers: int


def balance_point(cost: CostReport, design: HardwareDesign) -> BalancePoint:
    """Analyse how far ``design`` is from a balanced roofline on ``cost``."""
    runtime = estimate_runtime(cost, design)
    if runtime.memory_seconds == 0 or runtime.compute_seconds == 0:
        raise ValueError("workload must exercise both compute and memory")
    compute_scaling = runtime.compute_seconds / runtime.memory_seconds
    bandwidth_scaling = runtime.memory_seconds / runtime.compute_seconds
    balanced_bw = (
        cost.traffic.total / runtime.compute_seconds / 1e9
    )
    balanced_mults = max(
        1,
        round(
            cost.ops.total
            / (runtime.memory_seconds * design.frequency_ghz * 1e9)
        ),
    )
    return BalancePoint(
        runtime=runtime,
        compute_scaling=compute_scaling,
        bandwidth_scaling=bandwidth_scaling,
        balanced_bandwidth_gb_s=balanced_bw,
        balanced_multipliers=balanced_mults,
    )


def render_balance(name: str, point: BalancePoint) -> str:
    rt = point.runtime
    need = (
        f"needs {point.compute_scaling:.2f}x compute"
        if point.compute_scaling > 1
        else f"needs {point.bandwidth_scaling:.2f}x bandwidth"
    )
    return (
        f"{name:24} {rt.milliseconds:8.2f} ms ({rt.bound}-bound); "
        f"balanced at {point.balanced_bandwidth_gb_s:7.0f} GB/s or "
        f"{point.balanced_multipliers:6d} multipliers; {need} for balance"
    )
