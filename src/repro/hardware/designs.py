"""Design-point presets from Table 6 of the paper.

The "original" designs carry their published parameter sets, on-chip
memory, bandwidth and reported bootstrapping runtimes.  The paper compares
each against a MAD design point with the *same* multiplier count and
bandwidth but only 32 MB of on-chip memory running the memory-aware optimal
parameters — :func:`mad_counterpart` builds exactly that.
"""

from __future__ import annotations

from typing import Dict

from repro.params import MAD_OPTIMAL, BASELINE_JUNG, CkksParams
from repro.hardware.design import HardwareDesign

#: Jung et al. [20] — GPU (Tesla V100-class).  The paper lists no multiplier
#: count for the GPU and pairs it with a 2250-multiplier MAD design; we use
#: that figure as the equivalent compute width.
GPU_JUNG = HardwareDesign(
    name="GPU [Jung et al.]",
    modular_multipliers=2250,
    on_chip_mb=6,
    bandwidth_gb_s=900,
    params=BASELINE_JUNG,
    reported_bootstrap_ms=328.7,
)

#: F1 [Samardzic et al., MICRO'21] — small parameters, unpacked bootstrap.
F1 = HardwareDesign(
    name="F1",
    modular_multipliers=18432,
    on_chip_mb=64,
    bandwidth_gb_s=1000,
    params=CkksParams(
        log_n=14,
        log_q=32,
        max_limbs=16,
        dnum=16,
        fft_iter=1,
        eval_mod_depth=1,
        bit_precision=24,
    ),
    reported_bootstrap_ms=1.3,
    bootstrap_slots=1,  # unpacked: one element per bootstrap
)

#: BTS [Kim et al.] — 512 MB of on-chip memory.
BTS = HardwareDesign(
    name="BTS",
    modular_multipliers=8192,
    on_chip_mb=512,
    bandwidth_gb_s=1000,
    params=CkksParams(log_n=17, log_q=50, max_limbs=36, dnum=3),
    reported_bootstrap_ms=50.43,
)

#: ARK [Kim et al.] — N = 2^16, heavy algorithmic key reuse, 512 MB.
ARK = HardwareDesign(
    name="ARK",
    modular_multipliers=20480,
    on_chip_mb=512,
    bandwidth_gb_s=1000,
    params=CkksParams(log_n=16, log_q=54, max_limbs=23, dnum=4, fft_iter=3),
    reported_bootstrap_ms=3.9,
)

#: CraterLake [Samardzic et al., ISCA'22] — 256 MB, 2.4 TB/s.
CRATERLAKE = HardwareDesign(
    name="CraterLake",
    modular_multipliers=14336,
    on_chip_mb=256,
    bandwidth_gb_s=2400,
    params=CkksParams(
        log_n=17,
        log_q=28,
        max_limbs=41,
        dnum=6,
        fft_iter=3,
        # EvalMod's ~9 multiplications at ~50-bit scale cost 16 of
        # CraterLake's narrow 28-bit limbs.
        eval_mod_depth=16,
        word_bytes=4,  # 28-bit limbs pack into 32-bit words
    ),
    reported_bootstrap_ms=6.33,
)

PRIOR_DESIGNS: Dict[str, HardwareDesign] = {
    design.name: design
    for design in (GPU_JUNG, F1, BTS, ARK, CRATERLAKE)
}


def mad_counterpart(
    design: HardwareDesign, on_chip_mb: float = 32
) -> HardwareDesign:
    """The MAD design point matched to ``design`` (Table 6 pairing).

    Same multiplier count, frequency and bandwidth; 32 MB on-chip memory;
    the memory-aware optimal parameter set of Table 5.
    """
    return HardwareDesign(
        name=f"{design.name}+MAD-{on_chip_mb:g}",
        modular_multipliers=design.modular_multipliers,
        on_chip_mb=on_chip_mb,
        bandwidth_gb_s=design.bandwidth_gb_s,
        params=MAD_OPTIMAL,
        frequency_ghz=design.frequency_ghz,
    )
