"""Roofline runtime estimation.

Following Section 4.2 of the paper: compute latency is the operation count
divided by the parallel modular-arithmetic throughput (multiplier count x
frequency), memory latency is total DRAM bytes divided by bandwidth, and —
since DRAM transfer and compute overlap on every platform modelled — the
runtime is the maximum of the two.  Whichever term wins classifies the
design as compute- or memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import state as obs
from repro.perf.events import CostReport
from repro.hardware.design import HardwareDesign


@dataclass(frozen=True)
class RuntimeEstimate:
    """Roofline runtime of a workload on a design."""

    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def bound(self) -> str:
        """Which resource limits this design: 'compute' or 'memory'."""
        return (
            "compute"
            if self.compute_seconds >= self.memory_seconds
            else "memory"
        )

    @property
    def balance(self) -> float:
        """compute/memory time ratio; 1.0 is a perfectly balanced design."""
        if self.memory_seconds == 0:
            return float("inf")
        return self.compute_seconds / self.memory_seconds


def estimate_runtime(
    cost: CostReport, design: HardwareDesign
) -> RuntimeEstimate:
    """Roofline runtime of ``cost`` on ``design``.

    When a span is open on the global tracer (:mod:`repro.obs`) the
    estimate is attached to it as metadata, attributing compute-bound vs
    memory-bound time to whatever the span measures.

    Raises :class:`ValueError` (naming the design and the degenerate
    rate) instead of :class:`ZeroDivisionError` when a design slips
    through construction with a non-positive roofline rate — e.g. a
    ``dataclasses.replace`` bypassing no validation but a hand-built
    object with ``__post_init__`` monkeypatched away, or a subclass
    overriding the rate properties.
    """
    compute_rate = design.compute_ops_per_second
    memory_rate = design.bandwidth_bytes_per_second
    if not compute_rate > 0:
        raise ValueError(
            f"cannot estimate runtime on design {design.name!r}: "
            f"compute_ops_per_second is {compute_rate!r}, not positive"
        )
    if not memory_rate > 0:
        raise ValueError(
            f"cannot estimate runtime on design {design.name!r}: "
            f"bandwidth_bytes_per_second is {memory_rate!r}, not positive"
        )
    compute = cost.ops.total / compute_rate
    memory = cost.traffic.total / memory_rate
    estimate = RuntimeEstimate(compute_seconds=compute, memory_seconds=memory)
    obs.count("hardware.runtime.estimates")
    if obs.tracing_enabled():
        obs.annotate(
            design=design.name,
            compute_seconds=compute,
            memory_seconds=memory,
            bound=estimate.bound,
        )
    return estimate
