"""Roofline runtime estimation.

Following Section 4.2 of the paper: compute latency is the operation count
divided by the parallel modular-arithmetic throughput (multiplier count x
frequency), memory latency is total DRAM bytes divided by bandwidth, and —
since DRAM transfer and compute overlap on every platform modelled — the
runtime is the maximum of the two.  Whichever term wins classifies the
design as compute- or memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import state as obs
from repro.perf.events import CostReport
from repro.hardware.design import HardwareDesign


@dataclass(frozen=True)
class RuntimeEstimate:
    """Roofline runtime of a workload on a design."""

    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def bound(self) -> str:
        """Which resource limits this design: 'compute' or 'memory'."""
        return (
            "compute"
            if self.compute_seconds >= self.memory_seconds
            else "memory"
        )

    @property
    def balance(self) -> float:
        """compute/memory time ratio; 1.0 is a perfectly balanced design."""
        if self.memory_seconds == 0:
            return float("inf")
        return self.compute_seconds / self.memory_seconds


def estimate_runtime(
    cost: CostReport, design: HardwareDesign
) -> RuntimeEstimate:
    """Roofline runtime of ``cost`` on ``design``.

    When a span is open on the global tracer (:mod:`repro.obs`) the
    estimate is attached to it as metadata, attributing compute-bound vs
    memory-bound time to whatever the span measures.
    """
    compute = cost.ops.total / design.compute_ops_per_second
    memory = cost.traffic.total / design.bandwidth_bytes_per_second
    estimate = RuntimeEstimate(compute_seconds=compute, memory_seconds=memory)
    obs.count("hardware.runtime.estimates")
    if obs.tracing_enabled():
        obs.annotate(
            design=design.name,
            compute_seconds=compute,
            memory_seconds=memory,
            bound=estimate.bound,
        )
    return estimate
