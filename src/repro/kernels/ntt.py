"""Limb-major batched negacyclic NTT on contiguous int64 arrays.

:class:`BatchNttKernel` is the vectorized counterpart of the pure-Python
oracle :class:`repro.numth.ntt.NttContext`.  One kernel instance holds
the plans for a whole RNS basis and transforms all limbs in a single
forward/inverse pass over an ``(L, N)`` int64 matrix — the *limb-major*
layout whose movement the MAD performance model accounts for.

The kernel evaluates exactly the oracle's transform but organises the
butterflies differently; three standard techniques stack up to the
order-of-magnitude speedup the functional bootstrap needs:

* **Stockham self-sorting stages.**  Instead of bit-reversing the input
  and permuting in place, every stage reads two contiguous halves and
  writes an interleaved ping-pong buffer.  Input and output are both in
  natural order and no index-gather pass exists at all.  Crucially the
  butterfly outputs are *computed into contiguous temporaries* and the
  interleave happens in one streaming ``copyto`` from a transposed
  view: writing the interleaved buffer directly from several strided
  ufunc calls would reload every output cache line once per call, which
  profiling showed dominated the whole transform.
* **Radix-4 stage fusion.**  Two radix-2 levels are fused into one pass
  over the data.  A fused stage costs roughly the same number of array
  passes as a single radix-2 stage (the dominant cost on a
  bandwidth-bound transform) but retires two of the ``log2 N`` levels,
  so the stage loop runs in about half the time.  An odd ``log2 N`` is
  handled by one leading radix-2 stage.
* **Lazy (Harvey-style) reduction.**  Between stages, values live in
  ``[0, 4q)`` rather than ``[0, q)``.  Only the two summand operands of
  each butterfly are conditionally reduced — branchlessly, as
  ``min(x, x - 2q)`` in uint64, where the subtraction wraps for small
  ``x`` and loses the min — the twiddle products come out of the lazy
  Shoup multiply in ``[0, 2q)`` with *no* correction pass, and a single
  canonicalisation runs after the last stage.

Why int64 stays exact (``q < 2**30``, so ``4q < 2**32``):

* lazy stage values ``x < 4q < 2**32``, so the Shoup high product
  ``x * w'`` is below ``2**64`` in a uint64 and the low product
  ``x * w`` is below ``2**62`` in an int64;
* the lazy Shoup result ``x*w - q*floor(x*w' / 2**32)`` lies in
  ``[0, 2q)`` for *any* ``x < 2**32`` — the classical bound
  ``r < q*(1 + x/2**32)``;
* butterfly outputs ``u + v`` and ``u - v + 2q`` with ``u, v < 2q``
  land back inside ``[0, 4q)``, restoring the invariant.

Bit-exactness against the oracle is structural, and pinned by the
differential test suite: the twiddle tables are *copied from oracle
instances* (never re-derived), so both paths evaluate the same
polynomial at the same roots of unity, and the final canonicalisation
maps the lazy residues onto exactly the oracle's canonical outputs.
The ``1/N`` factor of the inverse transform is folded into the
``psi^{-i}`` untwist table — identical mod ``q`` to the oracle's
two-step scaling — which also makes the inverse's last multiply the
canonicalisation pass.

Only moduli below :data:`repro.kernels.reduce.FAST_MODULUS_BOUND` are
accepted; callers (e.g. :meth:`repro.ring.RnsBasis.fast_kernel`) fall
back to the oracle for larger limbs.  Instances own ping-pong and mask
scratch buffers, so a single kernel must not be shared across threads;
the repo's parallelism (sweep/serve) is process-based, which is safe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kernels.reduce import (
    FAST_MODULUS_BOUND,
    SHOUP_SHIFT,
    moduli_fit,
    mul_mod,
    shoup_precompute,
)
from repro.numth.ntt import NttContext
from repro.obs import state as obs

__all__ = ["BatchNttKernel"]

#: Accepted input type for the matrix entry points.
Rows = Union[np.ndarray, Sequence[Sequence[int]]]


class BatchNttKernel:
    """Precomputed batched NTT plan for ring degree ``n`` over ``L`` moduli.

    Building one costs ``O(L * n)`` numpy work on top of the oracle
    plans it mirrors (which are cached process-wide by
    :mod:`repro.ring.basis`).  The instance owns scratch buffers — share
    it freely across calls, but not across threads.

    Args:
        degree: the ring degree ``N`` (power of two, >= 2).
        moduli: the limb moduli; every modulus must satisfy
            ``q < 2**30`` and ``q = 1 (mod 2N)``.
        contexts: optional pre-built oracle plans (one per modulus, same
            order) to copy twiddle tables from; freshly built when absent.
    """

    def __init__(
        self,
        degree: int,
        moduli: Sequence[int],
        contexts: Optional[Sequence[NttContext]] = None,
    ):
        if not moduli:
            raise ValueError("a batched kernel needs at least one modulus")
        if not moduli_fit(moduli):
            raise ValueError(
                f"moduli {list(moduli)} exceed the int64 fast-path bound "
                f"{FAST_MODULUS_BOUND} (2**30)"
            )
        if contexts is None:
            contexts = [NttContext(degree, int(q)) for q in moduli]
        if len(contexts) != len(moduli) or any(
            ctx.n != degree or ctx.q != int(q)
            for ctx, q in zip(contexts, moduli)
        ):
            raise ValueError("oracle contexts do not match (degree, moduli)")

        self.degree = degree
        self.moduli = tuple(int(q) for q in moduli)
        limbs = len(self.moduli)
        q = np.asarray(self.moduli, dtype=np.int64)
        self._q_col = q[:, np.newaxis]  # (L, 1): broadcasts over (L, N)
        self._q_cube = q[:, np.newaxis, np.newaxis]  # (L, 1, 1): stage views
        self._two_q_cube = self._q_cube << 1
        # uint64 reinterpretations for the branchless min-reduction.
        self._q_col_u = self._q_col.view(np.uint64)
        self._two_q_col = self._q_col << 1
        self._two_q_col_u = self._two_q_col.view(np.uint64)
        self._two_q_cube_u = self._two_q_cube.view(np.uint64)

        # psi^i twist (forward) and psi^{-i}/N untwist (inverse), with the
        # 1/N factor folded into the inverse table — identical mod q to the
        # oracle's two-step `v * n_inv % q * ip % q`.
        psi = np.asarray(
            [ctx._psi_powers for ctx in contexts], dtype=np.int64
        )
        unpsi = np.asarray(
            [
                [ip * ctx._n_inv % ctx.q for ip in ctx._inv_psi_powers]
                for ctx in contexts
            ],
            dtype=np.int64,
        )
        self._psi = psi
        self._psi_shoup = shoup_precompute(psi, self._q_col)
        self._unpsi = unpsi
        self._unpsi_shoup = shoup_precompute(unpsi, self._q_col)

        # Per-stage twiddle matrices: stage s covers butterflies whose
        # twiddle index rides a run of length 2**s, so its table is
        # (L, 2**s) — copied verbatim from the oracle plans.
        self._fwd_tw: List[np.ndarray] = []
        self._fwd_tw_shoup: List[np.ndarray] = []
        self._inv_tw: List[np.ndarray] = []
        self._inv_tw_shoup: List[np.ndarray] = []
        stages = degree.bit_length() - 1
        for stage in range(stages):
            for tables, shoups, attr in (
                (self._fwd_tw, self._fwd_tw_shoup, "_stage_twiddles"),
                (self._inv_tw, self._inv_tw_shoup, "_inv_stage_twiddles"),
            ):
                tw = np.asarray(
                    [getattr(ctx, attr)[stage] for ctx in contexts],
                    dtype=np.int64,
                )
                tables.append(tw)
                shoups.append(shoup_precompute(tw, self._q_col))

        # Scratch: one uint64 buffer serving both the Shoup high products
        # and the min-reduction (their uses never overlap in time), four
        # quarter-sized int64 temporaries for the fused radix-4 stage, a
        # contiguous staging buffer the butterfly outputs accumulate in
        # before the single interleave pass, and the ping-pong partner.
        self._u64 = np.empty(limbs * degree, dtype=np.uint64)
        quarter = max(limbs * degree // 4, limbs)
        self._tmp = tuple(
            np.empty(quarter, dtype=np.int64) for _ in range(4)
        )
        self._stack = np.empty((4, quarter), dtype=np.int64)
        self._pong = np.empty((limbs, degree), dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_limbs(self) -> int:
        return len(self.moduli)

    def _as_matrix(self, rows: Rows) -> np.ndarray:
        x = np.asarray(rows, dtype=np.int64)
        if x.shape != (self.num_limbs, self.degree):
            raise ValueError(
                f"expected a {self.num_limbs}x{self.degree} residue matrix, "
                f"got shape {x.shape}"
            )
        # Canonicalise (numpy remainder matches Python % sign semantics),
        # mirroring the oracle's `c % q` on entry.  Always returns a fresh
        # array, so downstream stages may mutate it freely.
        return np.remainder(x, self._q_col)

    # -- lazy building blocks ------------------------------------------
    def _mul_lazy(
        self,
        x: np.ndarray,
        w: np.ndarray,
        w_shoup: np.ndarray,
        q: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """``x * w - q * floor(x * w' / 2**32)`` into ``out``; in ``[0, 2q)``.

        Valid for any non-negative ``x < 2**32`` — no correction pass.
        ``x`` must have a contiguous last axis (every stage view does) so
        the same-itemsize uint64 reinterpretation is copy-free.
        """
        hi = self._u64[: x.size].reshape(x.shape)
        np.multiply(x.view(np.uint64), w_shoup, out=hi)
        hi >>= SHOUP_SHIFT
        quot = hi.view(np.int64)
        quot *= q
        np.multiply(x, w, out=out)
        out -= quot
        return out

    def _fix(self, x: np.ndarray, bound_u: np.ndarray) -> None:
        """Branchless ``[0, 2*bound) -> [0, bound)`` in place.

        ``x = min(x, x - bound)`` in uint64: when ``x >= bound`` the
        subtraction is the reduced value; when ``x < bound`` it wraps
        past ``2**64`` and loses the min.  Two plain SIMD passes — no
        mask, no ``where=``, no data-dependent branch.
        """
        xu = x.view(np.uint64)
        t = self._u64[: x.size].reshape(x.shape)
        np.subtract(xu, bound_u, out=t)
        np.minimum(xu, t, out=xu)

    def _stages(
        self,
        a: np.ndarray,
        tables: List[np.ndarray],
        shoups: List[np.ndarray],
    ) -> np.ndarray:
        """The Stockham stage loop; input canonical, output in ``[0, 4q)``.

        ``a`` must be a fresh full-size C-contiguous matrix owned by the
        kernel: the loop ping-pongs between it and ``self._pong`` and
        transfers ownership of whichever buffer it does not return.
        """
        limbs, n = a.shape
        b = self._pong
        stages = n.bit_length() - 1
        q = self._q_cube
        two_q = self._two_q_cube
        two_q_u = self._two_q_cube_u
        m, run, s = n, 1, 0
        if stages % 2:
            # One radix-2 stage so the remaining count is even.  The lazy
            # product v is in [0, 2q) and the canonical input in [0, q),
            # so s/d land in [0, 4q) without a fix-up.  Outputs accumulate
            # in the contiguous staging buffer (v itself lives in slot 0)
            # and interleave in one streaming copy.
            half = m // 2
            size = limbs * half * run
            av = a.reshape(limbs, m, run)
            lo = av[:, :half, :]
            hi = av[:, half:, :]
            st = self._stack.reshape(-1)[: 2 * size].reshape(
                2, limbs, half, run
            )
            v = self._mul_lazy(
                hi, tables[0][:, np.newaxis, :],
                shoups[0][:, np.newaxis, :], q, st[0],
            )
            np.subtract(lo, v, out=st[1])
            st[1] += two_q
            np.add(lo, v, out=st[0])
            np.copyto(
                b.reshape(limbs, half, 2, run), st.transpose(1, 2, 0, 3)
            )
            a, b = b, a
            m, run, s = half, run * 2, 1
        while s < stages:
            # Fused radix-4 stage: levels s and s+1 in one pass.  Level-s
            # twiddles ride the current run; level-(s+1) twiddles split
            # into the halves serving the interleaved sum/difference
            # outputs of level s.
            t_a = tables[s][:, np.newaxis, :]
            t_a_sh = shoups[s][:, np.newaxis, :]
            t_b0 = tables[s + 1][:, np.newaxis, :run]
            t_b0_sh = shoups[s + 1][:, np.newaxis, :run]
            t_b1 = tables[s + 1][:, np.newaxis, run:]
            t_b1_sh = shoups[s + 1][:, np.newaxis, run:]
            quarter = m // 4
            size = limbs * quarter * run
            shape = (limbs, quarter, run)
            va0, va1, sa0, da0 = (
                t[:size].reshape(shape) for t in self._tmp
            )
            av = a.reshape(limbs, 4, quarter, run)
            x0, x1, x2, x3 = av[:, 0], av[:, 1], av[:, 2], av[:, 3]
            self._fix(x0, two_q_u)
            self._fix(x1, two_q_u)
            self._mul_lazy(x2, t_a, t_a_sh, q, va0)
            self._mul_lazy(x3, t_a, t_a_sh, q, va1)
            np.add(x0, va0, out=sa0)
            np.subtract(x0, va0, out=da0)
            da0 += two_q
            st = self._stack.reshape(-1)[: 4 * size].reshape(
                4, limbs, quarter, run
            )
            # da1 goes straight into staging slot 1, whose lazy multiply
            # below reads and rewrites it element-aligned (safe); sa1
            # overwrites x1, which is dead once da1 exists.
            da1 = np.subtract(x1, va1, out=st[1])
            da1 += two_q
            sa1 = np.add(x1, va1, out=x1)
            self._fix(sa0, two_q_u)
            self._fix(da0, two_q_u)
            vb0 = self._mul_lazy(sa1, t_b0, t_b0_sh, q, st[0])
            vb1 = self._mul_lazy(da1, t_b1, t_b1_sh, q, st[1])
            np.subtract(sa0, vb0, out=st[2])
            st[2] += two_q
            np.subtract(da0, vb1, out=st[3])
            st[3] += two_q
            np.add(sa0, vb0, out=st[0])
            np.add(da0, vb1, out=st[1])
            np.copyto(
                b.reshape(limbs, quarter, 2, 2, run),
                st.reshape(2, 2, limbs, quarter, run).transpose(2, 3, 0, 1, 4),
            )
            a, b = b, a
            m, run, s = quarter, run * 4, s + 2
        self._pong = b
        return a

    # ------------------------------------------------------------------
    def forward(self, rows: Rows) -> np.ndarray:
        """Batched forward negacyclic NTT of an ``(L, N)`` residue matrix."""
        obs.count("kernels.ntt.forward")
        x = self._as_matrix(rows)
        # psi twist, made canonical so the stage invariant holds on entry.
        twisted = np.empty_like(x)
        self._mul_lazy(x, self._psi, self._psi_shoup, self._q_col, twisted)
        self._fix(twisted, self._q_col_u)
        out = self._stages(twisted, self._fwd_tw, self._fwd_tw_shoup)
        self._fix(out, self._two_q_col_u)
        self._fix(out, self._q_col_u)
        return out

    def inverse(self, rows: Rows) -> np.ndarray:
        """Batched inverse negacyclic NTT of an ``(L, N)`` residue matrix."""
        obs.count("kernels.ntt.inverse")
        x = self._as_matrix(rows)
        lazy = self._stages(x, self._inv_tw, self._inv_tw_shoup)
        # The untwist multiply doubles as canonicalisation: the lazy Shoup
        # product of the [0, 4q) stage output is in [0, 2q), one
        # conditional subtract away from canonical.
        out = np.empty_like(lazy)
        self._mul_lazy(lazy, self._unpsi, self._unpsi_shoup, self._q_col, out)
        self._fix(out, self._q_col_u)
        return out

    def negacyclic_multiply(self, a: Rows, b: Rows) -> np.ndarray:
        """Limb-wise product of two coefficient-form ``(L, N)`` matrices."""
        obs.count("kernels.ntt.negacyclic_multiply")
        ea = self.forward(a)
        eb = self.forward(b)
        return self.inverse(mul_mod(ea, eb, self._q_col))

    # ------------------------------------------------------------------
    # List-of-rows adapters: the boundary the (list-backed) ring layer
    # crosses.  `.tolist()` restores plain Python ints.
    # ------------------------------------------------------------------
    def forward_rows(self, rows: Sequence[Sequence[int]]) -> List[List[int]]:
        result: List[List[int]] = self.forward(rows).tolist()
        return result

    def inverse_rows(self, rows: Sequence[Sequence[int]]) -> List[List[int]]:
        result: List[List[int]] = self.inverse(rows).tolist()
        return result
