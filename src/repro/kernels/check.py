"""Differential check harness for the vectorized NTT kernels.

The CI gate behind ``repro kernels``: bit-exact forward/inverse parity
of :class:`repro.kernels.ntt.BatchNttKernel` against the pure-Python
:class:`repro.numth.ntt.NttContext` oracle at chosen ring degrees, plus
an optional min-of-k wall-clock speedup gate.

Report contract (``repro.kernels/v1``): the gated content — per-degree
``parity`` and the overall ``passed`` verdict — is a pure function of
``(degrees, limbs, seed)``; inputs come off a string-seeded
``random.Random`` stream (SHA-512 seeded, immune to
``PYTHONHASHSEED``), so identical seeds replay identical residue
matrices on every platform.  The ``runtime`` block carries host
wall-clock and is volatile by contract, like every other report
family's timing fields; the module is allowlisted as a seeded-stream
channel in :mod:`repro.lint.program.scopes`.
"""

from __future__ import annotations

# lint: disable-file=ExactArithPurity -- this is the measurement harness
# around the kernels, not a kernel: it times wall-clock and computes
# speedup ratios; no residue arithmetic happens here.

import random
import time
from typing import Any, Dict, List, Optional, Sequence

#: Schema id stamped on (and required of) every kernels check report.
KERNELS_REPORT_SCHEMA = "repro.kernels/v1"


def sample_rows(
    degree: int, moduli: Sequence[int], seed: int
) -> List[List[int]]:
    """Seed-deterministic residue matrix with boundary values planted.

    Random sampling alone is unlikely to hit the exact top of the
    residue range, which is where the kernel's lazy-reduction headroom
    argument is tightest — so ``0`` and ``q - 1`` are planted in every
    limb.
    """
    rng = random.Random(f"repro.kernels:{seed}:{degree}")
    rows = [
        [rng.randrange(q) for _ in range(degree)] for q in moduli
    ]
    for row, q in zip(rows, moduli):
        row[0], row[1], row[-1] = 0, q - 1, q - 1
    return rows


def run_check(
    degrees: Sequence[int] = (4096,),
    limbs: int = 8,
    repeats: int = 3,
    min_speedup: Optional[float] = None,
    parity_only: bool = False,
    seed: int = 2012,
) -> Dict[str, Any]:
    """Run the parity (and optionally speedup) check; returns the report."""
    from repro.kernels.ntt import BatchNttKernel
    from repro.numth import NttContext, find_ntt_primes

    results: List[Dict[str, Any]] = []
    runtime: List[Dict[str, Any]] = []
    passed = True
    for degree in degrees:
        primes = find_ntt_primes(30, degree, limbs)
        contexts = [NttContext(degree, q) for q in primes]
        kernel = BatchNttKernel(degree, primes, contexts)
        rows = sample_rows(degree, primes, seed)

        fwd = kernel.forward(rows)
        parity = fwd.tolist() == [
            ctx.forward(row) for ctx, row in zip(contexts, rows)
        ] and kernel.inverse(fwd).tolist() == rows
        results.append({"degree": degree, "limbs": limbs, "parity": parity})
        passed &= parity

        if parity_only:
            continue
        oracle_s = _best_of(
            repeats,
            lambda: [
                ctx.inverse(ctx.forward(row))
                for ctx, row in zip(contexts, rows)
            ],
        )
        vector_s = _best_of(
            repeats, lambda: kernel.inverse(kernel.forward(rows))
        )
        speedup = oracle_s / vector_s
        runtime.append(
            {
                "degree": degree,
                "oracle_seconds": oracle_s,
                "vectorized_seconds": vector_s,
                "speedup": speedup,
            }
        )
        if min_speedup is not None and speedup < min_speedup:
            passed = False

    return {
        "schema": KERNELS_REPORT_SCHEMA,
        "seed": seed,
        "min_speedup": min_speedup,
        "results": results,
        "runtime": runtime,
        "passed": passed,
    }


def _best_of(repeats: int, run: Any) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def validate_kernels_report(report: Dict[str, Any]) -> None:
    """Structural validation of a ``repro.kernels/v1`` report."""
    if report.get("schema") != KERNELS_REPORT_SCHEMA:
        raise ValueError(
            f"expected schema {KERNELS_REPORT_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    if not isinstance(report.get("passed"), bool):
        raise ValueError("report is missing the boolean `passed` verdict")
    entries = report.get("results")
    if not isinstance(entries, list) or not entries:
        raise ValueError("report carries no parity results")
    for entry in entries:
        for key in ("degree", "limbs", "parity"):
            if key not in entry:
                raise ValueError(f"parity entry is missing {key!r}: {entry}")
    for entry in report.get("runtime", []):
        for key in ("degree", "oracle_seconds", "vectorized_seconds", "speedup"):
            if key not in entry:
                raise ValueError(f"runtime entry is missing {key!r}: {entry}")


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a check report."""
    timing = {entry["degree"]: entry for entry in report.get("runtime", [])}
    lines = []
    for entry in report["results"]:
        degree = entry["degree"]
        line = (
            f"N=2^{degree.bit_length() - 1} limbs={entry['limbs']} "
            f"parity={'ok' if entry['parity'] else 'FAIL'}"
        )
        timed = timing.get(degree)
        if timed:
            line += (
                f"  oracle {timed['oracle_seconds'] * 1e3:9.1f} ms"
                f"  vectorized {timed['vectorized_seconds'] * 1e3:7.1f} ms"
                f"  speedup {timed['speedup']:6.1f}x"
            )
        lines.append(line)
    lines.append("PASS" if report["passed"] else "FAIL")
    return "\n".join(lines)
