"""Vectorized int64 compute kernels for the functional RNS-CKKS layer.

This package is the *fast path* of the exact-arithmetic stack: batched
negacyclic NTTs and RNS basis conversion on contiguous int64 numpy
arrays, for NTT-friendly limb moduli below ``2**30``.  The pure-Python
object-integer implementations in :mod:`repro.numth` and
:mod:`repro.ring` remain the *differential oracle*: the kernels are
required to be bit-exact against them (the same contract
:mod:`repro.memsim` holds against :mod:`repro.perf`), and the ring layer
falls back to the oracle whenever a modulus exceeds the bound or the
fast path is disabled.

Disabling (for differential tests and A/B timing):

>>> from repro import kernels
>>> with kernels.oracle_only():
...     ...  # every NTT/conversion runs on the pure-Python oracle

The module-level switch is process-global, mirroring how
:mod:`repro.obs.state` scopes its registries.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.kernels.conversion import new_limbs_matrix, sub_scale_mod
from repro.kernels.ntt import BatchNttKernel
from repro.kernels.reduce import (
    FAST_MODULUS_BOUND,
    SHOUP_SHIFT,
    add_mod,
    moduli_fit,
    mul_mod,
    mul_mod_shoup,
    shoup_precompute,
    sub_mod,
)

__all__ = [
    "BatchNttKernel",
    "FAST_MODULUS_BOUND",
    "SHOUP_SHIFT",
    "add_mod",
    "enabled",
    "moduli_fit",
    "mul_mod",
    "mul_mod_shoup",
    "new_limbs_matrix",
    "oracle_only",
    "set_enabled",
    "shoup_precompute",
    "sub_mod",
    "sub_scale_mod",
]

#: ``REPRO_KERNELS=off`` (or ``0``/``false``) starts the process on the
#: pure-Python oracle everywhere — the escape hatch for debugging and for
#: measuring the fast path against its reference.
_enabled: bool = os.environ.get("REPRO_KERNELS", "on").lower() not in (
    "0",
    "off",
    "false",
)


def enabled() -> bool:
    """Whether the int64 fast path is currently selected."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Switch the fast path on/off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def oracle_only() -> Iterator[None]:
    """Context manager forcing the pure-Python oracle within its scope."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
