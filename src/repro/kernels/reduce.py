"""Vectorized modular reduction on int64 numpy arrays.

Every kernel in this package works on residues in the canonical range
``[0, q)`` for NTT-friendly primes ``q < 2**30``.  That bound is what
makes int64 arithmetic exact end to end:

* a product of two residues is ``< 2**60`` and fits a signed 64-bit word;
* a Shoup quotient ``w' = floor(w * 2**32 / q)`` is ``< 2**32``, so the
  high-half product ``x * w'`` is ``< 2**62`` and fits an unsigned word.

Multiplication by a *precomputed* constant (twiddle factors, ``psi``
powers, ``Q~_i`` factors) uses Shoup's reduction — the vectorized
single-word equivalent of Barrett reduction with the quotient
precomputed per constant — so the butterfly inner loops contain no
division at transform time.  Products of two *data* vectors (pointwise
products of evaluations) use a plain int64 multiply followed by
``np.remainder``, which is exact below ``2**63``.

Everything here returns canonical residues, which is what keeps the
fast path bit-exact against the pure-Python oracle
(:class:`repro.numth.ntt.NttContext`): both sides only ever materialise
values in ``[0, q)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "FAST_MODULUS_BOUND",
    "SHOUP_SHIFT",
    "moduli_fit",
    "shoup_precompute",
    "mul_mod_shoup",
    "mul_mod",
    "add_mod",
    "sub_mod",
]

#: Largest limb modulus (exclusive) the int64 kernels accept.  Products of
#: residues below this bound stay under ``2**60`` and never overflow.
FAST_MODULUS_BOUND = 1 << 30

#: The Shoup/Barrett quotient scale ``beta = 2**SHOUP_SHIFT``.
SHOUP_SHIFT = 32


def moduli_fit(moduli: Sequence[int]) -> bool:
    """True when every modulus is inside the int64 fast-path bound."""
    return all(1 < int(q) < FAST_MODULUS_BOUND for q in moduli)


def shoup_precompute(w: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Per-constant Shoup quotients ``floor(w * 2**32 / q)`` as uint64.

    ``w`` holds constants in ``[0, q)``; ``q`` broadcasts against it.
    ``w << 32`` is below ``2**62`` for ``w < 2**30``, so the shifted
    dividend itself still fits a signed 64-bit word.
    """
    return ((w.astype(np.int64) << SHOUP_SHIFT) // q).astype(np.uint64)


def mul_mod_shoup(
    x: np.ndarray, w: np.ndarray, w_shoup: np.ndarray, q: np.ndarray
) -> np.ndarray:
    """``x * w mod q`` via Shoup reduction; all inputs/outputs in ``[0, q)``.

    The estimated quotient ``hi = floor(x * w' / 2**32)`` is off by at
    most one from ``floor(x * w / q)``, so ``x*w - hi*q`` lands in
    ``[0, 2q)`` and one conditional subtraction restores the canonical
    range — no division anywhere.
    """
    hi = x.astype(np.uint64)
    hi *= w_shoup
    hi >>= SHOUP_SHIFT
    quot = hi.view(np.int64)  # < 2**32, so the reinterpretation is exact
    quot *= q
    r = x * w
    r -= quot
    np.subtract(r, q, out=r, where=r >= q)
    return r


def mul_mod(a: np.ndarray, b: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Pointwise ``a * b mod q`` for two data vectors (no precomputation)."""
    return np.remainder(a * b, q)


def add_mod(a: np.ndarray, b: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``a + b mod q`` for canonical residues, via conditional subtraction."""
    s = a + b
    return np.where(s >= q, s - q, s)


def sub_mod(a: np.ndarray, b: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``a - b mod q`` for canonical residues, via conditional addition."""
    d = a - b
    return np.where(d < 0, d + q, d)
