"""Vectorized slot-wise RNS basis conversion (the fast ``NewLimb`` path).

The pure-Python :func:`repro.ring.conversion.new_limb` accumulates
``sum_i [[x]_{q_i} * Q~_i]_{q_i} * Q*_i`` in unbounded Python integers
and reduces once at the end.  The int64 kernel instead reduces the
accumulator after every source limb — identical modulo the target, and
necessary because ``L`` unreduced ``2**60``-scale terms would overflow a
signed 64-bit word.  Like the NTT kernel, every intermediate value is a
canonical residue, which keeps the fast path bit-exact against the
oracle.

All precomputed constants (``Q~_i`` inverses, ``Q*_i`` residues,
``P^{-1}`` factors) are derived by the caller with exact Python-integer
arithmetic (:class:`repro.ring.RnsBasis`); this module only vectorizes
the per-coefficient work.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.reduce import mul_mod

__all__ = ["new_limbs_matrix", "sub_scale_mod"]


def new_limbs_matrix(
    coeff_rows: Sequence[Sequence[int]],
    moduli: Sequence[int],
    q_hat_inverses: Sequence[int],
    q_stars: Sequence[Sequence[int]],
    targets: Sequence[int],
) -> List[List[int]]:
    """Fast basis conversion of ``L`` source limbs into ``T`` new limbs.

    Implements Eq. (1) of the paper for every target modulus at once:
    ``out[t][j] = sum_i [[x_j]_{q_i} * Q~_i]_{q_i} * [Q*_i]_{p_t}``
    modulo ``p_t``.

    Args:
        coeff_rows: ``(L, N)`` residue rows in coefficient form.
        moduli: the ``L`` source limb moduli.
        q_hat_inverses: ``(Q/q_i)^{-1} mod q_i`` per source limb.
        q_stars: ``(T, L)`` matrix of ``(Q/q_i) mod p_t`` residues.
        targets: the ``T`` target moduli ``p_t``.

    Returns:
        ``(T, N)`` rows of canonical residues, as plain Python ints.
    """
    x = np.asarray(coeff_rows, dtype=np.int64)
    q_col = np.asarray(moduli, dtype=np.int64)[:, np.newaxis]
    hat_inv = np.asarray(q_hat_inverses, dtype=np.int64)[:, np.newaxis]
    stars = np.asarray(q_stars, dtype=np.int64)
    t_col = np.asarray(targets, dtype=np.int64)[:, np.newaxis]

    # [[x]_{q_i} * Q~_i]_{q_i}: still per-source-limb residues.
    scaled = mul_mod(x, hat_inv, q_col)  # (L, N)

    out = np.zeros((len(targets), x.shape[1]), dtype=np.int64)
    for i in range(x.shape[0]):
        term = mul_mod(scaled[i][np.newaxis, :], stars[:, i][:, np.newaxis], t_col)
        out += term  # both canonical: the sum stays below 2 * p_t < 2**31
        np.subtract(out, t_col, out=out, where=out >= t_col)
    return out.tolist()


def sub_scale_mod(
    minuend_rows: Sequence[Sequence[int]],
    subtrahend_rows: Sequence[Sequence[int]],
    scales: Sequence[int],
    moduli: Sequence[int],
) -> List[List[int]]:
    """Fused ModDown tail: ``(a - h) * P^{-1} mod q`` per limb, vectorized.

    ``a - h`` lies in ``(-q, q)`` and the per-limb scale is below ``q``,
    so the product magnitude stays under ``2**60``; ``np.remainder``
    matches Python ``%`` on negative operands, keeping the result equal
    to the oracle's ``(a - h) * p_inv % q``.
    """
    a = np.asarray(minuend_rows, dtype=np.int64)
    h = np.asarray(subtrahend_rows, dtype=np.int64)
    scale_col = np.asarray(scales, dtype=np.int64)[:, np.newaxis]
    q_col = np.asarray(moduli, dtype=np.int64)[:, np.newaxis]
    result: List[List[int]] = np.remainder((a - h) * scale_col, q_col).tolist()
    return result
