"""Regenerate Tables 4, 5 and 6 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams
from repro.perf import BootstrapModel, MADConfig, PrimitiveCosts
from repro.hardware import PRIOR_DESIGNS, HardwareDesign, mad_counterpart
from repro.hardware.runtime import estimate_runtime
from repro.search import bootstrap_throughput, find_optimal_parameters


# ----------------------------------------------------------------------
# Table 4: ops / DRAM / arithmetic intensity per primitive
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table4Row:
    operation: str
    giga_ops: float
    dram_gb: float
    arithmetic_intensity: float


def generate_table4(
    params: CkksParams = BASELINE_JUNG,
    config: MADConfig = MADConfig.none(),
    limbs: Optional[int] = None,
) -> List[Table4Row]:
    """Table 4 at ``limbs`` limbs (defaults to the full chain)."""
    limbs = params.max_limbs if limbs is None else limbs
    costs = PrimitiveCosts(params, config)
    entries = [
        ("PtAdd", costs.pt_add(limbs)),
        ("Add", costs.add(limbs)),
        ("PtMult", costs.pt_mult(limbs)),
        ("Decomp", costs.decomp(limbs)),
        ("ModUp", costs.mod_up(limbs, min(params.alpha, limbs))),
        ("KSKInnerProd", costs.ksk_inner_product(limbs)),
        ("ModDown", costs.mod_down(limbs)),
        ("Mult", costs.mult(limbs)),
        ("Automorph", costs.automorph(limbs)),
        ("Rotate", costs.rotate(limbs)),
        ("Conjugate", costs.conjugate(limbs)),
        ("Bootstrap", BootstrapModel(params, config).total_cost()),
    ]
    return [
        Table4Row(
            operation=name,
            giga_ops=cost.giga_ops(),
            dram_gb=cost.gigabytes(),
            arithmetic_intensity=cost.arithmetic_intensity,
        )
        for name, cost in entries
    ]


def render_table4(rows: List[Table4Row]) -> str:
    lines = [
        f"{'Operation':14} {'Giga-ops':>10} {'DRAM (GB)':>10} {'AI (op/B)':>10}",
        "-" * 48,
    ]
    for row in rows:
        lines.append(
            f"{row.operation:14} {row.giga_ops:10.4f} {row.dram_gb:10.4f} "
            f"{row.arithmetic_intensity:10.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 5: baseline vs memory-aware optimal parameters
# ----------------------------------------------------------------------
def generate_table5(
    design: Optional[HardwareDesign] = None,
    candidates=None,
    jobs: int = 1,
) -> dict:
    """Baseline row plus the search-found optimum for ``design``.

    Returns a dict with 'baseline', 'paper_optimal' and 'searched' entries;
    'searched' is the top result of the brute-force throughput search on
    the given design (default: the 32 MB GPU-matched MAD design point).
    ``jobs`` fans the underlying sweep over worker processes; the searched
    optimum is identical for any worker count.
    """
    if design is None:
        design = mad_counterpart(PRIOR_DESIGNS["GPU [Jung et al.]"])
    searched = find_optimal_parameters(
        design, candidates=candidates, top=1, jobs=jobs
    )[0]
    return {
        "baseline": BASELINE_JUNG,
        "paper_optimal": MAD_OPTIMAL,
        "searched": searched,
    }


def render_table5(table5: dict) -> str:
    def row(label: str, p: CkksParams) -> str:
        return (
            f"{label:16} n=2^{p.log_n - 1}  q={p.log_q}  L={p.max_limbs}  "
            f"dnum={p.dnum}  fftIter={p.fft_iter}"
        )

    searched = table5["searched"]
    return "\n".join(
        [
            row("Baseline [20]", table5["baseline"]),
            row("Paper optimal", table5["paper_optimal"]),
            row("Search optimal", searched.params)
            + f"  (throughput {searched.throughput:.0f})",
        ]
    )


# ----------------------------------------------------------------------
# Table 6: bootstrapping comparison across designs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table6Row:
    design: str
    multipliers: int
    on_chip_mb: float
    bandwidth_gb_s: float
    slots: int
    log_q1: int
    runtime_ms: float
    throughput: float
    bound: Optional[str]  # None for reported (original-paper) rows
    source: str  # "reported" or "modeled"


def _design_row(design: HardwareDesign) -> Table6Row:
    """Original-design row using the runtime its paper reports."""
    runtime_s = design.reported_bootstrap_ms / 1e3
    return Table6Row(
        design=design.name,
        multipliers=design.modular_multipliers,
        on_chip_mb=design.on_chip_mb,
        bandwidth_gb_s=design.bandwidth_gb_s,
        slots=design.slots,
        log_q1=design.params.log_q1,
        runtime_ms=design.reported_bootstrap_ms,
        throughput=bootstrap_throughput(
            design.slots,
            design.params.log_q1,
            design.params.bit_precision,
            runtime_s,
        ),
        bound=None,
        source="reported",
    )


def _mad_row(design: HardwareDesign) -> Table6Row:
    """MAD counterpart row from our roofline model."""
    mad = mad_counterpart(design)
    cost = BootstrapModel(mad.params, MADConfig.all()).total_cost()
    runtime = estimate_runtime(cost, mad)
    return Table6Row(
        design=mad.name,
        multipliers=mad.modular_multipliers,
        on_chip_mb=mad.on_chip_mb,
        bandwidth_gb_s=mad.bandwidth_gb_s,
        slots=mad.slots,
        log_q1=mad.params.log_q1,
        runtime_ms=runtime.milliseconds,
        throughput=bootstrap_throughput(
            mad.slots,
            mad.params.log_q1,
            mad.params.bit_precision,
            runtime.seconds,
        ),
        bound=runtime.bound,
        source="modeled",
    )


def generate_table6() -> List[Table6Row]:
    """Interleaved original/MAD rows, exactly as in Table 6."""
    rows: List[Table6Row] = []
    for design in PRIOR_DESIGNS.values():
        rows.append(_design_row(design))
        rows.append(_mad_row(design))
    return rows


def render_table6(rows: List[Table6Row]) -> str:
    lines = [
        f"{'Design':22} {'Mults':>6} {'MB':>5} {'GB/s':>6} {'log Q1':>7} "
        f"{'ms':>8} {'Thpt':>8}  src",
        "-" * 78,
    ]
    for row in rows:
        bound = f" ({row.bound})" if row.bound else ""
        lines.append(
            f"{row.design:22} {row.multipliers:6d} {row.on_chip_mb:5.0f} "
            f"{row.bandwidth_gb_s:6.0f} {row.log_q1:7d} {row.runtime_ms:8.2f} "
            f"{row.throughput:8.1f}  {row.source}{bound}"
        )
    return "\n".join(lines)
