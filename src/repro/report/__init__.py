"""Regeneration of the paper's tables and figures from the model."""

from repro.report.tables import (
    Table4Row,
    Table6Row,
    generate_table4,
    generate_table5,
    generate_table6,
    render_table4,
    render_table5,
    render_table6,
)
from repro.report.figures import (
    Fig2Point,
    Fig3Point,
    Fig6Bar,
    generate_fig1,
    generate_fig2,
    generate_fig3,
    generate_fig6_lr,
    generate_fig6_resnet,
    render_series,
)

__all__ = [
    "Table4Row",
    "Table6Row",
    "generate_table4",
    "generate_table5",
    "generate_table6",
    "render_table4",
    "render_table5",
    "render_table6",
    "Fig2Point",
    "Fig3Point",
    "Fig6Bar",
    "generate_fig1",
    "generate_fig2",
    "generate_fig3",
    "generate_fig6_lr",
    "generate_fig6_resnet",
    "render_series",
]
