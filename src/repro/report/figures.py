"""Regenerate the data series behind Figures 1, 2, 3 and 6."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams
from repro.perf import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    BootstrapModel,
    CacheModel,
    MADConfig,
    PrimitiveCosts,
)
from repro.hardware import HardwareDesign, mad_counterpart
from repro.hardware.runtime import estimate_runtime
from repro.apps import ApplicationWorkload, workload_cost


# ----------------------------------------------------------------------
# Figure 1: Rotate limb transfers, naive vs O(1) caching
# ----------------------------------------------------------------------
def generate_fig1(params: CkksParams = BASELINE_JUNG) -> Dict[str, float]:
    """Limb reads+writes of one Rotate: naive vs O(1)-limb caching.

    The paper's example: 35-limb ciphertext, naive 105+105 transfers on the
    fused prefix, O(1) caching 35+35.
    """
    limbs = params.max_limbs
    limb = params.limb_bytes
    naive = PrimitiveCosts(params, MADConfig.none()).rotate(limbs)
    cached = PrimitiveCosts(params, MADConfig(cache_o1=True)).rotate(limbs)
    return {
        "limbs": limbs,
        "naive_reads": naive.traffic.ct_read / limb,
        "naive_writes": naive.traffic.ct_write / limb,
        "cached_reads": cached.traffic.ct_read / limb,
        "cached_writes": cached.traffic.ct_write / limb,
        "saved_mb": (naive.traffic.total - cached.traffic.total) / 1e6,
    }


# ----------------------------------------------------------------------
# Figure 2: cumulative caching optimizations on bootstrapping DRAM
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Point:
    label: str
    dram_gb: float
    ct_read_gb: float
    ct_write_gb: float
    key_read_gb: float
    reduction_vs_baseline: float


def generate_fig2(params: CkksParams = BASELINE_JUNG) -> List[Fig2Point]:
    points: List[Fig2Point] = []
    baseline_total: Optional[float] = None
    for label, config in CACHING_LADDER:
        traffic = BootstrapModel(params, config).total_cost().traffic
        if baseline_total is None:
            baseline_total = traffic.total
        points.append(
            Fig2Point(
                label=label,
                dram_gb=traffic.total / 1e9,
                ct_read_gb=traffic.ct_read / 1e9,
                ct_write_gb=traffic.ct_write / 1e9,
                key_read_gb=traffic.key_read / 1e9,
                reduction_vs_baseline=1 - traffic.total / baseline_total,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 3: cumulative algorithmic optimizations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Point:
    label: str
    giga_ops: float
    ct_dram_gb: float
    key_read_gb: float
    arithmetic_intensity: float


def generate_fig3(params: CkksParams = MAD_OPTIMAL) -> List[Fig3Point]:
    """The paper evaluates Fig. 3 at the best-case (Table 5) parameters."""
    points = []
    for label, config in ALGORITHMIC_LADDER:
        cost = BootstrapModel(params, config).total_cost()
        points.append(
            Fig3Point(
                label=label,
                giga_ops=cost.giga_ops(),
                ct_dram_gb=(cost.traffic.ct_read + cost.traffic.ct_write)
                / 1e9,
                key_read_gb=cost.traffic.key_read / 1e9,
                arithmetic_intensity=cost.arithmetic_intensity,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 6: ML applications across designs and cache sizes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Bar:
    label: str
    seconds: float
    bound: str
    speedup_vs_original: float


def _unpacked_penalty(design: HardwareDesign) -> int:
    """Extra bootstraps a design needs when it cannot pack all slots.

    F1's unpacked bootstrapping refreshes a single element per invocation,
    so refreshing a fully packed working set costs ``slots`` bootstraps —
    the reason the paper calls its parameter regime unsuited to SIMD
    bootstrapping and ML workloads.
    """
    if design.bootstrap_slots is None:
        return 1
    return max(1, design.params.slots // design.bootstrap_slots)


def _original_bar(
    design: HardwareDesign, workload_for: "callable"
) -> Fig6Bar:
    """The original-design bar every MAD bar's speedup is measured against.

    The original design runs its own parameters with whatever *caching* its
    on-chip memory naturally supports ("we carefully modeled each one of
    the original designs in SimFHE") but none of the MAD algorithmic
    techniques.
    """
    import dataclasses

    original_workload = workload_for(design.params)
    penalty = _unpacked_penalty(design)
    if penalty > 1:
        original_workload = dataclasses.replace(
            original_workload,
            bootstraps=original_workload.bootstraps * penalty,
        )
    original_config = MADConfig(
        cache_o1=design.cache.fits_o1(design.params),
        cache_beta=design.cache.fits_beta(design.params),
        cache_alpha=design.cache.fits_alpha(design.params),
        limb_reorder=design.cache.fits_limb_reorder(design.params),
    )
    original_cost = workload_cost(
        original_workload,
        design.params,
        original_config,
        design.cache,
    ).total
    original_runtime = estimate_runtime(original_cost, design)
    return Fig6Bar(
        label=f"{design.name}-{design.on_chip_mb:g}",
        seconds=original_runtime.seconds,
        bound=original_runtime.bound,
        speedup_vs_original=1.0,
    )


def generate_fig6_series(
    design: HardwareDesign,
    workload_for: "callable",
    cache_sizes_mb: Sequence[float],
) -> List[Fig6Bar]:
    """Original design vs design+MAD at several on-chip memory sizes.

    ``workload_for`` maps a parameter set to an
    :class:`~repro.apps.ApplicationWorkload` (the workload depends on the
    bootstrap cadence, which depends on the parameters).

    This is the serial reference implementation (and the only entry point
    accepting an arbitrary workload callable, which cannot cross a
    process boundary); :func:`generate_fig6_grid` runs the same
    evaluation through :mod:`repro.sweep` with bit-identical bars.
    """
    bars = [_original_bar(design, workload_for)]
    original_runtime_seconds = bars[0].seconds
    for mb in cache_sizes_mb:
        mad = mad_counterpart(design, on_chip_mb=mb)
        cache = CacheModel.from_mb(mb)
        cost = workload_cost(
            workload_for(mad.params), mad.params, MADConfig.all(), cache
        ).total
        runtime = estimate_runtime(cost, mad)
        bars.append(
            Fig6Bar(
                label=mad.name,
                seconds=runtime.seconds,
                bound=runtime.bound,
                speedup_vs_original=original_runtime_seconds / runtime.seconds,
            )
        )
    return bars


def _fig6_workload_factory(workload: str, iterations: int) -> "callable":
    from repro.apps import helr_training, resnet20_inference

    if workload == "lr":
        return lambda params: helr_training(params, iterations=iterations)
    if workload == "resnet":
        return resnet20_inference
    raise ValueError(f"unknown fig6 workload {workload!r}")


def fig6_original_seconds(
    workload: str,
    designs: Optional[Sequence[HardwareDesign]] = None,
    iterations: int = 30,
) -> tuple:
    """(designs, {design name: original runtime seconds}) for a workload.

    Serial pre-computation for the Fig. 6 sweep: one cheap evaluation per
    design, shipped to workers as context so every MAD bar's speedup is
    measured against the same original bar.
    """
    from repro.hardware import PRIOR_DESIGNS

    if designs is None:
        designs = list(PRIOR_DESIGNS.values())
    factory = _fig6_workload_factory(workload, iterations)
    return list(designs), {
        design.name: _original_bar(design, factory).seconds for design in designs
    }


def generate_fig6_grid(
    workload: str,
    designs: Optional[Sequence[HardwareDesign]] = None,
    cache_sizes_mb: Sequence[float] = (32.0, 256.0),
    iterations: int = 30,
    jobs: int = 1,
) -> Dict[str, List[Fig6Bar]]:
    """The Fig. 6 cache-size × design grid through the sweep engine.

    Returns ``{design name: [original bar, mad bar per cache size]}`` in
    design order — per design, exactly the bars
    :func:`generate_fig6_series` produces serially.
    """
    from repro.sweep import SweepAxis, SweepSpec, run_sweep

    designs, original_seconds = fig6_original_seconds(
        workload, designs, iterations
    )
    factory = _fig6_workload_factory(workload, iterations)
    spec = SweepSpec(
        name=f"fig6-{workload}",
        evaluator="fig6.bar",
        axes=(
            SweepAxis("design", tuple(designs)),
            SweepAxis("cache_mb", tuple(float(mb) for mb in cache_sizes_mb)),
        ),
        context={
            "workload": workload,
            "iterations": iterations,
            "original_seconds": original_seconds,
        },
    )
    outcome = run_sweep(spec, jobs=jobs)
    per_design = len(spec.axes[1].values)
    grid: Dict[str, List[Fig6Bar]] = {}
    for position, design in enumerate(designs):
        bars = [_original_bar(design, factory)]
        bars.extend(
            outcome.values[position * per_design : (position + 1) * per_design]
        )
        grid[design.name] = bars
    return grid


def generate_fig6_lr(
    design: HardwareDesign,
    cache_sizes_mb: Sequence[float],
    iterations: int = 30,
    jobs: int = 1,
) -> List[Fig6Bar]:
    grid = generate_fig6_grid(
        "lr", [design], cache_sizes_mb, iterations=iterations, jobs=jobs
    )
    return grid[design.name]


def generate_fig6_resnet(
    design: HardwareDesign,
    cache_sizes_mb: Sequence[float],
    jobs: int = 1,
) -> List[Fig6Bar]:
    grid = generate_fig6_grid("resnet", [design], cache_sizes_mb, jobs=jobs)
    return grid[design.name]


# ----------------------------------------------------------------------
def render_series(title: str, points) -> str:
    """Generic text rendering of a figure series."""
    lines = [title, "-" * len(title)]
    for point in points:
        lines.append(f"  {point}")
    return "\n".join(lines)
