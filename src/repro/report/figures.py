"""Regenerate the data series behind Figures 1, 2, 3 and 6."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams
from repro.perf import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    BootstrapModel,
    CacheModel,
    MADConfig,
    PrimitiveCosts,
)
from repro.hardware import HardwareDesign, mad_counterpart
from repro.hardware.runtime import estimate_runtime
from repro.apps import ApplicationWorkload, workload_cost


# ----------------------------------------------------------------------
# Figure 1: Rotate limb transfers, naive vs O(1) caching
# ----------------------------------------------------------------------
def generate_fig1(params: CkksParams = BASELINE_JUNG) -> Dict[str, float]:
    """Limb reads+writes of one Rotate: naive vs O(1)-limb caching.

    The paper's example: 35-limb ciphertext, naive 105+105 transfers on the
    fused prefix, O(1) caching 35+35.
    """
    limbs = params.max_limbs
    limb = params.limb_bytes
    naive = PrimitiveCosts(params, MADConfig.none()).rotate(limbs)
    cached = PrimitiveCosts(params, MADConfig(cache_o1=True)).rotate(limbs)
    return {
        "limbs": limbs,
        "naive_reads": naive.traffic.ct_read / limb,
        "naive_writes": naive.traffic.ct_write / limb,
        "cached_reads": cached.traffic.ct_read / limb,
        "cached_writes": cached.traffic.ct_write / limb,
        "saved_mb": (naive.traffic.total - cached.traffic.total) / 1e6,
    }


# ----------------------------------------------------------------------
# Figure 2: cumulative caching optimizations on bootstrapping DRAM
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Point:
    label: str
    dram_gb: float
    ct_read_gb: float
    ct_write_gb: float
    key_read_gb: float
    reduction_vs_baseline: float


def generate_fig2(params: CkksParams = BASELINE_JUNG) -> List[Fig2Point]:
    points: List[Fig2Point] = []
    baseline_total: Optional[float] = None
    for label, config in CACHING_LADDER:
        traffic = BootstrapModel(params, config).total_cost().traffic
        if baseline_total is None:
            baseline_total = traffic.total
        points.append(
            Fig2Point(
                label=label,
                dram_gb=traffic.total / 1e9,
                ct_read_gb=traffic.ct_read / 1e9,
                ct_write_gb=traffic.ct_write / 1e9,
                key_read_gb=traffic.key_read / 1e9,
                reduction_vs_baseline=1 - traffic.total / baseline_total,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 3: cumulative algorithmic optimizations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Point:
    label: str
    giga_ops: float
    ct_dram_gb: float
    key_read_gb: float
    arithmetic_intensity: float


def generate_fig3(params: CkksParams = MAD_OPTIMAL) -> List[Fig3Point]:
    """The paper evaluates Fig. 3 at the best-case (Table 5) parameters."""
    points = []
    for label, config in ALGORITHMIC_LADDER:
        cost = BootstrapModel(params, config).total_cost()
        points.append(
            Fig3Point(
                label=label,
                giga_ops=cost.giga_ops(),
                ct_dram_gb=(cost.traffic.ct_read + cost.traffic.ct_write)
                / 1e9,
                key_read_gb=cost.traffic.key_read / 1e9,
                arithmetic_intensity=cost.arithmetic_intensity,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 6: ML applications across designs and cache sizes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Bar:
    label: str
    seconds: float
    bound: str
    speedup_vs_original: float


def _unpacked_penalty(design: HardwareDesign) -> int:
    """Extra bootstraps a design needs when it cannot pack all slots.

    F1's unpacked bootstrapping refreshes a single element per invocation,
    so refreshing a fully packed working set costs ``slots`` bootstraps —
    the reason the paper calls its parameter regime unsuited to SIMD
    bootstrapping and ML workloads.
    """
    if design.bootstrap_slots is None:
        return 1
    return max(1, design.params.slots // design.bootstrap_slots)


def generate_fig6_series(
    design: HardwareDesign,
    workload_for: "callable",
    cache_sizes_mb: Sequence[float],
) -> List[Fig6Bar]:
    """Original design vs design+MAD at several on-chip memory sizes.

    ``workload_for`` maps a parameter set to an
    :class:`~repro.apps.ApplicationWorkload` (the workload depends on the
    bootstrap cadence, which depends on the parameters).

    The original design runs its own parameters with whatever *caching* its
    on-chip memory naturally supports ("we carefully modeled each one of
    the original designs in SimFHE") but none of the MAD algorithmic
    techniques; the MAD bars add every technique at the given memory size.
    """
    import dataclasses

    original_workload = workload_for(design.params)
    penalty = _unpacked_penalty(design)
    if penalty > 1:
        original_workload = dataclasses.replace(
            original_workload,
            bootstraps=original_workload.bootstraps * penalty,
        )
    original_config = MADConfig(
        cache_o1=design.cache.fits_o1(design.params),
        cache_beta=design.cache.fits_beta(design.params),
        cache_alpha=design.cache.fits_alpha(design.params),
        limb_reorder=design.cache.fits_limb_reorder(design.params),
    )
    original_cost = workload_cost(
        original_workload,
        design.params,
        original_config,
        design.cache,
    ).total
    original_runtime = estimate_runtime(original_cost, design)
    bars = [
        Fig6Bar(
            label=f"{design.name}-{design.on_chip_mb:g}",
            seconds=original_runtime.seconds,
            bound=original_runtime.bound,
            speedup_vs_original=1.0,
        )
    ]
    for mb in cache_sizes_mb:
        mad = mad_counterpart(design, on_chip_mb=mb)
        cache = CacheModel.from_mb(mb)
        cost = workload_cost(
            workload_for(mad.params), mad.params, MADConfig.all(), cache
        ).total
        runtime = estimate_runtime(cost, mad)
        bars.append(
            Fig6Bar(
                label=mad.name,
                seconds=runtime.seconds,
                bound=runtime.bound,
                speedup_vs_original=original_runtime.seconds / runtime.seconds,
            )
        )
    return bars


def generate_fig6_lr(
    design: HardwareDesign,
    cache_sizes_mb: Sequence[float],
    iterations: int = 30,
) -> List[Fig6Bar]:
    from repro.apps import helr_training

    return generate_fig6_series(
        design,
        lambda params: helr_training(params, iterations=iterations),
        cache_sizes_mb,
    )


def generate_fig6_resnet(
    design: HardwareDesign, cache_sizes_mb: Sequence[float]
) -> List[Fig6Bar]:
    from repro.apps import resnet20_inference

    return generate_fig6_series(design, resnet20_inference, cache_sizes_mb)


# ----------------------------------------------------------------------
def render_series(title: str, points) -> str:
    """Generic text rendering of a figure series."""
    lines = [title, "-" * len(title)]
    for point in points:
        lines.append(f"  {point}")
    return "\n".join(lines)
