"""MAD optimization configuration flags.

Caching optimizations (Section 3.1) — reduce DRAM traffic only:

* ``cache_o1``      — fuse chains of limb-wise sub-operations on a resident
  limb (Fig. 1: Rotate drops from 105+105 to 35+35 limb transfers).
* ``cache_beta``    — keep one limb of each raised digit resident so ModUp
  outputs are read once per PtMatVecMult instead of once per rotation.
* ``cache_alpha``   — keep a full digit resident so basis-change outputs are
  generated, NTT'd and written without a slot-wise round trip.
* ``limb_reorder``  — compute the to-be-dropped limbs first so the
  key-switch inner-product output streams straight into ModDown.

Algorithmic optimizations (Section 3.2) — reduce ops and traffic:

* ``mod_down_merge`` — Fig. 4: single ModDown dividing by ``P * q_l`` in
  Mult (saves ``l`` per-coefficient products and a full NTT pass).
* ``mod_down_hoist`` — Fig. 5: one ModUp + one ModDown pair per
  PtMatVecMult regardless of matrix dimension (trades +25% key reads via a
  larger baby step).
* ``key_compression`` — regenerate the uniform half of each switching key
  from a PRNG seed: halves key-read traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.params import CkksParams
from repro.perf.cache import CacheModel


@dataclass(frozen=True)
class MADConfig:
    """Which MAD techniques are enabled."""

    cache_o1: bool = False
    cache_beta: bool = False
    cache_alpha: bool = False
    limb_reorder: bool = False
    mod_down_merge: bool = False
    mod_down_hoist: bool = False
    key_compression: bool = False

    def __post_init__(self) -> None:
        if self.limb_reorder and not self.cache_alpha:
            raise ValueError(
                "limb_reorder requires cache_alpha (it re-orders the "
                "in-cache basis-change computation)"
            )

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "MADConfig":
        """The baseline: small cache, no MAD techniques."""
        return cls()

    @classmethod
    def caching_only(cls) -> "MADConfig":
        """All Section 3.1 optimizations, no algorithmic changes."""
        return cls(
            cache_o1=True, cache_beta=True, cache_alpha=True, limb_reorder=True
        )

    @classmethod
    def all(cls) -> "MADConfig":
        """Every MAD technique (the paper's final configuration)."""
        return cls(
            cache_o1=True,
            cache_beta=True,
            cache_alpha=True,
            limb_reorder=True,
            mod_down_merge=True,
            mod_down_hoist=True,
            key_compression=True,
        )

    @classmethod
    def for_cache(cls, cache: CacheModel, params: CkksParams) -> "MADConfig":
        """Automatically enable every optimization the memory supports.

        Mirrors SimFHE's behaviour: "for a large enough on-chip memory,
        SimFHE will automatically deploy the applicable optimization."
        Algorithmic optimizations are memory-independent and always on.
        """
        alpha_ok = cache.fits_alpha(params)
        return cls(
            cache_o1=cache.fits_o1(params),
            cache_beta=cache.fits_beta(params),
            cache_alpha=alpha_ok,
            limb_reorder=alpha_ok,
            mod_down_merge=True,
            mod_down_hoist=True,
            key_compression=True,
        )

    def with_(self, **changes) -> "MADConfig":
        """A copy with the given flags changed."""
        return replace(self, **changes)


#: Figure 2 ladder: cumulative caching optimizations over the baseline.
CACHING_LADDER: List[Tuple[str, MADConfig]] = [
    ("Baseline", MADConfig.none()),
    ("1-limb Cache", MADConfig(cache_o1=True)),
    ("beta-limb Cache", MADConfig(cache_o1=True, cache_beta=True)),
    (
        "alpha-limb Cache",
        MADConfig(cache_o1=True, cache_beta=True, cache_alpha=True),
    ),
    ("Limb Re-order", MADConfig.caching_only()),
]

#: Figure 3 ladder: cumulative algorithmic optimizations on top of all
#: caching optimizations.
ALGORITHMIC_LADDER: List[Tuple[str, MADConfig]] = [
    ("Baseline (cached)", MADConfig.caching_only()),
    ("ModDown Merge", MADConfig.caching_only().with_(mod_down_merge=True)),
    (
        "ModDown Hoisting",
        MADConfig.caching_only().with_(mod_down_merge=True, mod_down_hoist=True),
    ),
    ("Key Compression", MADConfig.all()),
]
