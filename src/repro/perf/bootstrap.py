"""End-to-end CKKS bootstrapping cost model (Algorithm 4).

Phases and their level budget:

* **ModRaise** — basis extension from the exhausted modulus to ``L`` limbs.
* **CoeffToSlot** — ``fftIter`` PtMatVecMult iterations, one level each;
  each stage matrix of the radix-``r`` DFT factorisation has
  ``r = n^(1/fftIter)`` non-zero diagonals.
* **EvalMod** — polynomial approximation of modular reduction,
  ``eval_mod_depth`` (default 9) levels of Mult/PtMult work.
* **SlotToCoeff** — another ``fftIter`` PtMatVecMult iterations.

The output level is ``L - 2*fftIter - eval_mod_depth``, matching the
``log Q_1`` values of Table 6 for both parameter sets of Table 5.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.obs import state as obs
from repro.params import CkksParams
from repro.perf.cache import CacheModel
from repro.perf.events import CostReport
from repro.perf.optimizations import MADConfig
from repro.perf.primitives import PrimitiveCosts
from repro.perf.matvec import pt_mat_vec_mult_cost


@dataclass(frozen=True)
class EvalModProfile:
    """Operation counts per consumed level of the EvalMod phase.

    The defaults model a degree-~63 scaled-sine Chebyshev evaluation with
    double-angle refinement: a couple of ciphertext multiplications plus a
    plaintext multiplication and additions per level, with extra
    multiplications at the start to build the power basis.
    """

    mults_per_level: int = 4
    pt_mults_per_level: int = 2
    adds_per_level: int = 3
    basis_setup_mults: int = 9


@dataclass(frozen=True)
class BootstrapBreakdown:
    """Per-phase cost of one bootstrapping operation."""

    mod_raise: CostReport
    coeff_to_slot: CostReport
    eval_mod: CostReport
    slot_to_coeff: CostReport

    @property
    def total(self) -> CostReport:
        return (
            self.mod_raise
            + self.coeff_to_slot
            + self.eval_mod
            + self.slot_to_coeff
        )

    def phases(self) -> Dict[str, CostReport]:
        return {
            "ModRaise": self.mod_raise,
            "CoeffToSlot": self.coeff_to_slot,
            "EvalMod": self.eval_mod,
            "SlotToCoeff": self.slot_to_coeff,
        }


class BootstrapModel:
    """SimFHE's bootstrapping cost model.

    Args:
        params: CKKS parameters (must support bootstrapping).
        config: MAD optimization flags.
        cache: optional on-chip memory bound; flags the cache cannot
            support are disabled, mirroring SimFHE's auto-deployment.
        eval_mod: operation profile of the EvalMod phase.
    """

    def __init__(
        self,
        params: CkksParams,
        config: MADConfig = MADConfig.none(),
        cache: Optional[CacheModel] = None,
        eval_mod: EvalModProfile = EvalModProfile(),
    ):
        if not params.supports_bootstrapping():
            raise ValueError(
                f"{params.describe()} cannot bootstrap (level budget)"
            )
        self.params = params
        self.costs = PrimitiveCosts(params, config, cache)
        self.eval_mod_profile = eval_mod

    # ------------------------------------------------------------------
    @property
    def dft_diagonals(self) -> int:
        """Non-zero diagonals per DFT stage matrix: ``n^(1/fftIter)``."""
        n = self.params.slots
        return max(2, math.ceil(n ** (1.0 / self.params.fft_iter)))

    # ------------------------------------------------------------------
    def ledger(self) -> "CostLedger":
        """Sub-operation-labeled cost ledger of one bootstrap.

        When a tracer is installed (:mod:`repro.obs`) the call also emits a
        span tree — a root span carrying the parameter/MAD-config/cache
        metadata, one span per phase, one leaf span per consumed level —
        with each leaf recording exactly the CostReport added to the
        ledger.  The traced span-cost sum is therefore bit-identical to
        the untraced total; with tracing disabled every ``obs`` call is a
        no-op on a shared singleton.
        """
        from repro.perf.ledger import CostLedger

        params = self.params
        level = params.max_limbs
        ledger = CostLedger()
        if obs.tracing_enabled():
            # Root metadata is only worth computing when someone records it.
            root_meta = {
                "params": params.describe(),
                "config": asdict(self.costs.config),
                "cache_mb": (
                    self.costs.cache.megabytes
                    if self.costs.cache is not None
                    else None
                ),
            }
        else:
            root_meta = {}

        with obs.span("Bootstrap", **root_meta):
            with obs.span("ModRaise", level=level):
                cost = self.costs.mod_raise(2, level)
                obs.record_cost(cost)
            ledger.add("ModRaise", cost)

            # Volatile values (loop index, live limb count) go into span
            # *attributes*, never labels: cross-run diff alignment keys on
            # the label path, and repeated siblings are disambiguated by
            # position (repro.obs.export.compute_span_paths).
            with obs.span("CoeffToSlot"):
                for i in range(params.fft_iter):
                    with obs.span(
                        "CoeffToSlot:iter",
                        iter=i,
                        level=level,
                        diagonals=self.dft_diagonals,
                    ):
                        cost = pt_mat_vec_mult_cost(
                            self.costs, level, self.dft_diagonals
                        )
                        obs.record_cost(cost)
                    ledger.add("CoeffToSlot", cost)
                    level -= 1

            profile = self.eval_mod_profile
            with obs.span("EvalMod"):
                for depth in range(params.eval_mod_depth):
                    mults = profile.mults_per_level + (
                        profile.basis_setup_mults if depth == 0 else 0
                    )
                    with obs.span("EvalMod:level", depth=depth, level=level):
                        with obs.span("EvalMod:Mult", level=level):
                            mult_cost = self.costs.mult(level).scaled(mults)
                            obs.record_cost(mult_cost)
                        with obs.span("EvalMod:PtMult", level=level):
                            pt_cost = self.costs.pt_mult(level).scaled(
                                profile.pt_mults_per_level
                            )
                            obs.record_cost(pt_cost)
                        with obs.span("EvalMod:Add", level=level):
                            add_cost = self.costs.add(level).scaled(
                                profile.adds_per_level
                            )
                            obs.record_cost(add_cost)
                    ledger.add("EvalMod:Mult", mult_cost)
                    ledger.add("EvalMod:PtMult", pt_cost)
                    ledger.add("EvalMod:Add", add_cost)
                    level -= 1

            with obs.span("SlotToCoeff"):
                for i in range(params.fft_iter):
                    with obs.span(
                        "SlotToCoeff:iter",
                        iter=i,
                        level=level,
                        diagonals=self.dft_diagonals,
                    ):
                        cost = pt_mat_vec_mult_cost(
                            self.costs, level, self.dft_diagonals
                        )
                        obs.record_cost(cost)
                    ledger.add("SlotToCoeff", cost)
                    level -= 1

        assert level == params.bootstrap_output_limbs
        return ledger

    def cost(self) -> BootstrapBreakdown:
        """Full per-phase cost of one bootstrapping operation."""
        merged = self.ledger().by_label()
        eval_mod = (
            merged.get("EvalMod:Mult", CostReport())
            + merged.get("EvalMod:PtMult", CostReport())
            + merged.get("EvalMod:Add", CostReport())
        )
        return BootstrapBreakdown(
            mod_raise=merged["ModRaise"],
            coeff_to_slot=merged["CoeffToSlot"],
            eval_mod=eval_mod,
            slot_to_coeff=merged["SlotToCoeff"],
        )

    def total_cost(self) -> CostReport:
        return self.cost().total
