"""SimFHE-style performance model for CKKS — the paper's core artifact.

The model counts, for every CKKS primitive and for full bootstrapping /
applications:

* **compute** — modular multiplications and additions (NTTs dominate), and
* **DRAM traffic** — bytes moved, per stream (ciphertext limb reads/writes,
  switching-key reads, plaintext reads), as a function of on-chip memory
  size and the enabled MAD optimizations.

The caching optimizations (Section 3.1) change traffic only; the
algorithmic optimizations (Section 3.2) change both op counts and traffic.
"""

from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.perf.cache import CacheModel
from repro.perf.optimizations import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    MADConfig,
)
from repro.perf.primitives import PrimitiveCosts
from repro.perf.matvec import pt_mat_vec_mult_cost
from repro.perf.bootstrap import BootstrapModel, BootstrapBreakdown
from repro.perf.ledger import CostLedger

__all__ = [
    "CostLedger",
    "OpCount",
    "MemTraffic",
    "CostReport",
    "CacheModel",
    "MADConfig",
    "CACHING_LADDER",
    "ALGORITHMIC_LADDER",
    "PrimitiveCosts",
    "pt_mat_vec_mult_cost",
    "BootstrapModel",
    "BootstrapBreakdown",
]
