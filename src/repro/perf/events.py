"""Cost-accounting primitives: operation counts and DRAM traffic streams."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OpCount:
    """Modular-arithmetic operation counts.

    ``mults`` and ``adds`` count word-sized modular multiplications and
    additions/subtractions.  Automorphisms move data without arithmetic and
    therefore cost zero (matching the Automorph column of Table 4).
    """

    mults: int = 0
    adds: int = 0

    @classmethod
    def from_dict(cls, data: dict) -> "OpCount":
        """Inverse of :func:`repro.obs.export.ops_dict` (``total`` ignored)."""
        return cls(mults=int(data.get("mults", 0)), adds=int(data.get("adds", 0)))

    @property
    def total(self) -> int:
        return self.mults + self.adds

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(self.mults + other.mults, self.adds + other.adds)

    def __radd__(self, other) -> "OpCount":
        # Lets builtin ``sum(counts)`` work (it starts from the int 0).
        if other == 0:
            return self
        return NotImplemented

    def scaled(self, factor: int) -> "OpCount":
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return OpCount(self.mults * factor, self.adds * factor)


@dataclass(frozen=True)
class MemTraffic:
    """DRAM traffic in bytes, broken down by stream.

    The split matters: the paper's Figures 2 and 3 track ciphertext limb
    reads, ciphertext limb writes, and switching-key reads separately
    (caching optimizations cannot touch key reads; key compression only
    touches key reads).
    """

    ct_read: int = 0
    ct_write: int = 0
    key_read: int = 0
    pt_read: int = 0

    @classmethod
    def from_dict(cls, data: dict) -> "MemTraffic":
        """Inverse of :func:`repro.obs.export.traffic_dict` (``total`` ignored)."""
        return cls(
            ct_read=int(data.get("ct_read", 0)),
            ct_write=int(data.get("ct_write", 0)),
            key_read=int(data.get("key_read", 0)),
            pt_read=int(data.get("pt_read", 0)),
        )

    @property
    def total(self) -> int:
        return self.ct_read + self.ct_write + self.key_read + self.pt_read

    def __add__(self, other: "MemTraffic") -> "MemTraffic":
        return MemTraffic(
            self.ct_read + other.ct_read,
            self.ct_write + other.ct_write,
            self.key_read + other.key_read,
            self.pt_read + other.pt_read,
        )

    def __radd__(self, other) -> "MemTraffic":
        # Lets builtin ``sum(streams)`` work (it starts from the int 0).
        if other == 0:
            return self
        return NotImplemented

    def scaled(self, factor: int) -> "MemTraffic":
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return MemTraffic(
            self.ct_read * factor,
            self.ct_write * factor,
            self.key_read * factor,
            self.pt_read * factor,
        )


@dataclass(frozen=True)
class CostReport:
    """Combined compute + traffic cost of an operation or pipeline."""

    ops: OpCount = field(default_factory=OpCount)
    traffic: MemTraffic = field(default_factory=MemTraffic)

    @classmethod
    def from_dict(cls, data: dict) -> "CostReport":
        """Inverse of :func:`repro.obs.export.cost_dict`."""
        return cls(
            ops=OpCount.from_dict(data.get("ops") or {}),
            traffic=MemTraffic.from_dict(data.get("traffic") or {}),
        )

    def __add__(self, other: "CostReport") -> "CostReport":
        return CostReport(self.ops + other.ops, self.traffic + other.traffic)

    def __radd__(self, other) -> "CostReport":
        # Lets builtin ``sum(costs)`` work (it starts from the int 0).
        if other == 0:
            return self
        return NotImplemented

    def scaled(self, factor: int) -> "CostReport":
        return CostReport(self.ops.scaled(factor), self.traffic.scaled(factor))

    @property
    def arithmetic_intensity(self) -> float:
        """Ops per byte of DRAM traffic — the roofline x-axis."""
        if self.traffic.total == 0:
            return float("inf") if self.ops.total else 0.0
        return self.ops.total / self.traffic.total

    def giga_ops(self) -> float:
        return self.ops.total / 1e9

    def gigabytes(self) -> float:
        return self.traffic.total / 1e9
