"""Labeled cost accounting: where do the ops and bytes actually go?

A :class:`CostLedger` is an ordered collection of named
:class:`~repro.perf.events.CostReport` components.  The bootstrap model
can emit one at sub-operation granularity, which is how you answer
questions like "what fraction of DRAM traffic is switching keys during
CoeffToSlot?" without re-deriving the model.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.perf.events import CostReport


class CostLedger:
    """Ordered, labeled cost components that sum to a total."""

    def __init__(self):
        self._entries: List[Tuple[str, CostReport]] = []

    def add(self, label: str, cost: CostReport) -> None:
        if not label:
            raise ValueError("component label must be non-empty")
        self._entries.append((label, cost))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[str, CostReport]]:
        return iter(self._entries)

    @property
    def total(self) -> CostReport:
        total = CostReport()
        for _, cost in self._entries:
            total = total + cost
        return total

    def by_label(self) -> Dict[str, CostReport]:
        """Components merged by label (labels may repeat across phases)."""
        merged: Dict[str, CostReport] = {}
        for label, cost in self._entries:
            merged[label] = merged.get(label, CostReport()) + cost
        return merged

    def traffic_fraction(self, label: str) -> float:
        """Fraction of total DRAM traffic attributed to ``label``."""
        total = self.total.traffic.total
        if total == 0:
            return 0.0
        component = self.by_label().get(label)
        if component is None:
            raise KeyError(f"no component labeled {label!r}")
        return component.traffic.total / total

    def ops_fraction(self, label: str) -> float:
        """Fraction of total compute attributed to ``label``."""
        total = self.total.ops.total
        if total == 0:
            return 0.0
        component = self.by_label().get(label)
        if component is None:
            raise KeyError(f"no component labeled {label!r}")
        return component.ops.total / total

    def render(self) -> str:
        lines = [
            f"{'Component':24} {'Gops':>9} {'GB':>8} {'AI':>6}",
            "-" * 50,
        ]
        for label, cost in self.by_label().items():
            lines.append(
                f"{label:24} {cost.giga_ops():9.2f} {cost.gigabytes():8.2f} "
                f"{cost.arithmetic_intensity:6.2f}"
            )
        total = self.total
        lines.append("-" * 50)
        lines.append(
            f"{'Total':24} {total.giga_ops():9.2f} {total.gigabytes():8.2f} "
            f"{total.arithmetic_intensity:6.2f}"
        )
        return "\n".join(lines)
