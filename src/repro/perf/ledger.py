"""Labeled cost accounting: where do the ops and bytes actually go?

A :class:`CostLedger` is an ordered collection of named
:class:`~repro.perf.events.CostReport` components.  The bootstrap model
can emit one at sub-operation granularity, which is how you answer
questions like "what fraction of DRAM traffic is switching keys during
CoeffToSlot?" without re-deriving the model.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.perf.events import CostReport


class CostLedger:
    """Ordered, labeled cost components that sum to a total."""

    def __init__(self):
        self._entries: List[Tuple[str, CostReport]] = []

    def add(self, label: str, cost: CostReport) -> None:
        if not label:
            raise ValueError("component label must be non-empty")
        self._entries.append((label, cost))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[str, CostReport]]:
        return iter(self._entries)

    @property
    def total(self) -> CostReport:
        if not self._entries:
            return CostReport()
        return sum(cost for _, cost in self._entries)

    def by_label(self) -> Dict[str, CostReport]:
        """Components merged by label (labels may repeat across phases)."""
        merged: Dict[str, CostReport] = {}
        for label, cost in self._entries:
            merged[label] = merged.get(label, CostReport()) + cost
        return merged

    def traffic_fraction(self, label: str) -> float:
        """Fraction of total DRAM traffic attributed to ``label``.

        Raises KeyError for labels with no component, even when the ledger
        carries no traffic at all.
        """
        component = self.by_label().get(label)
        if component is None:
            raise KeyError(f"no component labeled {label!r}")
        total = self.total.traffic.total
        if total == 0:
            return 0.0
        return component.traffic.total / total

    def ops_fraction(self, label: str) -> float:
        """Fraction of total compute attributed to ``label``.

        Raises KeyError for labels with no component, even when the ledger
        counts no operations at all.
        """
        component = self.by_label().get(label)
        if component is None:
            raise KeyError(f"no component labeled {label!r}")
        total = self.total.ops.total
        if total == 0:
            return 0.0
        return component.ops.total / total

    _LABEL_WIDTH = 24

    @classmethod
    def _fit(cls, label: str) -> str:
        """Truncate long labels so table columns stay aligned."""
        width = cls._LABEL_WIDTH
        if len(label) <= width:
            return label
        return label[: width - 1] + "…"

    def render(self) -> str:
        width = self._LABEL_WIDTH
        header = (
            f"{'Component':{width}} {'Gops':>9} {'GB':>8} {'AI':>6} "
            f"{'Ops%':>7} {'GB%':>7}"
        )
        lines = [header, "-" * len(header)]
        total = self.total
        for label, cost in self.by_label().items():
            lines.append(
                f"{self._fit(label):{width}} {cost.giga_ops():9.2f} "
                f"{cost.gigabytes():8.2f} {cost.arithmetic_intensity:6.2f} "
                f"{self.ops_fraction(label):7.1%} "
                f"{self.traffic_fraction(label):7.1%}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'Total':{width}} {total.giga_ops():9.2f} "
            f"{total.gigabytes():8.2f} {total.arithmetic_intensity:6.2f} "
            f"{1.0 if total.ops.total else 0.0:7.1%} "
            f"{1.0 if total.traffic.total else 0.0:7.1%}"
        )
        return "\n".join(lines)
