"""On-chip memory model.

SimFHE does not simulate cache lines or hit/miss behaviour; it reasons about
which *working sets* fit (Section 4.1 of the paper).  The thresholds mirror
Section 3.1:

* ``O(1)``-limb fusion needs one limb (~1 MB at N = 2^17) plus headroom.
* ``O(beta)``-digit caching needs ``2*beta`` limbs (~6 MB for beta = 3).
* ``O(alpha)``-limb caching needs ``2*alpha + 3`` limbs (~27 MB for
  alpha = 12), and limb re-ordering rides on the same capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import state as obs
from repro.params import CkksParams

MB = 10**6


@dataclass(frozen=True)
class CacheModel:
    """An on-chip memory of ``size_bytes`` bytes."""

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_bytes}")

    @classmethod
    def from_mb(cls, megabytes: float) -> "CacheModel":
        return cls(int(megabytes * MB))

    @property
    def megabytes(self) -> float:
        return self.size_bytes / MB

    def capacity_limbs(self, params: CkksParams) -> int:
        """Whole ciphertext limbs this memory can hold."""
        return self.size_bytes // params.limb_bytes

    # ------------------------------------------------------------------
    # Optimization applicability (Section 3.1 thresholds)
    # ------------------------------------------------------------------
    @staticmethod
    def _record(name: str, fits: bool) -> bool:
        """Count each fit decision in the metrics registry when enabled."""
        if obs.metrics_enabled():
            obs.count(f"perf.cache.{name}.queries")
            obs.count(f"perf.cache.{name}.{'fit' if fits else 'nofit'}")
        return fits

    def fits_o1(self, params: CkksParams) -> bool:
        """Can fuse all limb-wise sub-operations on one resident limb.

        The paper sizes this optimization at 1 MB — exactly one limb of an
        N = 2^17 ring element.
        """
        return self._record("o1", self.capacity_limbs(params) >= 1)

    def fits_beta(self, params: CkksParams) -> bool:
        """Can keep one limb from each of the ``beta`` raised digits."""
        return self._record(
            "beta", self.capacity_limbs(params) >= 2 * params.dnum
        )

    def fits_alpha(self, params: CkksParams) -> bool:
        """Can keep a full ``alpha``-limb digit resident for basis change.

        The paper quotes ``2*alpha + 3`` limbs (27 MB at alpha = 12) for
        holding both polynomials' digits at once; processing the two
        polynomials sequentially needs only ``alpha + 3`` limbs, which is
        what makes the paper's 32 MB budget sufficient for the optimal
        parameter set's alpha = 21.
        """
        return self._record(
            "alpha", self.capacity_limbs(params) >= params.alpha + 3
        )

    def fits_limb_reorder(self, params: CkksParams) -> bool:
        """Re-ordering needs the same capacity as O(alpha) caching."""
        return self._record("limb_reorder", self.fits_alpha(params))

    def fits_whole_ciphertext(self, params: CkksParams, limbs: int) -> bool:
        """Does a full ciphertext fit (the F1 small-parameter regime)?"""
        return self._record(
            "whole_ciphertext",
            self.size_bytes >= params.ciphertext_bytes(limbs),
        )
