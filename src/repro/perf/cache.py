"""On-chip memory model.

SimFHE does not simulate cache lines or hit/miss behaviour; it reasons about
which *working sets* fit (Section 4.1 of the paper).  The thresholds mirror
Section 3.1:

* ``O(1)``-limb fusion needs one limb (~1 MB at N = 2^17) plus headroom.
* ``O(beta)``-digit caching needs ``2*beta`` limbs (~6 MB for beta = 3).
* ``O(alpha)``-limb caching needs ``2*alpha + 3`` limbs (~27 MB for
  alpha = 12), and limb re-ordering rides on the same capacity.

**Byte convention.**  Cache sizes here are *decimal* megabytes
(``MB = 10**6``, the unit hardware specs quote), while a limb of an
N = 2^17 ring element occupies ``8 * 2**17 = 2**20`` bytes — one *binary*
mebibyte.  The two differ by ~4.9%, and the paper's shorthand glosses
over it: its "1 MB" limb is really 1.048576 decimal MB, so a literal
``CacheModel.from_mb(1.0)`` holds **zero** whole limbs
(``10**6 // 2**20 == 0``) and a "32 MB" cache holds 30 limbs, not 32.
``capacity_limbs`` floor-divides on purpose — a partial limb cannot be
cached — and every consumer of this model (the analytical thresholds
below and :meth:`repro.memsim.simulator.MemorySimulator.capacity_blocks`,
which uses the *same* floor division) inherits the convention, so
analytical fit decisions and simulated replays always agree on what a
given cache size holds.  Working sets within ~5% of capacity (e.g. 31
limbs against a "32 MB" budget) land on opposite sides of the threshold
depending on which unit is meant; keep quotes of paper cache sizes in
decimal MB and convert explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import state as obs
from repro.params import CkksParams

#: Decimal megabyte — see the byte-convention note in the module docstring.
MB = 10**6


def mb_to_bytes(megabytes: float) -> int:
    """Decimal megabytes to whole bytes, rounding to the nearest byte.

    ``int(megabytes * MB)`` truncates, and binary floats cannot represent
    most decimal-MB values exactly — ``261.095424 * MB`` (exactly 249
    MiB-limbs) evaluates to ``261095423.99999997``, which truncation
    turns into a cache one byte smaller than specified.  One byte is
    enough to flip a ``capacity_limbs`` threshold exactly at a
    working-set boundary (a "261.095424 MB" cache should hold 249
    MiB-limbs, not 248), so every MB → bytes conversion in the model
    rounds instead.
    """
    return int(round(megabytes * MB))


@dataclass(frozen=True)
class CacheModel:
    """An on-chip memory of ``size_bytes`` bytes."""

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_bytes}")

    @classmethod
    def from_mb(cls, megabytes: float) -> "CacheModel":
        """A cache of ``megabytes`` decimal MB (nearest-byte rounding)."""
        return cls(mb_to_bytes(megabytes))

    @property
    def megabytes(self) -> float:
        return self.size_bytes / MB

    def capacity_limbs(self, params: CkksParams) -> int:
        """Whole ciphertext limbs this memory can hold.

        Floor division: a partial limb is not cacheable.  Note the
        decimal-MB vs binary-limb drift documented in the module
        docstring — ``from_mb(1.0)`` holds 0 limbs at N = 2^17.
        """
        return self.size_bytes // params.limb_bytes

    # ------------------------------------------------------------------
    # Optimization applicability (Section 3.1 thresholds)
    # ------------------------------------------------------------------
    @staticmethod
    def _record(name: str, fits: bool) -> bool:
        """Count each fit decision in the metrics registry when enabled."""
        if obs.metrics_enabled():
            obs.count(f"perf.cache.{name}.queries")
            obs.count(f"perf.cache.{name}.{'fit' if fits else 'nofit'}")
        return fits

    def fits_o1(self, params: CkksParams) -> bool:
        """Can fuse all limb-wise sub-operations on one resident limb.

        The paper sizes this optimization at 1 MB — exactly one limb of an
        N = 2^17 ring element.
        """
        return self._record("o1", self.capacity_limbs(params) >= 1)

    def fits_beta(self, params: CkksParams) -> bool:
        """Can keep one limb from each of the ``beta`` raised digits."""
        return self._record(
            "beta", self.capacity_limbs(params) >= 2 * params.dnum
        )

    def fits_alpha(self, params: CkksParams) -> bool:
        """Can keep a full ``alpha``-limb digit resident for basis change.

        The paper quotes ``2*alpha + 3`` limbs (27 MB at alpha = 12) for
        holding both polynomials' digits at once; processing the two
        polynomials sequentially needs only ``alpha + 3`` limbs, which is
        what makes the paper's 32 MB budget sufficient for the optimal
        parameter set's alpha = 21.
        """
        return self._record(
            "alpha", self.capacity_limbs(params) >= params.alpha + 3
        )

    def fits_limb_reorder(self, params: CkksParams) -> bool:
        """Re-ordering needs the same capacity as O(alpha) caching."""
        return self._record("limb_reorder", self.fits_alpha(params))

    def fits_whole_ciphertext(self, params: CkksParams, limbs: int) -> bool:
        """Does a full ciphertext fit (the F1 small-parameter regime)?"""
        return self._record(
            "whole_ciphertext",
            self.size_bytes >= params.ciphertext_bytes(limbs),
        )
