"""Cost model of ``PtMatVecMult`` — homomorphic plaintext matrix-vector
products evaluated with baby-step/giant-step rotations.

This is where three MAD techniques land:

* **O(beta) caching** — the raised digits produced by the (hoisted) ModUp
  are read from DRAM once per transform instead of once per rotation.
* **ModDown hoisting** (Fig. 5) — one ModUp group and a single ModDown pair
  serve the whole transform; the plaintext multiplications and the
  accumulation happen in the raised basis.  The paper pairs this with a
  *larger baby step* in the BSGS split, which re-reads switching keys more
  often (+25% key reads) but reduces overall DRAM traffic.
* **Key compression** — halves the key-read traffic of every rotation
  (applied inside :meth:`PrimitiveCosts.ksk_inner_product`).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.perf.primitives import PrimitiveCosts


def bsgs_split(diagonals: int, larger_baby: bool = False) -> Tuple[int, int]:
    """Baby-step size and giant-step count for ``diagonals`` diagonals."""
    if diagonals < 1:
        raise ValueError(f"need at least one diagonal, got {diagonals}")
    baby = 1 << max(round(math.log2(math.sqrt(diagonals))), 0)
    if larger_baby:
        baby *= 2
    giant = math.ceil(diagonals / baby)
    return baby, giant


def pt_mat_vec_mult_cost(
    costs: PrimitiveCosts, limbs: int, diagonals: int
) -> CostReport:
    """Cost of one PtMatVecMult with ``diagonals`` non-zero diagonals.

    The result includes the final Rescale, so the transform consumes one
    level (call at the pre-consumption limb count).
    """
    params = costs.params
    config = costs.config
    n = params.ring_degree
    raised = params.raised_limbs(limbs)
    limb = params.limb_bytes

    baby, giant = bsgs_split(diagonals, larger_baby=config.mod_down_hoist)
    num_rotations = (baby - 1) + (giant - 1)

    # --- shared hoisted ModUp of the input's c1 ------------------------
    cost = costs.decomp(limbs)
    for digit_size in costs._digit_sizes(limbs):
        cost = cost + costs.mod_up(
            limbs, digit_size, fused_intt=config.cache_o1
        )

    if config.mod_down_hoist:
        # Fig. 5(c): every rotation (baby and giant alike) is an inner
        # product against its switching key; ModDown happens once.
        for _ in range(num_rotations):
            cost = cost + costs.ksk_inner_product(
                limbs,
                count_digit_reads=not config.cache_beta,
                count_output_writes=False,  # accumulates on chip
            )
        if config.cache_beta:
            # The raised digits are read from DRAM a single time.
            cost = cost + CostReport(
                OpCount(),
                MemTraffic(ct_read=params.beta(limbs) * raised * limb),
            )
        # Plaintext multiplications + accumulation in the raised basis.
        # The key-switch rows stream from the on-chip accumulators; only the
        # rotated c0 rows and the diagonal plaintexts come from DRAM.
        per_diag_ops = OpCount(mults=2 * n * raised, adds=2 * n * raised)
        per_diag_traffic = MemTraffic(
            pt_read=limbs * limb, ct_read=limbs * limb
        )
        cost = cost + CostReport(per_diag_ops, per_diag_traffic).scaled(
            diagonals
        )
        # The single deferred ModDown pair, then one output write.
        cost = cost + costs.mod_down(limbs, polys=2, input_resident=True)
        cost = cost + CostReport(
            OpCount(adds=2 * n * limbs),
            MemTraffic(ct_write=2 * limbs * limb),
        )
    else:
        # Baseline (Jung et al.): baby rotations share the ModUp (classic
        # ModUp hoisting) but each performs its own inner product and
        # ModDown pair; giant rotations act on distinct partial sums and
        # must be full Rotates.
        reorder = config.limb_reorder
        for _ in range(baby - 1):
            cost = cost + costs.ksk_inner_product(
                limbs,
                count_digit_reads=not config.cache_beta,
                count_output_writes=not reorder,
            )
            cost = cost + costs.mod_down(
                limbs, polys=2, input_resident=reorder
            )
        if config.cache_beta:
            cost = cost + CostReport(
                OpCount(),
                MemTraffic(ct_read=params.beta(limbs) * raised * limb),
            )
        # Inner plaintext products against each (pre-rotated) diagonal.
        per_diag_ops = OpCount(mults=2 * n * limbs, adds=2 * n * limbs)
        per_diag_traffic = MemTraffic(
            pt_read=limbs * limb, ct_read=2 * limbs * limb
        )
        cost = cost + CostReport(per_diag_ops, per_diag_traffic).scaled(
            diagonals
        )
        # Giant-step rotations of the accumulated partial sums.
        for _ in range(giant - 1):
            cost = cost + costs.rotate(limbs)
        # Write the accumulated output once.
        cost = cost + CostReport(
            OpCount(adds=2 * n * limbs),
            MemTraffic(ct_write=2 * limbs * limb),
        )

    # Mandatory Rescale after the plaintext products.
    cost = cost + costs.rescale(limbs, polys=2)
    return cost
