"""Per-primitive cost models (compute ops + DRAM traffic).

Counting conventions (documented in DESIGN.md §4):

* one limb of a ring element = ``8 * N`` bytes; a ciphertext = ``2 l`` limbs;
* one size-N NTT/iNTT = ``(N/2) log2 N`` modular mults + ``N log2 N`` adds;
* fast basis conversion of ``s`` source limbs to ``m`` target limbs =
  ``N s`` pre-scaling mults plus ``m * N s`` mults and ``m * N s`` adds;
* ``Ops`` totals count mults + adds, matching Table 4's "operations";
* Table 4 row semantics: ``ModUp`` is the extension of *one* digit,
  ``ModDown`` is *one* polynomial, ``KSKInnerProd`` covers both output
  polynomials.

Traffic formulas are written as explicit read/write passes per
sub-operation, gated by the MAD caching flags; each gated branch cites the
mechanism from Section 3.1 of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import state as obs
from repro.params import CkksParams
from repro.perf.cache import CacheModel
from repro.perf.events import CostReport, MemTraffic, OpCount
from repro.perf.optimizations import MADConfig


class PrimitiveCosts:
    """Cost model for the CKKS primitives of Table 2 / Table 4.

    Args:
        params: CKKS parameter set (full-scale, e.g. ``BASELINE_JUNG``).
        config: enabled MAD optimizations.
        cache: optional on-chip memory; when provided, caching flags that
            the memory cannot support are silently disabled (a 6 MB chip
            cannot run the ``O(alpha)`` optimization no matter the flag).
    """

    def __init__(
        self,
        params: CkksParams,
        config: MADConfig = MADConfig.none(),
        cache: Optional[CacheModel] = None,
    ):
        self.params = params
        if cache is not None:
            config = MADConfig(
                cache_o1=config.cache_o1 and cache.fits_o1(params),
                cache_beta=config.cache_beta and cache.fits_beta(params),
                cache_alpha=config.cache_alpha and cache.fits_alpha(params),
                limb_reorder=config.limb_reorder and cache.fits_limb_reorder(params),
                mod_down_merge=config.mod_down_merge,
                mod_down_hoist=config.mod_down_hoist,
                key_compression=config.key_compression,
            )
        self.config = config
        self.cache = cache

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    @property
    def _n(self) -> int:
        return self.params.ring_degree

    @property
    def _limb(self) -> int:
        return self.params.limb_bytes

    def ntt_ops(self, limbs: int = 1) -> OpCount:
        """Ops for ``limbs`` limb-wise (i)NTT passes."""
        n, logn = self._n, self.params.log_n
        return OpCount(mults=limbs * (n // 2) * logn, adds=limbs * n * logn)

    def conversion_ops(self, sources: int, targets: int) -> OpCount:
        """Ops for a slot-wise fast basis conversion (Eq. 1)."""
        n = self._n
        return OpCount(
            mults=n * sources + targets * n * sources,
            adds=targets * n * sources,
        )

    def _traffic(
        self, ct_read=0, ct_write=0, key_read=0, pt_read=0
    ) -> MemTraffic:
        """Limb-denominated traffic converted to bytes."""
        limb = self._limb
        return MemTraffic(
            ct_read=ct_read * limb,
            ct_write=ct_write * limb,
            key_read=key_read * limb,
            pt_read=pt_read * limb,
        )

    def _check_limbs(self, limbs: int) -> None:
        if not 1 <= limbs <= self.params.max_limbs:
            raise ValueError(
                f"limb count {limbs} outside [1, {self.params.max_limbs}]"
            )

    # ------------------------------------------------------------------
    # Table 2 primitives without key switching
    # ------------------------------------------------------------------
    def pt_add(self, limbs: int) -> CostReport:
        """Plaintext addition: touches only ``c0``."""
        self._check_limbs(limbs)
        n = self._n
        return CostReport(
            OpCount(adds=n * limbs),
            self._traffic(ct_read=limbs, ct_write=limbs, pt_read=limbs),
        )

    def add(self, limbs: int) -> CostReport:
        """Ciphertext addition: both polynomials of both operands."""
        self._check_limbs(limbs)
        n = self._n
        return CostReport(
            OpCount(adds=2 * n * limbs),
            self._traffic(ct_read=4 * limbs, ct_write=2 * limbs),
        )

    def automorph(self, limbs: int) -> CostReport:
        """Slot permutation: zero arithmetic, pure data movement."""
        self._check_limbs(limbs)
        return CostReport(
            OpCount(),
            self._traffic(ct_read=2 * limbs, ct_write=2 * limbs),
        )

    def rescale(self, limbs: int, polys: int = 2) -> CostReport:
        """Divide by the last limb and drop it (per Table 2's Rescale).

        Per polynomial: iNTT the dropped limb, re-NTT it under each
        remaining modulus, then one subtract + one multiply per
        coefficient per remaining limb.
        """
        self._check_limbs(limbs)
        if limbs < 2:
            raise ValueError("cannot rescale a single-limb ciphertext")
        n = self._n
        remaining = limbs - 1
        ops_per_poly = (
            self.ntt_ops(1)  # iNTT of the dropped limb
            + self.ntt_ops(remaining)  # its image under each remaining modulus
            + OpCount(mults=n * remaining, adds=n * remaining)
        )
        # Traffic per polynomial: read every limb once, write the survivors.
        # The dropped limb's coefficient form stays cached (it is one limb).
        traffic_per_poly = self._traffic(ct_read=limbs, ct_write=remaining)
        return CostReport(ops_per_poly, traffic_per_poly).scaled(polys)

    def pt_mult(self, limbs: int) -> CostReport:
        """Plaintext multiplication, including the mandatory Rescale."""
        self._check_limbs(limbs)
        n = self._n
        product_ops = OpCount(mults=2 * n * limbs)
        rescale_cost = self.rescale(limbs, polys=2)
        if self.config.cache_o1:
            # O(1) fusion: the product limb is rescaled while resident, so
            # the intermediate 2l-limb write + re-read disappears (the
            # dropped product limb is computed first and pinned).
            traffic = self._traffic(
                ct_read=2 * limbs, pt_read=limbs, ct_write=2 * (limbs - 1)
            )
        else:
            traffic = (
                self._traffic(ct_read=2 * limbs, pt_read=limbs, ct_write=2 * limbs)
                + rescale_cost.traffic
            )
        return CostReport(product_ops + rescale_cost.ops, traffic)

    # ------------------------------------------------------------------
    # Key-switching sub-operations
    # ------------------------------------------------------------------
    def decomp(self, limbs: int) -> CostReport:
        """Digit decomposition of one polynomial (per-limb scaling pass)."""
        obs.count("perf.primitives.decomp")
        self._check_limbs(limbs)
        n = self._n
        return CostReport(
            OpCount(mults=n * limbs, adds=n * limbs),
            self._traffic(ct_read=limbs, ct_write=limbs),
        )

    def mod_up(
        self,
        limbs: int,
        digit_size: Optional[int] = None,
        fused_intt: bool = False,
    ) -> CostReport:
        """Raise one digit to the full ``PQ`` basis (Algorithm 1).

        ``digit_size`` defaults to a full ``alpha``-limb digit.
        ``fused_intt`` indicates the caller already produced the digit in
        coefficient form in the same pass (O(1) fusion with Decomp or
        Automorph), so the iNTT pass costs no extra traffic here.
        """
        obs.count("perf.primitives.mod_up")
        self._check_limbs(limbs)
        d = self.params.alpha if digit_size is None else digit_size
        if not 1 <= d <= self.params.alpha:
            raise ValueError(f"digit size {d} outside [1, {self.params.alpha}]")
        k = self.params.num_special_limbs
        new = limbs + k - d
        ops = self.ntt_ops(d) + self.conversion_ops(d, new) + self.ntt_ops(new)
        if self.config.cache_alpha:
            # O(alpha): the whole digit is resident, so new limbs are
            # generated, NTT'd and written without slot-wise round trips.
            reads = 0 if fused_intt else d
            traffic = self._traffic(ct_read=reads, ct_write=new)
        elif fused_intt:
            # NewLimb (slot-wise) + NTT passes only.
            traffic = self._traffic(ct_read=d + new, ct_write=2 * new)
        else:
            # Three passes: iNTT (limb-wise), NewLimb (slot-wise), NTT.
            traffic = self._traffic(
                ct_read=2 * d + new, ct_write=d + 2 * new
            )
        return CostReport(ops, traffic)

    def ksk_inner_product(
        self,
        limbs: int,
        count_digit_reads: bool = True,
        count_output_writes: bool = True,
    ) -> CostReport:
        """Multiply the raised digits with the switching key (both rows).

        ``count_digit_reads=False`` models the O(beta) caching regime where
        the ModUp outputs stay resident across many rotations;
        ``count_output_writes=False`` models limb re-ordering, where the
        accumulated rows stream straight into the ModDown.
        """
        obs.count("perf.primitives.ksk_inner_product")
        self._check_limbs(limbs)
        n = self._n
        beta = self.params.beta(limbs)
        raised = self.params.raised_limbs(limbs)
        ops = OpCount(
            mults=2 * beta * raised * n, adds=2 * (beta - 1) * raised * n
        )
        key_limbs = 2 * beta * raised
        if self.config.key_compression:
            # The uniform `a` rows are regenerated from a short PRNG seed.
            key_limbs //= 2
        digit_reads = beta * raised if count_digit_reads else 0
        writes = 2 * raised if count_output_writes else 0
        return CostReport(
            ops,
            self._traffic(
                ct_read=digit_reads, ct_write=writes, key_read=key_limbs
            ),
        )

    def mod_down(
        self,
        limbs: int,
        polys: int = 1,
        extra_drop: int = 0,
        input_resident: bool = False,
    ) -> CostReport:
        """Drop the special limbs, dividing by ``P`` (Algorithm 2).

        Args:
            limbs: ciphertext limbs *after* the drop.
            polys: how many polynomials to process (a KeySwitch does 2).
            extra_drop: additional ciphertext limbs folded into the same
                ModDown (the ModDown-merge optimization drops
                ``P * q_l`` at once, so ``extra_drop=1``).
            input_resident: the raised input rows stream from on-chip
                accumulators instead of DRAM (limb re-ordering).
        """
        obs.count("perf.primitives.mod_down")
        self._check_limbs(limbs)
        n = self._n
        k = self.params.num_special_limbs + extra_drop
        ops_per_poly = (
            self.ntt_ops(k)
            + self.conversion_ops(k, limbs)
            + self.ntt_ops(limbs)
            + OpCount(mults=n * limbs, adds=n * limbs)
        )
        if self.config.cache_alpha:
            # O(alpha): dropped limbs stay resident; each output limb is
            # converted, NTT'd and combined in cache, then written once.
            reads = 0 if input_resident else k + limbs
            traffic_per_poly = self._traffic(ct_read=reads, ct_write=limbs)
        else:
            # Passes: iNTT of dropped limbs, slot-wise NewLimb, NTT+combine.
            traffic_per_poly = self._traffic(
                ct_read=2 * k + 2 * limbs, ct_write=k + 2 * limbs
            )
        return CostReport(ops_per_poly, traffic_per_poly).scaled(polys)

    # ------------------------------------------------------------------
    # Key switching and the primitives built on it
    # ------------------------------------------------------------------
    def key_switch(self, limbs: int, include_mod_down: bool = True) -> CostReport:
        """Full KeySwitch of one polynomial (Algorithm 3).

        ``include_mod_down=False`` returns the hoistable prefix (Decomp +
        ModUps + inner product) whose output lives in the raised basis.
        """
        obs.count("perf.primitives.key_switch")
        self._check_limbs(limbs)
        cost = self.decomp(limbs)
        for digit_size in self._digit_sizes(limbs):
            # With O(1) fusion the Decomp pass also produces the digit in
            # coefficient form, so ModUp skips its iNTT round trip.
            cost = cost + self.mod_up(
                limbs, digit_size, fused_intt=self.config.cache_o1
            )
        reorder = self.config.limb_reorder
        cost = cost + self.ksk_inner_product(
            limbs, count_output_writes=not reorder
        )
        if include_mod_down:
            cost = cost + self.mod_down(limbs, polys=2, input_resident=reorder)
        return cost

    def _digit_sizes(self, limbs: int):
        alpha = self.params.alpha
        sizes = []
        remaining = limbs
        while remaining > 0:
            sizes.append(min(alpha, remaining))
            remaining -= alpha
        return sizes

    def mult(self, limbs: int) -> CostReport:
        """Ciphertext multiplication: tensor, relinearise, rescale."""
        obs.count("perf.primitives.mult")
        self._check_limbs(limbs)
        if limbs < 2:
            raise ValueError("mult needs at least 2 limbs (one to rescale)")
        n = self._n
        tensor_ops = OpCount(mults=4 * n * limbs, adds=n * limbs)
        if self.config.cache_o1:
            # Both operands are read once; d0/d1/d2 are produced in one
            # fused pass over resident limbs.
            tensor_traffic = self._traffic(ct_read=4 * limbs, ct_write=3 * limbs)
        else:
            tensor_traffic = self._traffic(
                ct_read=2 * 4 * limbs, ct_write=3 * limbs
            )
        cost = CostReport(tensor_ops, tensor_traffic)

        if self.config.mod_down_merge:
            # Fig. 4(c): KeySwitch stays in the raised basis; the tensor
            # terms are lifted by PModUp (one scalar multiply per
            # coefficient) and a single ModDown divides by P * q_l.
            cost = cost + self.key_switch(limbs, include_mod_down=False)
            raised = self.params.raised_limbs(limbs)
            cost = cost + CostReport(
                OpCount(mults=2 * n * limbs, adds=2 * n * raised),
                self._traffic(ct_read=2 * limbs),
            )
            cost = cost + self.mod_down(
                limbs - 1,
                polys=2,
                extra_drop=1,
                input_resident=self.config.limb_reorder,
            )
        else:
            cost = cost + self.key_switch(limbs)
            if self.config.cache_o1:
                # O(1) fusion: each ModDown output limb is combined with
                # its tensor limb and rescaled while resident — the
                # (u, v) write/read round trip and the separate rescale
                # passes disappear.
                cost = cost + CostReport(
                    OpCount(adds=2 * n * limbs),
                    self._traffic(ct_read=2 * limbs),
                )
                cost = cost + CostReport(
                    self.rescale(limbs, polys=2).ops,
                    self._traffic(ct_write=2 * (limbs - 1)),
                )
            else:
                # Add (u, v) into (d0, d1), then rescale both polynomials.
                cost = cost + CostReport(
                    OpCount(adds=2 * n * limbs),
                    self._traffic(ct_read=4 * limbs, ct_write=2 * limbs),
                )
                cost = cost + self.rescale(limbs, polys=2)
        return cost

    def rotate(self, limbs: int) -> CostReport:
        """Rotate = Automorph + KeySwitch of ``c1`` + recombine."""
        obs.count("perf.primitives.rotate")
        self._check_limbs(limbs)
        n = self._n
        if self.config.cache_o1:
            # Fig. 1(b): Automorph + Decomp + iNTT run on each resident c1
            # limb in a single pass (one read + one write per limb); the
            # c0 automorphism is a separate single pass.
            prefix_traffic = self._traffic(ct_read=2 * limbs, ct_write=2 * limbs)
        else:
            # Fig. 1(a): each sub-operation round-trips every limb.
            # c0+c1 automorph, then c1 decomp, then c1 per-digit iNTT.
            prefix_traffic = self._traffic(ct_read=4 * limbs, ct_write=4 * limbs)
        prefix_ops = OpCount(mults=n * limbs, adds=n * limbs)  # decomp scaling
        cost = CostReport(prefix_ops, prefix_traffic)

        # ModUp of each digit; the iNTT pass was already performed (and
        # counted) by the prefix chain above in both regimes.
        for digit_size in self._digit_sizes(limbs):
            cost = cost + self.mod_up(limbs, digit_size, fused_intt=True)
        reorder = self.config.limb_reorder
        cost = cost + self.ksk_inner_product(
            limbs, count_output_writes=not reorder
        )
        md = self.mod_down(limbs, polys=2, input_resident=reorder)
        if self.config.cache_o1:
            # O(1) fusion: the c0-part ModDown output streams into the
            # recombination add — its write and re-read disappear.
            md = CostReport(
                md.ops,
                md.traffic + self._traffic(ct_write=-limbs),
            )
            combine_traffic = self._traffic(ct_read=limbs, ct_write=limbs)
        else:
            combine_traffic = self._traffic(ct_read=2 * limbs, ct_write=limbs)
        cost = cost + md
        cost = cost + CostReport(OpCount(adds=n * limbs), combine_traffic)
        return cost

    def conjugate(self, limbs: int) -> CostReport:
        """Identical cost structure to Rotate (Table 4)."""
        return self.rotate(limbs)

    # ------------------------------------------------------------------
    def mod_raise(self, limbs_from: int, limbs_to: int) -> CostReport:
        """Bootstrap's initial basis extension of both polynomials."""
        if not 1 <= limbs_from < limbs_to <= self.params.max_limbs:
            raise ValueError(
                f"invalid mod_raise {limbs_from} -> {limbs_to} limbs"
            )
        new = limbs_to - limbs_from
        ops = (
            self.ntt_ops(limbs_from)
            + self.conversion_ops(limbs_from, new)
            + self.ntt_ops(new)
        ).scaled(2)
        traffic = self._traffic(
            ct_read=2 * limbs_from, ct_write=2 * limbs_to
        )
        return CostReport(ops, traffic)
