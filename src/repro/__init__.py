"""MAD: Memory-Aware Design Techniques for Accelerating FHE — reproduction.

A SimFHE-style performance model for CKKS bootstrapping (compute + DRAM
traffic under configurable on-chip memory and MAD optimizations), a
functional exact-arithmetic RNS-CKKS library validating the modelled
algorithms, hardware roofline comparisons against GPU/F1/BTS/ARK/CraterLake
design points, ML application workloads (HELR logistic regression,
ResNet-20), and a memory-aware parameter search.

Quick start::

    from repro.params import BASELINE_JUNG, MAD_OPTIMAL
    from repro.perf import BootstrapModel, MADConfig

    baseline = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
    optimized = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    print(baseline.arithmetic_intensity, optimized.arithmetic_intensity)
"""

__version__ = "1.0.0"

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, CkksParams, toy_params
from repro.perf import (
    BootstrapModel,
    CacheModel,
    CostReport,
    MADConfig,
    PrimitiveCosts,
)

__all__ = [
    "__version__",
    "CkksParams",
    "BASELINE_JUNG",
    "MAD_OPTIMAL",
    "toy_params",
    "MADConfig",
    "CacheModel",
    "CostReport",
    "PrimitiveCosts",
    "BootstrapModel",
]
