"""Accelerator design-space exploration — Table 6 and Figure 6 in one view.

For each published FHE accelerator (GPU / F1 / BTS / ARK / CraterLake),
compare the original design against a MAD design point with the same
compute and bandwidth but only 32 MB of on-chip memory, on three
workloads: a single bootstrap, HELR logistic-regression training, and
ResNet-20 inference.

Run:  python examples/accelerator_comparison.py
"""

from repro.hardware import PRIOR_DESIGNS, mad_counterpart
from repro.hardware.runtime import estimate_runtime
from repro.params import MAD_OPTIMAL
from repro.perf import BootstrapModel, MADConfig
from repro.report import (
    generate_fig6_lr,
    generate_fig6_resnet,
    generate_table6,
    render_table6,
)
from repro.search import bootstrap_throughput


def bootstrap_table():
    print("Bootstrapping comparison (Table 6)")
    print(render_table6(generate_table6()))


def memory_sensitivity():
    print("\nDoes more on-chip memory help a MAD design? (paper: no, beyond 32 MB)")
    design = mad_counterpart(PRIOR_DESIGNS["BTS"])
    for mb in (8, 16, 32, 64, 256, 512):
        from repro.perf import CacheModel

        cost = BootstrapModel(
            MAD_OPTIMAL, MADConfig.all(), CacheModel.from_mb(mb)
        ).total_cost()
        runtime = estimate_runtime(cost, design.with_memory(mb))
        tp = bootstrap_throughput(
            MAD_OPTIMAL.slots, MAD_OPTIMAL.log_q1, 19, runtime.seconds
        )
        print(
            f"  {mb:4d} MB: {runtime.milliseconds:7.2f} ms "
            f"({runtime.bound}-bound), throughput {tp:7.1f}"
        )


def ml_workloads():
    for title, generator, sizes in (
        ("HELR logistic-regression training", generate_fig6_lr, (6, 32, 256)),
        ("ResNet-20 encrypted inference", generate_fig6_resnet, (32, 256)),
    ):
        print(f"\n{title} (Figure 6)")
        for name, design in PRIOR_DESIGNS.items():
            bars = generator(design, sizes)
            rendered = ", ".join(
                f"{bar.label.split('+')[-1] if '+' in bar.label else 'orig'}:"
                f" {bar.seconds:.2f}s ({bar.speedup_vs_original:.1f}x)"
                for bar in bars
            )
            print(f"  {name:18} {rendered}")


if __name__ == "__main__":
    bootstrap_table()
    memory_sensitivity()
    ml_workloads()
