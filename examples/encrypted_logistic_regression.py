"""Privacy-preserving inference: logistic regression on encrypted data.

The scenario from the paper's introduction: a client sends *encrypted*
feature vectors to a server that evaluates a logistic-regression model
without ever seeing the data.  We train a tiny model on plaintext data,
then run inference homomorphically with the functional CKKS layer:

    score   = w . x + b          (PtMult + rotation tree + PtAdd)
    sigmoid ~ degree-3 polynomial (Chebyshev, homomorphic Mults)

and check the encrypted predictions against the plaintext model.

Run:  python examples/encrypted_logistic_regression.py
"""

import numpy as np

from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.polyeval import ChebyshevEvaluator, chebyshev_fit


def train_plaintext_model(rng, n_samples=200, n_features=8):
    """Tiny gradient-descent logistic regression on synthetic data."""
    true_w = rng.normal(size=n_features)
    X = rng.normal(size=(n_samples, n_features))
    y = (X @ true_w + 0.25 * rng.normal(size=n_samples) > 0).astype(float)
    w = np.zeros(n_features)
    b = 0.0
    for _ in range(300):
        z = X @ w + b
        p = 1 / (1 + np.exp(-z))
        grad_w = X.T @ (p - y) / n_samples
        grad_b = float(np.mean(p - y))
        w -= 0.5 * grad_w
        b -= 0.5 * grad_b
    return X, y, w, b


def encrypted_inference(x, w, b, env):
    """Evaluate sigmoid(w.x + b) on an encrypted feature vector."""
    evaluator, encryptor = env["evaluator"], env["encryptor"]
    n = len(x)
    ct = encryptor.encrypt_values(x)
    # Elementwise product with the (plaintext) weights...
    ct = evaluator.pt_mult(ct, list(w))
    # ...then a rotation tree sums all slots into slot 0.
    step = 1
    while step < n:
        ct = evaluator.add(ct, evaluator.rotate(ct, step))
        step *= 2
    ct = evaluator.pt_add(ct, [b] * n)
    # Degree-7 Chebyshev sigmoid; the interval must cover the score range.
    interval = (-12.0, 12.0)
    coeffs = chebyshev_fit(lambda t: 1 / (1 + np.exp(-t)), 7, interval)
    cheb = ChebyshevEvaluator(evaluator, ct, interval, max_degree=7)
    return cheb.evaluate(coeffs)


def main():
    rng = np.random.default_rng(7)
    X, y, w, b = train_plaintext_model(rng)
    print(f"plaintext model accuracy: "
          f"{np.mean(((X @ w + b) > 0) == y):.1%} on training data\n")

    params = toy_params(log_n=4, log_q=30, max_limbs=10, dnum=3)
    context = CkksContext(params, scale_bits=30, seed=1)
    keygen = KeyGenerator(context)
    env = {
        "encryptor": Encryptor(context, secret_key=keygen.secret_key),
        "evaluator": Evaluator(
            context,
            relin_key=keygen.relinearization_key(),
            rotation_keys={
                s: keygen.rotation_key(s) for s in (1, 2, 4)
            },
        ),
    }
    decryptor = Decryptor(context, keygen.secret_key)

    print(f"{'sample':>6} {'plaintext':>10} {'encrypted':>10} {'match':>6}")
    correct = 0
    for i in range(8):
        x = X[i]
        plain = 1 / (1 + np.exp(-(w @ x + b)))
        ct = encrypted_inference(x, w, b, env)
        enc = float(decryptor.decrypt_values(ct)[0].real)
        match = (plain > 0.5) == (enc > 0.5)
        correct += match
        print(f"{i:6d} {plain:10.4f} {enc:10.4f} {'yes' if match else 'NO':>6}")
    print(f"\nencrypted/plaintext decision agreement: {correct}/8")


if __name__ == "__main__":
    main()
