"""Private image filtering: convolution over an encrypted image.

A client encrypts an 8x8 grayscale image; the server applies a blur kernel
and an edge-detector — both as homomorphic linear transforms over the
packed slots — without ever seeing the pixels.  This is the PtMatVecMult
pattern at the heart of the paper's bootstrapping DFT (and of encrypted
CNN layers like ResNet-20's convolutions), exercised on real data.

Run:  python examples/private_image_filter.py
"""

import numpy as np

from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    LinearTransform,
)

SIZE = 8  # 8x8 image -> 64 slots -> ring degree 128


def make_image() -> np.ndarray:
    """A simple synthetic image: bright square on a dark background."""
    image = np.full((SIZE, SIZE), 0.1)
    image[2:6, 2:6] = 0.9
    image[4, 4] = 0.2  # a dark defect inside the square
    return image


def conv_matrix(kernel: np.ndarray) -> np.ndarray:
    """Dense matrix applying a 3x3 kernel to a row-major flattened image
    (zero padding at the borders)."""
    n = SIZE * SIZE
    matrix = np.zeros((n, n))
    for row in range(SIZE):
        for col in range(SIZE):
            out = row * SIZE + col
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    r, c = row + dr, col + dc
                    if 0 <= r < SIZE and 0 <= c < SIZE:
                        matrix[out, r * SIZE + c] = kernel[dr + 1, dc + 1]
    return matrix


BLUR = np.full((3, 3), 1.0 / 9.0)
EDGE = np.array([[0, -1, 0], [-1, 4, -1], [0, -1, 0]], dtype=float)


def render(image: np.ndarray, title: str) -> None:
    ramp = " .:-=+*#%@"
    lo, hi = image.min(), image.max()
    span = (hi - lo) or 1.0
    print(title)
    for row in image:
        print(
            "  "
            + "".join(
                ramp[min(int((v - lo) / span * (len(ramp) - 1)), len(ramp) - 1)]
                for v in row
            )
        )


def main():
    image = make_image()
    render(image, "original (plaintext, client side):")

    params = toy_params(log_n=7, log_q=40, max_limbs=6, dnum=3)
    ctx = CkksContext(params, seed=8)
    kg = KeyGenerator(ctx)
    enc = Encryptor(ctx, secret_key=kg.secret_key)
    dec = Decryptor(ctx, kg.secret_key)

    blur = LinearTransform(conv_matrix(BLUR))
    edge = LinearTransform(conv_matrix(EDGE))
    needed = set(blur.required_rotations("bsgs")) | set(
        edge.required_rotations("bsgs")
    )
    ev = Evaluator(
        ctx,
        relin_key=kg.relinearization_key(),
        rotation_keys={s: kg.rotation_key(s) for s in needed},
    )

    ct = enc.encrypt_values(image.flatten())
    print(f"\nserver applies 3x3 kernels homomorphically "
          f"({len(blur.diagonals)} and {len(edge.diagonals)} non-zero "
          f"diagonals, BSGS rotations: {len(needed)} keys)...\n")

    blurred = dec.decrypt_values(blur.apply(ev, ct, method="bsgs")).real
    edges = dec.decrypt_values(edge.apply(ev, ct, method="bsgs")).real

    render(blurred.reshape(SIZE, SIZE), "blurred (computed encrypted):")
    render(edges.reshape(SIZE, SIZE), "edges (computed encrypted):")

    want_blur = conv_matrix(BLUR) @ image.flatten()
    want_edge = conv_matrix(EDGE) @ image.flatten()
    print(
        f"\nmax error vs plaintext filtering: "
        f"blur {np.max(np.abs(blurred - want_blur)):.2e}, "
        f"edge {np.max(np.abs(edges - want_edge)):.2e}"
    )


if __name__ == "__main__":
    main()
