"""Quickstart: both halves of the library in two minutes.

1. The *functional* RNS-CKKS scheme: encrypt a vector, compute on it
   homomorphically (including a real bootstrap), decrypt.
2. The *performance model* (SimFHE): how expensive would this be at full
   scale (N = 2^17), and what do the MAD optimizations buy?

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.params import BASELINE_JUNG, MAD_OPTIMAL, toy_params
from repro.perf import BootstrapModel, MADConfig
from repro.ckks import (
    Bootstrapper,
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


def functional_demo():
    print("=" * 64)
    print("Part 1 - functional CKKS (exact arithmetic, toy ring degree)")
    print("=" * 64)
    params = toy_params(log_n=4, log_q=29, max_limbs=14, dnum=3)
    context = CkksContext(params, scale_bits=29, seed=42)
    keygen = KeyGenerator(context, hamming_weight=4)
    encryptor = Encryptor(context, secret_key=keygen.secret_key)
    decryptor = Decryptor(context, keygen.secret_key)
    evaluator = Evaluator(
        context,
        relin_key=keygen.relinearization_key(),
        rotation_keys={1: keygen.rotation_key(1)},
        conjugation_key=keygen.conjugation_key(),
    )

    x = np.array([0.30, -0.25, 0.10, 0.05, -0.15, 0.20, 0.00, -0.30])
    y = np.array([0.50, 0.25, -0.40, 0.10, 0.35, -0.20, 0.15, 0.05])

    ct_x = encryptor.encrypt_values(x)
    ct_y = encryptor.encrypt_values(y)

    ct_sum = evaluator.add(ct_x, ct_y)
    ct_prod = evaluator.mult(ct_x, ct_y, merged_mod_down=True)
    ct_rot = evaluator.rotate(ct_x, 1)

    print(f"x + y        error: {np.abs(decryptor.decrypt_values(ct_sum) - (x + y)).max():.2e}")
    print(f"x * y        error: {np.abs(decryptor.decrypt_values(ct_prod) - (x * y)).max():.2e}")
    print(f"rot(x, 1)    error: {np.abs(decryptor.decrypt_values(ct_rot) - np.roll(x, -1)).max():.2e}")

    # Exhaust the ciphertext, then refresh it with a genuine CKKS bootstrap.
    exhausted = encryptor.encrypt_values(x, scale=2.0**23, limbs=1)
    bootstrapper = Bootstrapper(context, keygen, mod_degree=63)
    refreshed = bootstrapper.bootstrap(exhausted)
    print(
        f"bootstrap    error: "
        f"{np.abs(decryptor.decrypt_values(refreshed) - x).max():.2e} "
        f"(1 limb -> {refreshed.num_limbs} limbs)"
    )


def performance_demo():
    print()
    print("=" * 64)
    print("Part 2 - SimFHE performance model (full-scale N = 2^17)")
    print("=" * 64)
    baseline = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
    optimized = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    print(
        f"baseline bootstrap : {baseline.giga_ops():7.1f} Gops, "
        f"{baseline.gigabytes():6.1f} GB DRAM, AI {baseline.arithmetic_intensity:.2f}"
    )
    print(
        f"all MAD techniques : {optimized.giga_ops():7.1f} Gops, "
        f"{optimized.gigabytes():6.1f} GB DRAM, AI {optimized.arithmetic_intensity:.2f}"
    )
    print(
        f"arithmetic intensity improvement: "
        f"{optimized.arithmetic_intensity / baseline.arithmetic_intensity:.2f}x"
    )


if __name__ == "__main__":
    functional_demo()
    performance_demo()
