"""Bootstrapping bottleneck analysis — the paper's Figures 2 and 3.

Walks the cumulative optimization ladders over one bootstrapping operation
and prints the per-phase breakdown, showing where the DRAM traffic lives
and what each MAD technique removes.

Run:  python examples/bootstrap_analysis.py
"""

from repro.params import BASELINE_JUNG, MAD_OPTIMAL
from repro.perf import (
    ALGORITHMIC_LADDER,
    CACHING_LADDER,
    BootstrapModel,
    MADConfig,
)


def phase_breakdown():
    print("Per-phase bootstrap cost (baseline parameters, no optimizations)")
    print(f"{'Phase':14} {'Gops':>8} {'GB':>8} {'AI':>6}")
    breakdown = BootstrapModel(BASELINE_JUNG, MADConfig.none()).cost()
    for name, cost in breakdown.phases().items():
        print(
            f"{name:14} {cost.giga_ops():8.1f} {cost.gigabytes():8.1f} "
            f"{cost.arithmetic_intensity:6.2f}"
        )
    total = breakdown.total
    print(
        f"{'Total':14} {total.giga_ops():8.1f} {total.gigabytes():8.1f} "
        f"{total.arithmetic_intensity:6.2f}"
    )


def caching_ladder():
    print("\nCaching optimizations (Figure 2) - DRAM per bootstrap")
    baseline = None
    for label, config in CACHING_LADDER:
        traffic = BootstrapModel(BASELINE_JUNG, config).total_cost().traffic
        if baseline is None:
            baseline = traffic.total
        print(
            f"  {label:18} {traffic.total / 1e9:7.1f} GB "
            f"({1 - traffic.total / baseline:6.1%} vs baseline)"
        )


def algorithmic_ladder():
    print("\nAlgorithmic optimizations (Figure 3) - at best-case parameters")
    print(f"  {'Step':20} {'Gops':>8} {'ct GB':>7} {'key GB':>7} {'AI':>6}")
    for label, config in ALGORITHMIC_LADDER:
        cost = BootstrapModel(MAD_OPTIMAL, config).total_cost()
        ct_gb = (cost.traffic.ct_read + cost.traffic.ct_write) / 1e9
        print(
            f"  {label:20} {cost.giga_ops():8.1f} {ct_gb:7.1f} "
            f"{cost.traffic.key_read / 1e9:7.1f} "
            f"{cost.arithmetic_intensity:6.2f}"
        )


def headline():
    base = BootstrapModel(BASELINE_JUNG, MADConfig.none()).total_cost()
    best = BootstrapModel(MAD_OPTIMAL, MADConfig.all()).total_cost()
    print(
        f"\nBootstrap arithmetic intensity: {base.arithmetic_intensity:.2f} "
        f"-> {best.arithmetic_intensity:.2f} "
        f"({best.arithmetic_intensity / base.arithmetic_intensity:.1f}x, "
        f"paper reports ~3x)"
    )


if __name__ == "__main__":
    phase_breakdown()
    caching_ladder()
    algorithmic_ladder()
    headline()
