"""Noise-budget planning: predict circuit precision before running it.

CKKS is approximate — every operation consumes precision.  This example
uses the analytical :class:`~repro.ckks.NoiseEstimator` to budget a small
polynomial-evaluation circuit, then runs the same circuit on the functional
scheme and compares the predicted precision against the measured error.

Run:  python examples/noise_budget.py
"""

import numpy as np

from repro.params import toy_params
from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    NoiseEstimator,
    measured_noise_bits,
)


def main():
    params = toy_params(log_n=4, log_q=30, max_limbs=10, dnum=3)
    scale_bits = 30
    ctx = CkksContext(params, scale_bits=scale_bits, seed=11)
    kg = KeyGenerator(ctx)
    enc = Encryptor(ctx, secret_key=kg.secret_key)
    dec = Decryptor(ctx, kg.secret_key)
    ev = Evaluator(ctx, relin_key=kg.relinearization_key())
    estimator = NoiseEstimator(params)

    rng = np.random.default_rng(3)
    x = rng.uniform(-0.9, 0.9, size=ctx.slots)
    ct = enc.encrypt_values(x)
    est = estimator.fresh(scale_bits)

    print(f"{'step':22} {'predicted precision':>20} {'measured error':>15}")
    reference = x.copy()

    def report(step):
        measured = measured_noise_bits(dec.decrypt_values(ct), reference)
        print(
            f"{step:22} {est.precision_bits:17.1f} bits "
            f"{'2^' + format(measured, '.1f'):>15}"
        )

    report("fresh encryption")

    # x -> x^2 -> x^4 -> x^8: repeated squaring, one level per step.
    for power in (2, 4, 8):
        ct_new = ev.mult(ct, ct)
        ct = ct_new
        reference = reference * reference
        est = estimator.rescale(estimator.mult(est, est))
        report(f"square (x^{power})")

    print(
        f"\nDepth budget from a fresh ciphertext at {scale_bits}-bit scale: "
        f"{estimator.depth_budget(scale_bits)} squarings before precision "
        f"drops below 4 bits."
    )


if __name__ == "__main__":
    main()
