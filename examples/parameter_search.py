"""Memory-aware CKKS parameter selection for a custom accelerator budget.

You are designing an FHE accelerator with a fixed silicon budget: how
should you pick the CKKS parameters, and is another MB of SRAM worth more
than another thousand multipliers?  This example runs the paper's
brute-force throughput search (Section 4.1 / Table 5) for a mid-range
design and shows how the optimum shifts with on-chip memory.

Run:  python examples/parameter_search.py
"""

from repro.params import BASELINE_JUNG
from repro.hardware import HardwareDesign
from repro.search import enumerate_parameter_space, find_optimal_parameters

# A focused grid keeps this example under ~20 seconds; drop the
# *_choices arguments to sweep the full space as the paper does.
CANDIDATES = list(
    enumerate_parameter_space(
        log_q_choices=(46, 50, 54, 58),
        max_limbs_choices=(30, 35, 40, 42),
        dnum_choices=(1, 2, 3, 4),
        fft_iter_choices=(2, 3, 4, 6),
    )
)


def search_for(mb: float):
    design = HardwareDesign(
        name=f"custom-{mb:g}MB",
        modular_multipliers=4096,
        on_chip_mb=mb,
        bandwidth_gb_s=1000,
        params=BASELINE_JUNG,  # placeholder; the search re-parameterises
    )
    # enforce_cache gates each caching optimization on the actual on-chip
    # capacity, so the memory budget genuinely shapes the optimum.
    return find_optimal_parameters(
        design, candidates=CANDIDATES, top=3, enforce_cache=True
    )


if __name__ == "__main__":
    print(f"Searching {len(CANDIDATES)} admissible parameter sets "
          f"(128-bit secure, bootstrappable)...\n")
    for mb in (8, 32, 64):
        print(f"On-chip memory budget: {mb} MB")
        for rank, result in enumerate(search_for(mb), start=1):
            print(f"  #{rank} {result.describe()}")
        print()
    print(
        "Note the memory-aware signature of the winners: small dnum (fewer,\n"
        "larger key-switching digits), a long modulus chain, and more DFT\n"
        "iterations (smaller stage matrices) - exactly the Table 5 optimum."
    )
