PYTHON ?= python
# Match the tier-1 command: the package is imported from src/ without an
# install step, preserving any PYTHONPATH the caller already exported.
PYPATH = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: install test bench lint lint-fast typecheck examples tables clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYPATH) $(PYTHON) -m pytest tests/

bench:
	$(PYPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	$(PYPATH) $(PYTHON) -m repro lint --program src/repro
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi

# Same rules as `make lint` (incl. the whole-program pass) but replays
# the previous result from .lint_cache/ when no file content changed.
lint-fast:
	$(PYPATH) $(PYTHON) -m repro lint --program --changed-only src/repro

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/bootstrap_analysis.py
	$(PYTHON) examples/noise_budget.py
	$(PYTHON) examples/private_image_filter.py
	$(PYTHON) examples/encrypted_logistic_regression.py
	$(PYTHON) examples/accelerator_comparison.py
	$(PYTHON) examples/parameter_search.py

tables:
	$(PYTHON) -m repro table4
	$(PYTHON) -m repro table6
	$(PYTHON) -m repro fig2
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro balance

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
