PYTHON ?= python

.PHONY: install test bench examples tables clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/bootstrap_analysis.py
	$(PYTHON) examples/noise_budget.py
	$(PYTHON) examples/private_image_filter.py
	$(PYTHON) examples/encrypted_logistic_regression.py
	$(PYTHON) examples/accelerator_comparison.py
	$(PYTHON) examples/parameter_search.py

tables:
	$(PYTHON) -m repro table4
	$(PYTHON) -m repro table6
	$(PYTHON) -m repro fig2
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro balance

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
