import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.numth import find_ntt_primes
from repro.ring import (
    Representation,
    RnsBasis,
    RnsPolynomial,
    mod_down,
    mod_up,
    new_limb,
    p_mod_up,
    rescale,
)


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.generate(16, 30, 3)


@pytest.fixture(scope="module")
def extension(basis):
    return find_ntt_primes(30, 16, 2, exclude=basis.moduli)


def _poly_from(coeffs, basis):
    return RnsPolynomial.from_int_coeffs(coeffs, basis)


class TestNewLimb:
    def test_exact_for_small_values(self, basis):
        # For x with tiny residue contributions the conversion is exact.
        coeffs = [5] + [0] * 15
        poly = _poly_from(coeffs, basis)
        row = new_limb(poly.limbs, basis, 97 * 32 + 1 if False else 577)
        # 577 = 1 mod 32, prime.
        assert row[0] % 577 in {5 % 577, (5 + basis.modulus) % 577,
                                (5 + 2 * basis.modulus) % 577}

    def test_congruence_up_to_q_multiple(self, basis):
        rng = random.Random(42)
        coeffs = [rng.randrange(basis.modulus) for _ in range(16)]
        poly = _poly_from(coeffs, basis)
        target = find_ntt_primes(30, 16, 1, exclude=basis.moduli)[0]
        row = new_limb(poly.limbs, basis, target)
        big_q = basis.modulus
        for out, x in zip(row, coeffs):
            # Output is x + u*Q mod target for some 0 <= u < num_limbs.
            assert any(
                out == (x + u * big_q) % target for u in range(len(basis) + 1)
            )

    def test_row_count_checked(self, basis):
        with pytest.raises(ValueError):
            new_limb([[0] * 16], basis, 577)


class TestModUp:
    def test_preserves_original_limbs(self, basis, extension):
        rng = random.Random(1)
        coeffs = [rng.randrange(-500, 500) for _ in range(16)]
        poly = _poly_from(coeffs, basis).to_eval()
        raised = mod_up(poly, extension)
        assert raised.limbs[: len(basis)] == list(poly.limbs)
        assert raised.basis.moduli == basis.moduli + tuple(extension)

    def test_output_in_eval_form(self, basis, extension):
        poly = RnsPolynomial.zero(basis)
        raised = mod_up(poly, extension)
        assert raised.representation is Representation.EVAL

    def test_new_limbs_congruent(self, basis, extension):
        rng = random.Random(2)
        coeffs = [rng.randrange(basis.modulus) for _ in range(16)]
        poly = _poly_from(coeffs, basis).to_eval()
        raised = mod_up(poly, extension).to_coeff()
        big_q = basis.modulus
        for limb_idx, p in enumerate(extension):
            row = raised.limbs[len(basis) + limb_idx]
            for out, x in zip(row, coeffs):
                assert any(
                    out == (x + u * big_q) % p for u in range(len(basis) + 1)
                )

    def test_requires_eval_form(self, basis, extension):
        poly = RnsPolynomial.zero(basis, Representation.COEFF)
        with pytest.raises(ValueError):
            mod_up(poly, extension)

    def test_requires_nonempty_extension(self, basis):
        with pytest.raises(ValueError):
            mod_up(RnsPolynomial.zero(basis), [])


class TestModDown:
    def test_inverts_p_mod_up_approximately(self, basis, extension):
        rng = random.Random(3)
        coeffs = [rng.randrange(-10**6, 10**6) for _ in range(16)]
        poly = _poly_from(coeffs, basis).to_eval()
        raised = p_mod_up(poly, extension)
        lowered = mod_down(raised, len(extension))
        error = [
            got - want
            for got, want in zip(lowered.to_int_coeffs(), coeffs)
        ]
        # Approximate conversion may undershoot by at most the number of
        # dropped limbs.
        assert all(abs(e) <= len(extension) for e in error)

    def test_division_semantics(self, basis, extension):
        # mod_down(P * x + small) ~= x.
        p_product = 1
        for p in extension:
            p_product *= p
        merged = basis.extended(extension)
        xs = list(range(-8, 8))
        scaled = _poly_from([x * p_product for x in xs], merged).to_eval()
        lowered = mod_down(scaled, len(extension))
        error = [got - x for got, x in zip(lowered.to_int_coeffs(), xs)]
        assert all(abs(e) <= len(extension) for e in error)

    def test_limb_bounds(self, basis):
        poly = RnsPolynomial.zero(basis)
        with pytest.raises(ValueError):
            mod_down(poly, 3)
        with pytest.raises(ValueError):
            mod_down(poly, 0)

    def test_requires_eval_form(self, basis):
        poly = RnsPolynomial.zero(basis, Representation.COEFF)
        with pytest.raises(ValueError):
            mod_down(poly, 1)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-(2**15), 2**15), min_size=16, max_size=16))
    def test_round_trip_property(self, coeffs):
        basis = RnsBasis.generate(16, 30, 3)
        extension = find_ntt_primes(30, 16, 2, exclude=basis.moduli)
        poly = RnsPolynomial.from_int_coeffs(coeffs, basis).to_eval()
        lowered = mod_down(p_mod_up(poly, extension), len(extension))
        error = [g - w for g, w in zip(lowered.to_int_coeffs(), coeffs)]
        assert all(abs(e) <= len(extension) for e in error)


class TestRescale:
    def test_divides_by_last_limb(self, basis):
        q_last = basis.moduli[-1]
        xs = list(range(16))
        poly = _poly_from([x * q_last for x in xs], basis).to_eval()
        scaled = rescale(poly)
        assert scaled.basis.moduli == basis.moduli[:-1]
        error = [got - x for got, x in zip(scaled.to_int_coeffs(), xs)]
        assert all(abs(e) <= 1 for e in error)

    def test_rejects_single_limb(self, basis):
        single = RnsPolynomial.zero(basis.prefix(1))
        with pytest.raises(ValueError):
            rescale(single)


class TestPModUp:
    def test_new_limbs_are_zero(self, basis, extension):
        rng = random.Random(4)
        coeffs = [rng.randrange(-100, 100) for _ in range(16)]
        poly = _poly_from(coeffs, basis).to_eval()
        raised = p_mod_up(poly, extension)
        for row in raised.limbs[len(basis):]:
            assert all(c == 0 for c in row)

    def test_value_is_p_times_x(self, basis, extension):
        coeffs = [3, -7] + [0] * 14
        poly = _poly_from(coeffs, basis)
        raised = p_mod_up(poly, extension)
        p_product = 1
        for p in extension:
            p_product *= p
        assert raised.to_int_coeffs() == [p_product * c for c in coeffs]

    def test_preserves_representation(self, basis, extension):
        poly = RnsPolynomial.zero(basis, Representation.COEFF)
        assert p_mod_up(poly, extension).representation is Representation.COEFF
        poly_eval = RnsPolynomial.zero(basis, Representation.EVAL)
        assert p_mod_up(poly_eval, extension).representation is Representation.EVAL

    def test_is_purely_limb_wise(self, basis, extension):
        # PModUp commutes with the NTT: scaling in either domain agrees.
        rng = random.Random(5)
        coeffs = [rng.randrange(-100, 100) for _ in range(16)]
        poly = _poly_from(coeffs, basis)
        via_coeff = p_mod_up(poly, extension).to_eval()
        via_eval = p_mod_up(poly.to_eval(), extension)
        assert via_coeff == via_eval

    def test_requires_nonempty_extension(self, basis):
        with pytest.raises(ValueError):
            p_mod_up(RnsPolynomial.zero(basis), [])
