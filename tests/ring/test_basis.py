import pytest

from repro.numth import find_ntt_primes
from repro.ring import RnsBasis


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.generate(16, 30, 4)


class TestConstruction:
    def test_generate_produces_distinct_ntt_primes(self, basis):
        assert len(set(basis.moduli)) == 4
        for q in basis:
            assert q % 32 == 1

    def test_rejects_non_power_of_two_degree(self):
        primes = find_ntt_primes(30, 16, 1)
        with pytest.raises(ValueError):
            RnsBasis(12, primes)

    def test_rejects_duplicate_moduli(self):
        q = find_ntt_primes(30, 16, 1)[0]
        with pytest.raises(ValueError):
            RnsBasis(16, [q, q])

    def test_rejects_incompatible_modulus(self):
        with pytest.raises(ValueError):
            RnsBasis(16, [113])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RnsBasis(16, [])

    def test_equality_and_hash(self, basis):
        same = RnsBasis(16, basis.moduli)
        assert same == basis
        assert hash(same) == hash(basis)

    def test_exclude_in_generate(self, basis):
        other = RnsBasis.generate(16, 30, 2, exclude=basis.moduli)
        assert not set(other.moduli) & set(basis.moduli)


class TestDerivedBases:
    def test_prefix(self, basis):
        sub = basis.prefix(2)
        assert sub.moduli == basis.moduli[:2]

    def test_drop_last(self, basis):
        assert basis.drop_last().moduli == basis.moduli[:-1]
        assert basis.drop_last(2).moduli == basis.moduli[:-2]

    def test_drop_everything_rejected(self, basis):
        with pytest.raises(ValueError):
            basis.drop_last(4)

    def test_extended(self, basis):
        extra = find_ntt_primes(30, 16, 2, exclude=basis.moduli)
        merged = basis.extended(extra)
        assert merged.moduli == basis.moduli + tuple(extra)

    def test_prefix_bounds(self, basis):
        with pytest.raises(ValueError):
            basis.prefix(0)
        with pytest.raises(ValueError):
            basis.prefix(5)


class TestPrecomputations:
    def test_modulus_is_product(self, basis):
        product = 1
        for q in basis:
            product *= q
        assert basis.modulus == product

    def test_q_hat_inverses(self, basis):
        total = basis.modulus
        for q, inv in zip(basis, basis.q_hat_inverses()):
            assert (total // q) * inv % q == 1

    def test_q_stars_mod(self, basis):
        total = basis.modulus
        target = 97
        for q, star in zip(basis, basis.q_stars_mod(target)):
            assert star == (total // q) % target

    def test_ntt_contexts_are_cached(self, basis):
        assert basis.ntt(0) is basis.ntt(0)
        assert basis.ntt(0).q == basis.moduli[0]
