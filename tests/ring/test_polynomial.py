import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ring import Representation, RnsBasis, RnsPolynomial


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.generate(16, 30, 3)


def _random_poly(basis, seed=0, bound=1000):
    rng = random.Random(seed)
    coeffs = [rng.randrange(-bound, bound) for _ in range(basis.degree)]
    return coeffs, RnsPolynomial.from_int_coeffs(coeffs, basis)


def _naive_negacyclic(a, b, n):
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            if k >= n:
                out[k - n] -= ai * bj
            else:
                out[k] += ai * bj
    return out


class TestConstruction:
    def test_zero(self, basis):
        z = RnsPolynomial.zero(basis)
        assert all(all(c == 0 for c in row) for row in z.limbs)

    def test_limb_count_checked(self, basis):
        with pytest.raises(ValueError):
            RnsPolynomial(basis, [[0] * 16], Representation.COEFF)

    def test_limb_length_checked(self, basis):
        with pytest.raises(ValueError):
            RnsPolynomial(basis, [[0] * 8] * 3, Representation.COEFF)

    def test_from_int_coeffs_reduces_mod_each_limb(self, basis):
        coeffs = [-1] + [0] * 15
        poly = RnsPolynomial.from_int_coeffs(coeffs, basis)
        for row, q in zip(poly.limbs, basis):
            assert row[0] == q - 1

    def test_clone_is_deep(self, basis):
        _, poly = _random_poly(basis)
        copy = poly.clone()
        copy.limbs[0][0] = (copy.limbs[0][0] + 1) % basis.moduli[0]
        assert copy != poly


class TestCrtRoundTrip:
    def test_round_trip_centered(self, basis):
        coeffs, poly = _random_poly(basis, seed=1)
        assert poly.to_int_coeffs() == coeffs

    def test_round_trip_after_eval(self, basis):
        coeffs, poly = _random_poly(basis, seed=2)
        assert poly.to_eval().to_int_coeffs() == coeffs

    @settings(max_examples=20)
    @given(st.lists(st.integers(-(2**20), 2**20), min_size=16, max_size=16))
    def test_round_trip_property(self, coeffs):
        basis = RnsBasis.generate(16, 30, 3)
        poly = RnsPolynomial.from_int_coeffs(coeffs, basis)
        assert poly.to_int_coeffs() == coeffs


class TestRepresentation:
    def test_eval_coeff_round_trip(self, basis):
        _, poly = _random_poly(basis, seed=3)
        assert poly.to_eval().to_coeff() == poly

    def test_idempotent_conversions(self, basis):
        _, poly = _random_poly(basis, seed=4)
        ev = poly.to_eval()
        assert ev.to_eval() is ev
        assert poly.to_coeff() is poly


class TestArithmetic:
    def test_addition_matches_integers(self, basis):
        ca, pa = _random_poly(basis, seed=5)
        cb, pb = _random_poly(basis, seed=6)
        assert (pa + pb).to_int_coeffs() == [a + b for a, b in zip(ca, cb)]

    def test_subtraction_matches_integers(self, basis):
        ca, pa = _random_poly(basis, seed=7)
        cb, pb = _random_poly(basis, seed=8)
        assert (pa - pb).to_int_coeffs() == [a - b for a, b in zip(ca, cb)]

    def test_negation(self, basis):
        ca, pa = _random_poly(basis, seed=9)
        assert (-pa).to_int_coeffs() == [-a for a in ca]

    def test_multiplication_is_negacyclic(self, basis):
        ca, pa = _random_poly(basis, seed=10, bound=50)
        cb, pb = _random_poly(basis, seed=11, bound=50)
        product = (pa.to_eval() * pb.to_eval()).to_int_coeffs()
        assert product == _naive_negacyclic(ca, cb, 16)

    def test_multiplication_requires_eval_form(self, basis):
        _, pa = _random_poly(basis, seed=12)
        with pytest.raises(ValueError):
            _ = pa * pa

    def test_mixed_representation_rejected(self, basis):
        _, pa = _random_poly(basis, seed=13)
        with pytest.raises(ValueError):
            _ = pa + pa.to_eval()

    def test_scalar_mul(self, basis):
        ca, pa = _random_poly(basis, seed=14)
        assert pa.scalar_mul(7).to_int_coeffs() == [7 * a for a in ca]

    def test_scalar_mul_commutes_with_ntt(self, basis):
        _, pa = _random_poly(basis, seed=15)
        assert pa.scalar_mul(5).to_eval() == pa.to_eval().scalar_mul(5)

    def test_limb_scalar_mul(self, basis):
        _, pa = _random_poly(basis, seed=16)
        scalars = [3, 5, 7]
        result = pa.limb_scalar_mul(scalars)
        for row, orig, s, q in zip(result.limbs, pa.limbs, scalars, basis):
            assert row == [a * s % q for a in orig]

    def test_limb_scalar_mul_length_checked(self, basis):
        _, pa = _random_poly(basis, seed=17)
        with pytest.raises(ValueError):
            pa.limb_scalar_mul([1, 2])


class TestAutomorphism:
    def test_identity_automorphism(self, basis):
        _, pa = _random_poly(basis, seed=18)
        assert pa.automorph(1) == pa

    def test_rejects_even_index(self, basis):
        _, pa = _random_poly(basis, seed=19)
        with pytest.raises(ValueError):
            pa.automorph(2)

    def test_coeff_automorph_on_monomial(self, basis):
        # x -> x^3 should map the monomial x to x^3.
        coeffs = [0, 1] + [0] * 14
        poly = RnsPolynomial.from_int_coeffs(coeffs, basis)
        result = poly.automorph(3).to_int_coeffs()
        expected = [0] * 16
        expected[3] = 1
        assert result == expected

    def test_coeff_automorph_wraps_negacyclically(self, basis):
        # x^15 -> x^45 = x^45 mod (x^16+1): 45 = 2*16+13 -> +x^13? 45 mod 32 = 13 < 16.
        coeffs = [0] * 16
        coeffs[15] = 1
        poly = RnsPolynomial.from_int_coeffs(coeffs, basis)
        result = poly.automorph(3).to_int_coeffs()
        expected = [0] * 16
        expected[13] = 1
        assert result == expected

    def test_eval_and_coeff_automorph_agree(self, basis):
        _, pa = _random_poly(basis, seed=20)
        for t in (3, 5, 9, 31):
            via_coeff = pa.automorph(t).to_eval()
            via_eval = pa.to_eval().automorph(t)
            assert via_coeff == via_eval

    def test_automorphisms_compose(self, basis):
        _, pa = _random_poly(basis, seed=21)
        assert pa.automorph(3).automorph(5) == pa.automorph(15)

    def test_automorphism_inverse(self, basis):
        _, pa = _random_poly(basis, seed=22)
        # 3 * 11 = 33 = 1 mod 32, so automorph(11) inverts automorph(3).
        assert pa.automorph(3).automorph(11) == pa

    def test_automorphism_is_additive(self, basis):
        _, pa = _random_poly(basis, seed=23)
        _, pb = _random_poly(basis, seed=24)
        assert (pa + pb).automorph(5) == pa.automorph(5) + pb.automorph(5)

    def test_automorphism_is_multiplicative(self, basis):
        _, pa = _random_poly(basis, seed=25, bound=50)
        _, pb = _random_poly(basis, seed=26, bound=50)
        ea, eb = pa.to_eval(), pb.to_eval()
        assert (ea * eb).automorph(7) == ea.automorph(7) * eb.automorph(7)
